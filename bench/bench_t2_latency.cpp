// Experiment T2 -- detection latency vs cycle length.
//
// The probe must travel the whole cycle (L hops), so with a fixed per-hop
// delay distribution the detection latency grows linearly in L.
#include "graph/generators.h"
#include "runtime/sim_cluster.h"
#include "runtime/workload.h"
#include "table.h"

namespace {

using namespace cmh;
using bench::fmt;

void run() {
  bench::Table table(
      "T2: detection latency vs cycle length (fixed per-hop delay 100us)",
      {"cycle L", "latency (ms)", "latency / L (us)", "probes"});

  for (const std::uint32_t len : {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    core::Options options;
    options.initiation = core::InitiationMode::kManual;
    options.propagate_wfgd = false;
    runtime::SimCluster cluster(len, options, 7,
                                sim::DelayModel::fixed(SimTime::us(100)));
    runtime::issue_scenario(cluster, graph::make_ring(len, len));
    cluster.run();

    const SimTime start = cluster.simulator().now();
    (void)cluster.process(ProcessId{0}).initiate();
    cluster.run();
    if (cluster.detections().empty()) {
      table.row({fmt(len), "MISSED", "-", "-"});
      continue;
    }
    const SimTime latency = cluster.detections()[0].at - start;
    table.row({fmt(len), bench::fmt(latency.seconds() * 1e3, 3),
               bench::fmt(static_cast<double>(latency.micros) / len, 1),
               fmt(cluster.total_stats().probes_sent)});
  }
  table.print();
  std::printf("Expected shape: latency linear in L (constant latency/L "
              "close to the per-hop delay).\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
