#!/usr/bin/env python3
"""Benchmark-trajectory harness.

Runs the google-benchmark binaries (bench_micro, bench_sim) and reduces
their JSON output to a small, stable schema so successive runs can be
committed and diffed:

    {
      "schema": "cmh-bench/1",
      "suite": "micro" | "sim",
      "benchmarks": [
        {"name": ..., "time_ns": ..., "cpu_ns": ...,
         "iterations": ..., "items_per_second": ...},   # last key optional
        ...
      ]
    }

Only real benchmark entries survive the reduction -- aggregates such as
BigO/RMS rows and machine context (hostname, date, CPU caches) are
dropped, so the schema stays byte-stable apart from the numbers.

Usage:
    bench/run_benchmarks.py [--build-dir build] [--out-dir .]
                            [--suite micro|sim|all] [--min-time SECS]
                            [--compare OLD.json]
                            [--fail-on-regress PCT] [--hot NAME ...]

--min-time is passed through to --benchmark_min_time (this tree's
google-benchmark takes a plain double, not the newer "0.01x" form).
--compare prints an old-vs-new table against a previously committed file.
--fail-on-regress PCT (requires --compare) exits non-zero when any *hot*
benchmark got more than PCT percent slower than the old file.  Hot
benchmarks are named with repeated --hot flags (prefix match, so
"--hot BM_SimMessageChurn" covers every /N variant); with no --hot flags a
built-in list of the event-loop-bound benchmarks is used.  Only regressions
gate -- new or removed benchmarks are reported but never fail the run.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

SUITES = {
    "micro": "bench_micro",
    "sim": "bench_sim",
    "net": "bench_net",
}

# Benchmarks whose regressions gate CI (prefix match).  These are the ones
# dominated by the hot paths PR 1 and the sharded-engine PR optimized, plus
# the epoll transport's small-frame throughput (the event-loop PR); the
# macro detection-wave numbers are tracked but too workload-shaped to gate.
DEFAULT_HOT = [
    "BM_SimMessageChurn",
    "BM_SimBatchedChurn",
    "BM_SimTimerStorm",
    "BM_EncodeProbe",
    "BM_DecodeProbe",
    "BM_NetEpollTcpSmallFrames",
]


def run_suite(binary: pathlib.Path, min_time: float | None) -> list[dict]:
    cmd = [str(binary), "--benchmark_format=json"]
    if min_time is not None:
        cmd.append(f"--benchmark_min_time={min_time}")
    proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
    raw = json.loads(proc.stdout)
    benchmarks = []
    for entry in raw.get("benchmarks", []):
        # Skip BigO/RMS/mean-style aggregate rows.
        if entry.get("run_type", "iteration") != "iteration":
            continue
        reduced = {
            "name": entry["name"],
            "time_ns": round(float(entry["real_time"]), 3),
            "cpu_ns": round(float(entry["cpu_time"]), 3),
            "iterations": int(entry["iterations"]),
        }
        if "items_per_second" in entry:
            reduced["items_per_second"] = round(
                float(entry["items_per_second"]), 1)
        benchmarks.append(reduced)
    return benchmarks


def write_suite(out_dir: pathlib.Path, suite: str,
                benchmarks: list[dict]) -> pathlib.Path:
    doc = {"schema": "cmh-bench/1", "suite": suite, "benchmarks": benchmarks}
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{suite}.json"
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


def load_times(path: pathlib.Path) -> dict[str, float]:
    doc = json.loads(path.read_text())
    entries = doc["benchmarks"] if isinstance(doc, dict) else doc
    times = {}
    for entry in entries:
        # Accept both this schema and raw google-benchmark output.
        if entry.get("run_type", "iteration") != "iteration":
            continue
        times[entry["name"]] = float(
            entry.get("time_ns", entry.get("real_time", 0.0)))
    return times


def print_comparison(old: dict[str, float], new: list[dict]) -> None:
    print(f"{'benchmark':<40} {'old ns':>12} {'new ns':>12} {'speedup':>8}")
    for entry in new:
        name = entry["name"]
        if name not in old:
            print(f"{name:<40} {'-':>12} {entry['time_ns']:>12.2f} {'new':>8}")
            continue
        ratio = old[name] / entry["time_ns"] if entry["time_ns"] else 0.0
        print(f"{name:<40} {old[name]:>12.2f} {entry['time_ns']:>12.2f} "
              f"{ratio:>7.2f}x")


def find_regressions(old: dict[str, float], new: list[dict],
                     hot: list[str], threshold_pct: float) -> list[str]:
    """Hot benchmarks that got more than threshold_pct slower."""
    failures = []
    for entry in new:
        name = entry["name"]
        if name not in old or old[name] <= 0.0:
            continue
        if not any(name.startswith(prefix) for prefix in hot):
            continue
        slowdown_pct = (entry["time_ns"] / old[name] - 1.0) * 100.0
        if slowdown_pct > threshold_pct:
            failures.append(
                f"{name}: {old[name]:.1f} ns -> {entry['time_ns']:.1f} ns "
                f"(+{slowdown_pct:.1f}% > {threshold_pct:.0f}%)")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build", type=pathlib.Path)
    parser.add_argument("--out-dir", default=".", type=pathlib.Path)
    parser.add_argument("--suite", default="all",
                        choices=[*SUITES.keys(), "all"])
    parser.add_argument("--min-time", default=None, type=float)
    parser.add_argument("--compare", default=None, type=pathlib.Path)
    parser.add_argument("--fail-on-regress", default=None, type=float,
                        metavar="PCT")
    parser.add_argument("--hot", action="append", default=None,
                        metavar="NAME")
    args = parser.parse_args()

    if args.fail_on_regress is not None and args.compare is None:
        parser.error("--fail-on-regress requires --compare")

    suites = list(SUITES) if args.suite == "all" else [args.suite]
    old = load_times(args.compare) if args.compare else None
    failures: list[str] = []
    for suite in suites:
        binary = args.build_dir / "bench" / SUITES[suite]
        if not binary.exists():
            print(f"error: {binary} not built (run cmake --build first)",
                  file=sys.stderr)
            return 1
        benchmarks = run_suite(binary, args.min_time)
        path = write_suite(args.out_dir, suite, benchmarks)
        print(f"wrote {path} ({len(benchmarks)} benchmarks)")
        if old is not None:
            print_comparison(old, benchmarks)
            if args.fail_on_regress is not None:
                failures += find_regressions(old, benchmarks,
                                             args.hot or DEFAULT_HOT,
                                             args.fail_on_regress)
    if failures:
        print("\nhot-benchmark regressions:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
