// Experiment T3 -- CMH probes vs the prior art it displaced.
//
// The same workload (a planted deadlock inside a churny random workload)
// runs under four detectors:
//   * CMH (this paper, edge-triggered probes)
//   * centralized snapshots (staggered reports -- the practical variant)
//   * Obermarck-style path-pushing (periodic rounds)
//   * timeouts
// Reported: detection-related messages/bytes, detection latency after the
// cycle forms, and real vs phantom detections.  The phantom column is the
// punchline: the paper proves CMH never reports a false deadlock; the
// centralized and path-pushing baselines can, and timeouts routinely do.
#include "baseline/centralized.h"
#include "baseline/path_pushing.h"
#include "baseline/timeout.h"
#include "graph/generators.h"
#include "runtime/sim_cluster.h"
#include "runtime/workload.h"
#include "table.h"

namespace {

using namespace cmh;
using bench::fmt;

constexpr std::uint32_t kProcesses = 24;
constexpr std::uint32_t kCycleLen = 5;

struct Outcome {
  std::uint64_t messages{0};
  std::uint64_t bytes{0};
  double latency_ms{-1};
  std::size_t real{0};
  std::size_t phantom{0};
};

/// Drives churn (request/reply traffic) plus a planted ring that wedges at a
/// known time, then lets the given detector run.
template <typename Fn>
Outcome run_workload(std::uint64_t seed, Fn&& with_cluster) {
  core::Options options;
  options.initiation = core::InitiationMode::kManual;  // detectors own this
  options.propagate_wfgd = false;
  runtime::SimCluster cluster(kProcesses, options, seed);

  runtime::WorkloadConfig wl;
  wl.mean_interarrival = SimTime::us(300);
  wl.mean_service = SimTime::us(600);
  wl.max_outstanding = 1;
  wl.blocked_may_request = false;
  wl.issue_until = SimTime::ms(40);
  runtime::RandomWorkload workload(cluster, wl, seed * 5 + 2);
  workload.start();

  // Plant the ring among dedicated processes (ids >= 16 keep out of the
  // churn's way only probabilistically; the oracle handles overlaps).
  SimTime planted_at = SimTime::ms(15);
  for (std::uint32_t i = 0; i < kCycleLen; ++i) {
    const ProcessId from{16 + i};
    const ProcessId to{16 + (i + 1) % kCycleLen};
    cluster.simulator().schedule(
        planted_at + SimTime::us(200 * i), [&cluster, from, to] {
          if (!cluster.process(from).waits_for().contains(to) &&
              from != to) {
            cluster.request(from, to);
          }
        });
  }

  return with_cluster(cluster, planted_at);
}

Outcome run_cmh(std::uint64_t seed) {
  // CMH with the delayed-T initiation rule, T = 2ms.
  core::Options options;
  options.initiation = core::InitiationMode::kDelayed;
  options.initiation_delay = SimTime::ms(2);
  options.propagate_wfgd = false;
  runtime::SimCluster cluster(kProcesses, options, seed);

  runtime::WorkloadConfig wl;
  wl.mean_interarrival = SimTime::us(300);
  wl.mean_service = SimTime::us(600);
  wl.max_outstanding = 1;
  wl.blocked_may_request = false;
  wl.issue_until = SimTime::ms(40);
  runtime::RandomWorkload workload(cluster, wl, seed * 5 + 2);
  workload.start();

  std::optional<SimTime> formed;
  for (std::uint32_t i = 0; i < kCycleLen; ++i) {
    const ProcessId from{16 + i};
    const ProcessId to{16 + (i + 1) % kCycleLen};
    cluster.simulator().schedule(
        SimTime::ms(15) + SimTime::us(200 * i), [&cluster, &formed, from, to] {
          if (!cluster.process(from).waits_for().contains(to)) {
            cluster.request(from, to);
            if (!formed && cluster.oracle().on_dark_cycle(from)) {
              formed = cluster.simulator().now();
            }
          }
        });
  }

  Outcome o;
  std::size_t phantom = 0;
  cluster.set_detection_callback([&](const runtime::DeadlockEvent& e) {
    if (!cluster.oracle().on_dark_cycle(e.process)) ++phantom;
  });
  cluster.run();
  const auto stats = cluster.total_stats();
  o.messages = stats.probes_sent;
  // Probe wire size: 1 type byte + 4 initiator + 8 sequence.
  o.bytes = stats.probes_sent * 13;
  o.real = cluster.detections().empty() ? 0 : 1;
  o.phantom = phantom;
  if (!formed && workload.first_deadlock_at()) {
    formed = workload.first_deadlock_at();
  }
  if (formed) {
    // Latency relative to the planted cycle: first declaration at or after
    // its formation (earlier declarations are churn deadlocks).
    for (const auto& d : cluster.detections()) {
      if (d.at >= *formed) {
        o.latency_ms = (d.at - *formed).seconds() * 1e3;
        break;
      }
    }
  }
  return o;
}

template <typename Detector, typename... Args>
Outcome run_baseline(std::uint64_t seed, Args&&... args) {
  return run_workload(seed, [&](runtime::SimCluster& cluster,
                                SimTime /*planted_at*/) {
    Detector det(cluster, std::forward<Args>(args)...);
    det.start();
    cluster.simulator().run_until(SimTime::ms(120));
    det.stop();
    cluster.run();

    Outcome o;
    o.messages = det.messages_sent();
    o.bytes = det.bytes_sent();
    o.real = det.real_detections();
    o.phantom = det.phantom_detections();
    // Latency relative to the planted ring (it finishes forming ~16ms in);
    // earlier real detections are churn deadlocks and do not count.
    for (const auto& d : det.detections()) {
      if (d.real && d.at >= SimTime::ms(16)) {
        o.latency_ms = (d.at - SimTime::ms(16)).seconds() * 1e3;
        break;
      }
    }
    return o;
  });
}

void print_row(bench::Table& table, const char* name, const Outcome& o) {
  table.row({name, fmt(o.messages), fmt(o.bytes),
             o.latency_ms >= 0 ? bench::fmt(o.latency_ms, 2) : "miss",
             fmt(o.real), fmt(o.phantom)});
}

void run() {
  bench::Table table(
      "T3: detector comparison (24 processes, churny workload + planted "
      "5-cycle at t=15ms, horizon 120ms)",
      {"detector", "det. messages", "det. bytes", "latency (ms)",
       "real detections", "phantom detections"});

  // Averages over seeds are less interesting than one honest run per
  // detector on the same seed; we show three seeds' worth of rows.
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    print_row(table, ("cmh/probe s" + std::to_string(seed)).c_str(),
              run_cmh(seed));
    print_row(
        table,
        ("centralized s" + std::to_string(seed)).c_str(),
        run_baseline<baseline::CentralizedDetector>(seed, SimTime::ms(5)));
    print_row(
        table,
        ("path-pushing s" + std::to_string(seed)).c_str(),
        run_baseline<baseline::PathPushingDetector>(seed, SimTime::ms(5)));
    print_row(table, ("timeout s" + std::to_string(seed)).c_str(),
              run_baseline<baseline::TimeoutDetector>(seed, SimTime::ms(10)));
  }
  table.print();
  std::printf(
      "Expected shape: CMH detects with the fewest detection messages and\n"
      "zero phantoms.  Centralized pays a steady reporting stream whether or\n"
      "not deadlock exists; path-pushing pays repeated path floods; timeout\n"
      "sends nothing but flags long (live) waits as phantoms.\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
