// Experiment T5 -- DDB throughput under contention: CMH detection+abort vs
// client lock-wait timeouts.
//
// The paper's section 6 motivates detection with the DDB locking workload;
// this bench makes the operational payoff concrete.  The same transaction
// mix runs with (a) CMH probes aborting true victims, and (b) no detection,
// clients aborting themselves after a timeout.  Timeouts either fire too
// early (aborting live transactions -- wasted work) or too late (wedged
// lock queues) depending on contention; CMH aborts exactly the deadlocked.
#include "ddb/cluster.h"
#include "ddb/workload.h"
#include "table.h"

namespace {

using namespace cmh;
using namespace cmh::ddb;
using bench::fmt;

struct Outcome {
  std::uint64_t committed{0};
  std::uint64_t aborted{0};
  std::uint64_t given_up{0};
  double virtual_ms{0};
  std::uint64_t probes{0};
};

Outcome run_once(std::uint32_t hot_set, bool use_cmh, std::uint64_t seed) {
  DdbOptions options;
  if (use_cmh) {
    options.initiation = DdbInitiation::kDelayed;
    options.initiation_delay = SimTime::ms(2);
    options.abort_victim = true;
  } else {
    options.initiation = DdbInitiation::kManual;  // no probes at all
    options.abort_victim = false;
  }
  Cluster db({.n_sites = 4,
              .n_resources = hot_set,
              .options = options,
              .seed = seed});
  TxnScriptConfig cfg;
  cfg.locks_per_txn = 3;
  cfg.write_fraction = 0.8;
  cfg.hot_set = hot_set;
  cfg.hold_time = SimTime::ms(2);
  cfg.max_retries = 25;
  if (!use_cmh) cfg.lock_wait_timeout = SimTime::ms(12);
  TxnWorkload workload(db, cfg, seed * 7 + 3);
  workload.start(24);
  const SimTime end = db.simulator().run();

  Outcome o;
  o.committed = workload.result().committed;
  o.aborted = workload.result().aborted;
  o.given_up = workload.result().given_up;
  o.virtual_ms = end.seconds() * 1e3;
  o.probes = db.total_stats().probes_sent;
  return o;
}

void run() {
  bench::Table table(
      "T5: DDB throughput under contention -- CMH detection vs client "
      "timeouts (4 sites, 24 transactions, 3 write-heavy locks each)",
      {"hot set", "strategy", "committed", "aborted", "given up",
       "makespan (ms)", "commit/s (virt)", "probes"});

  for (const std::uint32_t hot : {32u, 16u, 8u, 4u}) {
    for (const bool use_cmh : {true, false}) {
      Outcome sum;
      constexpr int kSeeds = 3;
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const Outcome o = run_once(hot, use_cmh, seed);
        sum.committed += o.committed;
        sum.aborted += o.aborted;
        sum.given_up += o.given_up;
        sum.virtual_ms += o.virtual_ms;
        sum.probes += o.probes;
      }
      const double throughput =
          sum.virtual_ms > 0
              ? static_cast<double>(sum.committed) / (sum.virtual_ms / 1e3)
              : 0;
      table.row({fmt(hot), use_cmh ? "cmh" : "timeout",
                 fmt(sum.committed / kSeeds), fmt(sum.aborted / kSeeds),
                 fmt(sum.given_up / kSeeds),
                 bench::fmt(sum.virtual_ms / kSeeds, 1),
                 bench::fmt(throughput, 1), fmt(sum.probes / kSeeds)});
    }
  }
  table.print();
  std::printf(
      "Expected shape: at low contention (large hot set) the strategies\n"
      "tie.  As contention rises, timeouts abort more transactions (many of\n"
      "them live = wasted work) and stretch the makespan, while CMH aborts\n"
      "only true victims and keeps throughput higher.\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
