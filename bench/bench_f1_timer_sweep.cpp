// Experiment F1 -- the section-4.3 initiation-timer tradeoff.
//
// "if T is too small too many probe computations are initiated and if T is
// too large the time taken to detect deadlock (which is at least T) is too
// large."  Two workloads isolate the two sides:
//   (a) overhead: contended but deadlock-free traffic (every wait is
//       transient) -- counts probe computations avoided as T grows;
//   (b) latency: a ring deadlock planted at a known instant -- measures
//       detection delay, which is bounded below by T.
#include "graph/generators.h"
#include "runtime/sim_cluster.h"
#include "runtime/workload.h"
#include "table.h"

namespace {

using namespace cmh;
using bench::fmt;

core::Options delayed(SimTime t) {
  core::Options o;
  o.initiation = core::InitiationMode::kDelayed;
  o.initiation_delay = t;
  o.propagate_wfgd = false;
  return o;
}

/// (a) Deadlock-free churn: single-outstanding requests, no requests while
/// blocked, generous service -- waits are transient, a few ms long.
struct ChurnSample {
  std::uint64_t computations{0};
  std::uint64_t probes{0};
  bool deadlocked{false};
};

ChurnSample run_churn(SimTime t, std::uint64_t seed) {
  runtime::SimCluster cluster(16, delayed(t), seed);
  runtime::WorkloadConfig wl;
  wl.mean_interarrival = SimTime::us(400);
  wl.mean_service = SimTime::ms(2);
  wl.max_outstanding = 1;
  wl.ordered_requests = true;  // lock-ordering discipline: live by design
  wl.issue_until = SimTime::ms(60);
  runtime::RandomWorkload workload(cluster, wl, seed * 7 + 5);
  workload.start();
  cluster.run();
  ChurnSample s;
  const auto stats = cluster.total_stats();
  s.computations = stats.computations_initiated;
  s.probes = stats.probes_sent;
  s.deadlocked = workload.first_deadlock_at().has_value();
  return s;
}

/// (b) Planted ring: the cycle completes at a known virtual time.
double run_latency(SimTime t, std::uint64_t seed) {
  runtime::SimCluster cluster(8, delayed(t), seed);
  const SimTime plant_at = SimTime::ms(5);
  for (std::uint32_t i = 0; i < 6; ++i) {
    cluster.simulator().schedule(
        plant_at + SimTime::us(100 * i), [&cluster, i] {
          cluster.request(ProcessId{i}, ProcessId{(i + 1) % 6});
        });
  }
  const SimTime formed = plant_at + SimTime::us(100 * 5);
  cluster.run();
  if (cluster.detections().empty()) return -1;
  return (cluster.detections()[0].at - formed).seconds() * 1e3;
}

void run() {
  bench::Table table(
      "F1: initiation timer T sweep -- overhead on transient waits vs "
      "detection latency on a real deadlock",
      {"T (ms)", "computations (churn)", "probes (churn)",
       "detect latency (ms)", "missed"});

  const std::vector<std::int64_t> timer_ms = {0, 1, 2, 5, 10, 20, 50};
  const std::vector<std::uint64_t> seeds = {3, 5, 9, 11, 17, 23};

  // The workload's evolution is independent of T (detection does not alter
  // the basic model's request/reply traffic), so deadlock-free seeds can be
  // picked once.
  std::vector<std::uint64_t> clean_seeds;
  for (std::uint64_t seed = 1; seed < 200 && clean_seeds.size() < 6; ++seed) {
    if (!run_churn(SimTime::ms(5), seed).deadlocked) {
      clean_seeds.push_back(seed);
    }
  }

  for (const auto t : timer_ms) {
    double computations = 0;
    double probes = 0;
    int churn_runs = 0;
    for (const auto seed : clean_seeds) {
      const ChurnSample s = run_churn(SimTime::ms(t), seed);
      if (s.deadlocked) continue;  // defensive; should not happen
      computations += static_cast<double>(s.computations);
      probes += static_cast<double>(s.probes);
      ++churn_runs;
    }
    double latency = 0;
    int missed = 0;
    for (const auto seed : seeds) {
      const double l = run_latency(SimTime::ms(t), seed);
      if (l < 0) {
        ++missed;
      } else {
        latency += l;
      }
    }
    const int detected = static_cast<int>(seeds.size()) - missed;
    table.row({fmt(static_cast<std::int64_t>(t)),
               churn_runs ? bench::fmt(computations / churn_runs, 1) : "-",
               churn_runs ? bench::fmt(probes / churn_runs, 1) : "-",
               detected ? bench::fmt(latency / detected, 2) : "-",
               fmt(static_cast<std::int64_t>(missed))});
  }
  table.print();
  std::printf(
      "Expected shape: on the churn side, computations collapse once T\n"
      "exceeds the typical transient wait (~2-4ms here) -- the section-4.3\n"
      "saving.  On the deadlock side, latency ~= T + one cycle round-trip\n"
      "and 'missed' stays 0: the timer postpones detection, never loses\n"
      "it.\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
