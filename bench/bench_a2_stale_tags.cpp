// Ablation A2 -- the section-4.3 stale-computation rule.
//
// "If probe computation (i,n) is initiated, all probe computations (i,k)
// with k<n may be ignored."  Stale probes can only be *observed* when a
// newer tag overtakes an older one, which requires multiple paths: we use a
// ring 0 -> 1 -> ... -> L-1 -> 0 plus a chord 0 -> L/2.  An older
// computation's probe crawling down the long arc arrives at L/2 after the
// newer computation's chord probe already passed -- with the rule it dies
// there; ablated, it keeps circulating the remaining arc.
#include "graph/generators.h"
#include "runtime/sim_cluster.h"
#include "runtime/workload.h"
#include "table.h"

namespace {

using namespace cmh;
using bench::fmt;

struct Outcome {
  std::uint64_t probes{0};
  std::uint64_t meaningful{0};
  std::uint64_t declarations{0};
};

Outcome run_once(std::uint32_t len, std::uint32_t rounds, bool ignore_stale) {
  core::Options options;
  options.initiation = core::InitiationMode::kManual;
  options.propagate_wfgd = false;
  options.ignore_stale_computations = ignore_stale;
  // Fixed 100us per hop keeps the overtaking geometry deterministic.
  runtime::SimCluster cluster(len, options, 3,
                              sim::DelayModel::fixed(SimTime::us(100)));
  runtime::issue_scenario(cluster, graph::make_ring(len, len));
  cluster.request(ProcessId{0}, ProcessId{len / 2});  // the chord
  cluster.run();

  // Staggered initiations: each new tag's chord probe overtakes the
  // previous tag's arc probe at node len/2.
  for (std::uint32_t r = 0; r < rounds; ++r) {
    (void)cluster.process(ProcessId{0}).initiate();
    cluster.simulator().run_until(cluster.simulator().now() +
                                  SimTime::us(200));
  }
  cluster.run();
  Outcome o;
  const auto stats = cluster.total_stats();
  o.probes = stats.probes_sent;
  o.meaningful = stats.meaningful_probes;
  o.declarations = stats.deadlocks_declared;
  return o;
}

void run() {
  bench::Table table(
      "A2: stale-tag rule ablation (ring of L with chord 0->L/2, R "
      "initiations staggered 200us apart, 100us/hop)",
      {"ring L", "initiations R", "mode", "probes", "meaningful",
       "declarations"});

  for (const std::uint32_t len : {16u, 32u, 64u}) {
    for (const std::uint32_t rounds : {2u, 8u, 32u}) {
      for (const bool ignore : {true, false}) {
        const Outcome o = run_once(len, rounds, ignore);
        table.row({fmt(len), fmt(rounds),
                   ignore ? "paper (ignore stale)" : "ablated",
                   fmt(o.probes), fmt(o.meaningful), fmt(o.declarations)});
      }
    }
  }
  table.print();
  std::printf(
      "Expected shape: with the rule, each superseded computation's arc\n"
      "probe dies at the chord's merge point (node L/2); ablated, it walks\n"
      "the remaining L/2 hops too -- roughly (R-1) x L/2 extra probes, a\n"
      "~1.5x traffic increase at these shapes, growing with every extra\n"
      "merge point a denser graph would add.\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
