// Minimal fixed-width table printer shared by the experiment harnesses.
// Each bench binary prints the rows/series of one constructed experiment
// (see DESIGN.md section 6 and EXPERIMENTS.md).
#pragma once

#include <algorithm>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <type_traits>
#include <vector>

namespace cmh::bench {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  void row(std::initializer_list<std::string> cells) {
    rows_.emplace_back(cells);
  }

  void print() const {
    std::vector<std::size_t> widths;
    widths.reserve(columns_.size());
    for (const auto& c : columns_) widths.push_back(c.size());
    for (const auto& r : rows_) {
      for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], r[i].size());
      }
    }
    std::printf("\n=== %s ===\n", title_.c_str());
    print_row(columns_, widths);
    std::size_t total = 1;
    for (const auto w : widths) total += w + 3;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& r : rows_) print_row(r, widths);
    std::printf("\n");
  }

 private:
  static void print_row(const std::vector<std::string>& cells,
                        const std::vector<std::size_t>& widths) {
    std::printf("|");
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      std::printf(" %-*s |", static_cast<int>(widths[i]), cell.c_str());
    }
    std::printf("\n");
  }

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

template <typename T>
  requires std::is_integral_v<T>
inline std::string fmt(T v) {
  return std::to_string(v);
}

}  // namespace cmh::bench
