// Experiment F2 -- WFGD (section 5) message complexity.
//
// After a detection, the WFGD computation pushes growing edge sets
// backwards along black edges until every deadlocked vertex knows all
// permanent black paths leading from it.  We sweep the size of the
// deadlocked portion (cycle length + attached tails) and count messages
// and bytes, confirming termination and the polynomial growth the
// "never send the same message twice" rule implies.
#include "graph/generators.h"
#include "runtime/sim_cluster.h"
#include "runtime/workload.h"
#include "table.h"

namespace {

using namespace cmh;
using bench::fmt;

void run() {
  bench::Table table(
      "F2: WFGD propagation cost vs deadlocked-portion size",
      {"cycle L", "tails", "deadlocked vertices", "wfgd messages",
       "wfgd edges learned (max)", "informed vertices"});

  struct Case {
    std::uint32_t n;
    std::uint32_t cycle;
    std::uint32_t tails;
  };
  const std::vector<Case> cases = {
      {4, 2, 0},   {8, 4, 4},    {16, 8, 8},   {32, 16, 16},
      {64, 32, 32}, {128, 64, 64}, {128, 16, 112}, {256, 8, 248},
  };

  for (const Case& c : cases) {
    core::Options options;
    options.initiation = core::InitiationMode::kManual;
    options.propagate_wfgd = true;
    runtime::SimCluster cluster(c.n, options, 5);
    runtime::issue_scenario(
        cluster, graph::make_ring_with_tails(c.n, c.cycle, c.tails, 9));
    cluster.run();
    (void)cluster.process(ProcessId{0}).initiate();
    cluster.run();  // terminates => WFGD terminated

    const auto stats = cluster.total_stats();
    std::size_t informed = 0;
    std::size_t max_edges = 0;
    for (std::uint32_t i = 0; i < c.n; ++i) {
      const auto& p = cluster.process(ProcessId{i});
      if (!p.wfgd_edges().empty()) {
        ++informed;
        max_edges = std::max(max_edges, p.wfgd_edges().size());
      }
    }
    table.row({fmt(c.cycle), fmt(c.tails), fmt(c.cycle),
               fmt(stats.wfgd_messages_sent), fmt(max_edges), fmt(informed)});
  }
  table.print();
  std::printf(
      "Expected shape: messages grow roughly with (cycle + tails) times the\n"
      "path depth; every vertex with a black path into the cycle ends up\n"
      "informed; the run terminating at all is the section-5 termination\n"
      "claim made executable.\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
