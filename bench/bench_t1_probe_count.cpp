// Experiment T1 -- probe-count bound (paper section 4.3).
//
// Claim: "there can be at most N probes in a single probe computation"
// (one probe per edge out of each vertex, each vertex forwards once).
// We embed a dark cycle of length L in an N-vertex wait-for graph with
// random tails, wedge the system, run ONE probe computation from a cycle
// member, and count probes.
#include "graph/generators.h"
#include "runtime/sim_cluster.h"
#include "runtime/workload.h"
#include "table.h"

namespace {

using namespace cmh;
using bench::fmt;

struct Row {
  std::uint32_t n;
  std::uint32_t cycle_len;
  std::uint32_t tails;
};

void run() {
  bench::Table table(
      "T1: probes per computation vs N (bound: probes <= N, section 4.3)",
      {"N", "cycle L", "tail edges", "probes sent", "bound N", "meaningful",
       "detected"});

  const std::vector<Row> rows = {
      {8, 4, 6},      {16, 8, 12},    {32, 16, 24},  {64, 32, 48},
      {128, 64, 96},  {256, 128, 192}, {512, 64, 448}, {512, 256, 256},
  };
  for (const Row& row : rows) {
    core::Options options;
    options.initiation = core::InitiationMode::kManual;
    options.propagate_wfgd = false;
    runtime::SimCluster cluster(row.n, options, /*seed=*/7);
    runtime::issue_scenario(
        cluster,
        graph::make_ring_with_tails(row.n, row.cycle_len, row.tails, 13));
    cluster.run();  // wedge; all planted edges black

    (void)cluster.process(ProcessId{0}).initiate();
    cluster.run();

    const auto stats = cluster.total_stats();
    table.row({fmt(row.n), fmt(row.cycle_len), fmt(row.tails),
               fmt(stats.probes_sent), fmt(row.n),
               fmt(stats.meaningful_probes),
               cluster.detections().empty() ? "no" : "yes"});
  }
  table.print();
  std::printf("Expected shape: probes <= N for every row; detection always "
              "succeeds from a cycle member.\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
