// Transport microbenchmarks (google-benchmark): small-frame throughput of
// the three threaded transports.  The number CI gates on is the epoll
// transport's items/s -- the enqueue-and-wake + coalesced-sendmsg hot path
// this tree's event-loop rewrite bought.  The blocking and in-memory rows
// are context: the former is the architecture baseline, the latter the
// no-syscall upper bound.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "net/blocking_tcp_transport.h"
#include "net/inmemory_transport.h"
#include "net/tcp_transport.h"

namespace {

using namespace cmh;
using namespace cmh::net;

constexpr std::size_t kFramesPerIter = 2000;
constexpr std::size_t kPayloadBytes = 64;

// One iteration = kFramesPerIter frames pushed round-robin across all
// (i -> i+1 mod n) channels from a single caller thread, then a wait for
// full delivery -- so the measured time covers the whole pipe, not just
// the enqueue.
template <typename TransportT>
void run_small_frames(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  TransportT transport;
  std::atomic<std::uint64_t> delivered{0};
  for (std::uint32_t i = 0; i < nodes; ++i) {
    transport.add_node(
        [&delivered](NodeId, const Bytes&) { delivered.fetch_add(1); });
  }
  transport.start();
  const Bytes payload(kPayloadBytes, 0xab);

  // Warm-up: touch every channel once so connection setup is not measured.
  for (std::uint32_t i = 0; i < nodes; ++i) {
    transport.send(i, (i + 1) % nodes, payload);
  }
  while (delivered.load() < nodes) std::this_thread::yield();

  std::uint64_t target = delivered.load();
  for (auto _ : state) {
    target += kFramesPerIter;
    for (std::size_t f = 0; f < kFramesPerIter; ++f) {
      const auto src = static_cast<std::uint32_t>(f % nodes);
      transport.send(src, (src + 1) % nodes, payload);
    }
    while (delivered.load(std::memory_order_relaxed) < target) {
      std::this_thread::yield();
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kFramesPerIter));
  transport.stop();
}

void BM_NetEpollTcpSmallFrames(benchmark::State& state) {
  run_small_frames<TcpTransport>(state);
}

void BM_NetBlockingTcpSmallFrames(benchmark::State& state) {
  run_small_frames<BlockingTcpTransport>(state);
}

void BM_NetInMemorySmallFrames(benchmark::State& state) {
  run_small_frames<InMemoryTransport>(state);
}

BENCHMARK(BM_NetEpollTcpSmallFrames)->Arg(4)->Arg(16)->UseRealTime();
BENCHMARK(BM_NetBlockingTcpSmallFrames)->Arg(4)->Arg(16)->UseRealTime();
BENCHMARK(BM_NetInMemorySmallFrames)->Arg(4)->Arg(16)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
