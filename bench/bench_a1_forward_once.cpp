// Ablation A1 -- the step-A2 forward-once gate.
//
// The algorithm note in section 3.4 makes each vertex forward only the
// FIRST meaningful probe of a computation.  Remove the gate and each
// meaningful probe re-floods all outgoing edges: on graphs with converging
// paths the probe count multiplies per diamond and grows combinatorially.
#include "runtime/sim_cluster.h"
#include "runtime/workload.h"
#include "table.h"

namespace {

using namespace cmh;
using bench::fmt;

/// Builds a "ladder of diamonds" ending in a 2-cycle:
/// s -> {a_i, b_i} -> s_{i+1} for i in [0, depth), then the last stage
/// closes back to s_0.  Every diamond doubles path multiplicity.
void build_ladder(runtime::SimCluster& cluster, std::uint32_t depth) {
  auto spine = [](std::uint32_t i) { return ProcessId{3 * i}; };
  for (std::uint32_t i = 0; i < depth; ++i) {
    const ProcessId a{3 * i + 1};
    const ProcessId b{3 * i + 2};
    cluster.request(spine(i), a);
    cluster.request(spine(i), b);
    cluster.request(a, spine(i + 1));
    cluster.request(b, spine(i + 1));
  }
  cluster.request(spine(depth), spine(0));  // close the cycle
}

std::uint64_t run_once(std::uint32_t depth, bool forward_every) {
  core::Options options;
  options.initiation = core::InitiationMode::kManual;
  options.propagate_wfgd = false;
  options.forward_every_meaningful_probe = forward_every;
  runtime::SimCluster cluster(3 * depth + 1, options, 3);
  build_ladder(cluster, depth);
  cluster.run();
  (void)cluster.process(ProcessId{0}).initiate();
  cluster.run();
  return cluster.total_stats().probes_sent;
}

void run() {
  bench::Table table(
      "A1: forward-once gate ablation (diamond ladder of given depth, one "
      "probe computation)",
      {"diamond depth", "vertices", "probes (paper, forward-once)",
       "probes (ablated, forward-every)", "blowup x"});

  for (const std::uint32_t depth : {1u, 2u, 4u, 6u, 8u, 10u, 12u}) {
    const auto paper = run_once(depth, false);
    const auto ablated = run_once(depth, true);
    table.row({fmt(depth), fmt(3 * depth + 1), fmt(paper), fmt(ablated),
               bench::fmt(static_cast<double>(ablated) /
                              static_cast<double>(paper),
                          1)});
  }
  table.print();
  std::printf(
      "Expected shape: forward-once stays <= N probes (linear in depth);\n"
      "forward-every roughly doubles per diamond (exponential), which is\n"
      "why step A2's gate is essential, not an optimization.\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
