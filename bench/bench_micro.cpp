// Microbenchmarks (google-benchmark): hot-path costs of the building
// blocks -- message codecs, lock-manager operations, probe handling, and
// oracle cycle checks.  These are the per-operation costs behind the
// experiment tables.
#include <benchmark/benchmark.h>

#include "core/basic_process.h"
#include "core/messages.h"
#include "ddb/lock_manager.h"
#include "graph/generators.h"
#include "graph/wait_for_graph.h"

namespace {

using namespace cmh;

void BM_EncodeProbe(benchmark::State& state) {
  const core::Message msg{core::ProbeMsg{ProbeTag{ProcessId{7}, 123456}}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::encode(msg));
  }
}
BENCHMARK(BM_EncodeProbe);

void BM_DecodeProbe(benchmark::State& state) {
  const Bytes bytes =
      core::encode(core::Message{core::ProbeMsg{ProbeTag{ProcessId{7}, 1}}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::decode(bytes));
  }
}
BENCHMARK(BM_DecodeProbe);

void BM_EncodeWfgd(benchmark::State& state) {
  core::WfgdMsg msg;
  for (std::uint32_t i = 0; i < state.range(0); ++i) {
    msg.edges.push_back(graph::Edge{ProcessId{i}, ProcessId{i + 1}});
  }
  const core::Message m{msg};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::encode(m));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EncodeWfgd)->Range(1, 1 << 10)->Complexity(benchmark::oN);

void BM_ProbeHandling(benchmark::State& state) {
  // One meaningful-probe delivery at a non-initiator with an out edge.
  core::Options options;
  options.initiation = core::InitiationMode::kManual;
  std::uint64_t sink = 0;
  core::BasicProcess p(
      ProcessId{1},
      [&sink](ProcessId, BytesView b) { sink += b.size(); }, options);
  p.send_request(ProcessId{2});
  if (!p.on_message(ProcessId{0},
                    core::encode(core::Message{core::RequestMsg{}}))
           .ok()) {
    state.SkipWithError("request delivery failed");
    return;
  }
  std::uint64_t seq = 0;
  for (auto _ : state) {
    const Bytes probe = core::encode(
        core::Message{core::ProbeMsg{ProbeTag{ProcessId{0}, ++seq}}});
    benchmark::DoNotOptimize(p.on_message(ProcessId{0}, probe));
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ProbeHandling);

void BM_LockAcquireRelease(benchmark::State& state) {
  ddb::LockManager lm;
  const ddb::LockMode mode = ddb::LockMode::kWrite;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lm.acquire(ResourceId{1}, TransactionId{1}, mode, SiteId{0}));
    benchmark::DoNotOptimize(lm.release(ResourceId{1}, TransactionId{1}));
  }
}
BENCHMARK(BM_LockAcquireRelease);

void BM_LockContendedQueue(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    ddb::LockManager lm;
    (void)lm.acquire(ResourceId{1}, TransactionId{0}, ddb::LockMode::kWrite,
                     SiteId{0});
    state.ResumeTiming();
    for (std::uint32_t t = 1; t <= state.range(0); ++t) {
      benchmark::DoNotOptimize(lm.acquire(ResourceId{1}, TransactionId{t},
                                          ddb::LockMode::kWrite, SiteId{0}));
    }
    benchmark::DoNotOptimize(lm.wait_edges());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LockContendedQueue)->Range(4, 256)->Complexity();

void BM_OracleDarkCycle(benchmark::State& state) {
  const auto scenario = graph::make_ring_with_tails(
      static_cast<std::uint32_t>(state.range(0)),
      static_cast<std::uint32_t>(state.range(0)) / 4,
      static_cast<std::uint32_t>(state.range(0)) / 2, 7);
  const graph::WaitForGraph g =
      graph::replay(scenario, scenario.script.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.on_dark_cycle(ProcessId{0}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OracleDarkCycle)->Range(16, 1024)->Complexity();

}  // namespace

BENCHMARK_MAIN();
