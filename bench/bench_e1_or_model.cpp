// Extension experiment E1 -- the OR (communication) model detector.
//
// Section 1 contrasts the paper's AND/resource model with the message model
// of reference [1], where a blocked process proceeds when ANY dependent
// responds; section 7 lists other system models as future work.  This bench
// measures the diffusing-computation detector on knots of growing size and
// shows the structural difference from the AND model: a cycle is necessary
// but NOT sufficient for OR deadlock.
#include "runtime/or_cluster.h"
#include "table.h"

namespace {

using namespace cmh;
using bench::fmt;

/// Knot: ring of rings -- every process waits on its two neighbours, so
/// every escape path stays inside the blocked set.
void build_knot(runtime::OrCluster& cluster, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    cluster.block(ProcessId{i},
                  {ProcessId{(i + 1) % n}, ProcessId{(i + 2) % n}});
  }
}

/// Cycle with one escape: same shape, but one extra ACTIVE process is in
/// the last dependent set -- not a deadlock in the OR model.
void build_escape(runtime::OrCluster& cluster, std::uint32_t n) {
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    cluster.block(ProcessId{i},
                  {ProcessId{(i + 1) % (n - 1)}, ProcessId{n - 1}});
  }
  // Process n-1 stays active.
}

void run() {
  bench::Table table(
      "E1: OR-model (communication model) detector -- knots vs escapes",
      {"N", "shape", "queries", "replies", "declared", "latency (ms)"});

  for (const std::uint32_t n : {4u, 8u, 16u, 32u, 64u, 128u}) {
    {
      runtime::OrCluster cluster(n, 3,
                                 sim::DelayModel::fixed(SimTime::us(100)));
      build_knot(cluster, n);
      cluster.run();
      const auto stats = cluster.total_stats();
      const double latency =
          cluster.detections().empty()
              ? -1
              : cluster.detections()[0].at.seconds() * 1e3;
      table.row({fmt(n), "knot (deadlock)", fmt(stats.queries_sent),
                 fmt(stats.replies_sent),
                 fmt(stats.deadlocks_declared),
                 latency < 0 ? "miss" : bench::fmt(latency, 2)});
    }
    {
      runtime::OrCluster cluster(n, 3,
                                 sim::DelayModel::fixed(SimTime::us(100)));
      build_escape(cluster, n);
      cluster.run();
      const auto stats = cluster.total_stats();
      table.row({fmt(n), "cycle w/ escape", fmt(stats.queries_sent),
                 fmt(stats.replies_sent),
                 fmt(stats.deadlocks_declared), "-"});
    }
  }
  table.print();
  std::printf(
      "Expected shape: knots are declared (queries ~ sum of dependent-set\n"
      "sizes per computation, latency ~ knot diameter x hop delay); cycles\n"
      "with one active escape are never declared -- the OR model's\n"
      "any-helper semantics, which the AND-model probe would wrongly call\n"
      "deadlock if applied naively.\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
