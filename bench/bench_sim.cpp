// Simulator-level macro benchmarks (google-benchmark): end-to-end event
// throughput of the discrete-event core and full detection waves on the
// cluster harness.  These are the trajectory numbers behind BENCH_sim.json;
// bench_micro.cpp covers the per-operation costs.
#include <benchmark/benchmark.h>

#include <chrono>

#include "graph/generators.h"
#include "runtime/sim_cluster.h"
#include "runtime/workload.h"
#include "sim/simulator.h"

namespace {

using namespace cmh;

/// Rigs an n-node ring where every delivery forwards the payload to the
/// next node until `hops` runs dry, then injects one frame per node.
/// Measures raw event-loop throughput: queue ops, FIFO clamping, payload
/// pooling, handler dispatch.
void BM_SimMessageChurn(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  constexpr std::int64_t kHopsPerRound = 20000;
  sim::Simulator sim(1, sim::DelayModel::fixed(SimTime::us(10)));
  std::int64_t hops = 0;
  for (std::uint32_t i = 0; i < n; ++i) sim.add_node({});
  for (std::uint32_t i = 0; i < n; ++i) {
    sim.set_handler(i, [&sim, &hops, i, n](sim::NodeId, const Bytes& p) {
      if (hops-- > 0) sim.send(i, (i + 1) % n, p);
    });
  }
  const Bytes frame{0x42, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49};
  std::uint64_t events = 0;
  for (auto _ : state) {
    hops = kHopsPerRound;
    for (std::uint32_t i = 0; i < n; ++i) sim.send(i, (i + 1) % n, frame);
    sim.run();
    events += kHopsPerRound + n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimMessageChurn)->Arg(2)->Arg(16)->Arg(128);

/// Same churn drained through run_batch: the throughput interface the
/// experiment drivers use.
void BM_SimBatchedChurn(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  constexpr std::int64_t kHopsPerRound = 20000;
  sim::Simulator sim(1, sim::DelayModel::fixed(SimTime::us(10)));
  std::int64_t hops = 0;
  for (std::uint32_t i = 0; i < n; ++i) sim.add_node({});
  for (std::uint32_t i = 0; i < n; ++i) {
    sim.set_handler(i, [&sim, &hops, i, n](sim::NodeId, const Bytes& p) {
      if (hops-- > 0) sim.send(i, (i + 1) % n, p);
    });
  }
  const Bytes frame{0x42, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49};
  std::uint64_t events = 0;
  for (auto _ : state) {
    hops = kHopsPerRound;
    for (std::uint32_t i = 0; i < n; ++i) sim.send(i, (i + 1) % n, frame);
    while (sim.run_batch(256) > 0) {
    }
    events += kHopsPerRound + n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimBatchedChurn)->Arg(16);

/// Timer-heavy load: interleaves timers with message traffic, stressing
/// the callback event kind and the shared priority queue.
void BM_SimTimerStorm(benchmark::State& state) {
  sim::Simulator sim(3, sim::DelayModel::fixed(SimTime::us(5)));
  const sim::NodeId a = sim.add_node({});
  const sim::NodeId b = sim.add_node([](sim::NodeId, const Bytes&) {});
  (void)a;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(SimTime::us(i % 97), [] {});
      if (i % 4 == 0) sim.send(a, b, Bytes{1});
    }
    sim.run();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(sim.stats().events_processed));
}
BENCHMARK(BM_SimTimerStorm);

/// Full detection wave: wedge an n-ring (with tails), initiate, and run to
/// quiescence.  Covers request/reply traffic, probe fan-out, the oracle's
/// graph bookkeeping, and every codec -- the paper's T1/T2 experiments in
/// benchmark form.
void BM_DetectionWaveRing(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  core::Options options;
  options.initiation = core::InitiationMode::kManual;
  std::uint64_t probes = 0;
  for (auto _ : state) {
    runtime::SimCluster cluster(n, options, /*seed=*/17);
    runtime::issue_scenario(cluster, graph::make_ring(n, n));
    cluster.run();
    benchmark::DoNotOptimize(cluster.process(ProcessId{0}).initiate());
    cluster.run();
    if (cluster.detections().empty()) {
      state.SkipWithError("ring detection failed");
      return;
    }
    probes += cluster.total_stats().probes_sent;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(probes));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DetectionWaveRing)->Range(8, 256)->Complexity();

/// Parallel-engine scaling sweep: 65536 processes tiled into 4096 disjoint
/// 16-cycles (contiguous blocks, so the cycles stay shard-local), every ring
/// head initiating at once.  Only the detection wave is timed (manual time);
/// cluster construction and the wedge run are setup.  The arg is the shard
/// count K -- identical schedule for every K by the determinism invariant,
/// so the sweep isolates pure engine scaling.  The oracle is off: it is
/// global state the parallel engine must not share (and its bookkeeping
/// would dwarf the event loop at this scale anyway).
void BM_ShardedDetectionWave(benchmark::State& state) {
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  constexpr std::uint32_t kProcs = 65536;
  constexpr std::uint32_t kRingLen = 16;
  core::Options options;
  options.initiation = core::InitiationMode::kManual;
  const graph::Scenario scenario =
      graph::make_disjoint_rings(kProcs, kRingLen);
  std::uint64_t probes = 0;
  for (auto _ : state) {
    runtime::SimCluster cluster(
        kProcs, options,
        // audit = false explicitly: it defaults on in Debug builds and
        // rejects shards > 1 (the auditor is global mutable state).
        runtime::SimClusterConfig{.seed = 17,
                                  .shards = shards,
                                  .track_oracle = false,
                                  .audit = false});
    runtime::issue_scenario(cluster, scenario);
    cluster.run();  // wedge: all requests delivered, every process blocked
    for (const ProcessId head : scenario.planted_cycle) {
      cluster.process(head).initiate();
    }
    const auto t0 = std::chrono::steady_clock::now();
    cluster.run();  // timed: 4096 concurrent detection waves
    const auto t1 = std::chrono::steady_clock::now();
    if (cluster.detections().size() < scenario.planted_cycle.size()) {
      state.SkipWithError("detection waves incomplete");
      return;
    }
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
    probes += cluster.total_stats().probes_sent;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(probes));
}
BENCHMARK(BM_ShardedDetectionWave)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/// Random request/reply workload at steady state: the closest thing to the
/// paper's "normal operation" overhead measurements.  ordered_requests
/// keeps the traffic contended but deadlock-free so every round drains.
void BM_WorkloadChurn(benchmark::State& state) {
  core::Options options;
  options.initiation = core::InitiationMode::kOnRequest;
  runtime::WorkloadConfig cfg;
  cfg.issue_until = SimTime::ms(20);
  cfg.ordered_requests = true;
  for (auto _ : state) {
    runtime::SimCluster cluster(32, options, /*seed=*/23);
    runtime::RandomWorkload workload(cluster, cfg, /*seed=*/23);
    workload.start();
    cluster.run();
    benchmark::DoNotOptimize(cluster.total_stats().probes_sent);
    benchmark::DoNotOptimize(workload.requests_issued());
  }
}
BENCHMARK(BM_WorkloadChurn);

}  // namespace

BENCHMARK_MAIN();
