// Experiment T6 -- transport plumbing overhead.
//
// Part one: the same ring-deadlock scenario runs on the simulator and on
// the three threaded transports.  The simulator column reports virtual
// detection time (the algorithm's view); the threaded columns report
// wall-clock time including scheduler and socket overhead -- the "more
// plumbing required" the reproduction notes call out.
//
// Part two: small-frame throughput under multi-threaded senders, the
// workload the epoll event-loop transport was built for.  Reported per
// transport: frames/s, measured write syscalls per frame (sendmsg
// coalescing pushes it below one), and speedup over the retained
// thread-per-connection BlockingTcpTransport.  The acceptance bar from the
// event-loop PR: >= 2x blocking throughput at 16 nodes with < 1 write
// syscall per frame.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "net/blocking_tcp_transport.h"
#include "net/inmemory_transport.h"
#include "net/tcp_transport.h"
#include "runtime/sim_cluster.h"
#include "runtime/threaded_cluster.h"
#include "runtime/workload.h"
#include "table.h"

namespace {

using namespace cmh;
using namespace std::chrono;
using bench::fmt;

double sim_run(std::uint32_t n) {
  runtime::SimCluster cluster(n, core::Options{}, 3);
  runtime::issue_scenario(cluster, graph::make_ring(n, n));
  cluster.run_until_detection();
  return cluster.detections().empty()
             ? -1
             : cluster.detections()[0].at.seconds() * 1e3;
}

template <typename TransportT>
double threaded_run(std::uint32_t n) {
  TransportT transport;
  runtime::ThreadedCluster cluster(transport, n, core::Options{});
  const auto start = steady_clock::now();
  for (std::uint32_t i = 0; i < n; ++i) {
    cluster.request(ProcessId{i}, ProcessId{(i + 1) % n});
  }
  const auto declarer = cluster.wait_for_detection(milliseconds(10000));
  const auto elapsed =
      duration_cast<microseconds>(steady_clock::now() - start).count();
  cluster.stop();
  return declarer ? static_cast<double>(elapsed) / 1e3 : -1;
}

void run_detection_table() {
  bench::Table table(
      "T6a: ring-deadlock detection across transports (ms; sim column is "
      "virtual time, threaded columns are wall clock)",
      {"ring size", "simulator", "in-memory threads", "blocking tcp",
       "epoll tcp"});

  for (const std::uint32_t n : {4u, 8u, 16u, 32u}) {
    const double sim_ms = sim_run(n);
    const double mem_ms = threaded_run<net::InMemoryTransport>(n);
    const double blk_ms = threaded_run<net::BlockingTcpTransport>(n);
    const double epl_ms = threaded_run<net::TcpTransport>(n);
    auto cell = [](double v) {
      return v < 0 ? std::string("miss") : bench::fmt(v, 2);
    };
    table.row({fmt(n), cell(sim_ms), cell(mem_ms), cell(blk_ms),
               cell(epl_ms)});
  }
  table.print();
}

struct ThroughputResult {
  double frames_per_sec{0};
  double write_sys_per_frame{-1};  // -1 = transport keeps no I/O stats
  double read_sys_per_frame{-1};
};

// kSenders caller threads blast 64-byte frames over disjoint channels
// (sender k owns the k -> n-1-k channel) until every frame is delivered.
template <typename TransportT>
ThroughputResult measure_throughput(std::uint32_t nodes,
                                    std::uint32_t senders,
                                    std::uint64_t frames_per_sender) {
  TransportT transport;
  std::atomic<std::uint64_t> delivered{0};
  for (std::uint32_t i = 0; i < nodes; ++i) {
    transport.add_node(
        [&delivered](net::NodeId, const Bytes&) { delivered.fetch_add(1); });
  }
  transport.start();
  const Bytes payload(64, 0xab);

  // Warm-up: establish every measured channel before the clock starts.
  for (std::uint32_t k = 0; k < senders; ++k) {
    transport.send(k, nodes - 1 - k, payload);
  }
  while (delivered.load() < senders) std::this_thread::yield();

  const std::uint64_t total = senders * frames_per_sender + senders;
  const auto start = steady_clock::now();
  std::vector<std::thread> threads;
  for (std::uint32_t k = 0; k < senders; ++k) {
    threads.emplace_back([&, k] {
      for (std::uint64_t f = 0; f < frames_per_sender; ++f) {
        transport.send(k, nodes - 1 - k, payload);
      }
    });
  }
  for (auto& th : threads) th.join();
  while (delivered.load() < total) std::this_thread::yield();
  const double secs =
      duration_cast<duration<double>>(steady_clock::now() - start).count();

  ThroughputResult r;
  r.frames_per_sec = static_cast<double>(senders * frames_per_sender) / secs;
  if constexpr (requires { transport.io_stats(); }) {
    const net::TransportIoStats s = transport.io_stats();
    if (s.frames_sent > 0) {
      r.write_sys_per_frame = static_cast<double>(s.write_syscalls) /
                              static_cast<double>(s.frames_sent);
      r.read_sys_per_frame = static_cast<double>(s.read_syscalls) /
                             static_cast<double>(s.frames_delivered);
    }
  }
  transport.stop();
  return r;
}

void run_throughput_table() {
  constexpr std::uint32_t kNodes = 16;
  constexpr std::uint32_t kSenders = 4;
  constexpr std::uint64_t kFrames = 50000;

  const auto mem =
      measure_throughput<net::InMemoryTransport>(kNodes, kSenders, kFrames);
  const auto blk = measure_throughput<net::BlockingTcpTransport>(
      kNodes, kSenders, kFrames);
  const auto epl =
      measure_throughput<net::TcpTransport>(kNodes, kSenders, kFrames);

  bench::Table table(
      "T6b: 64-byte frame throughput, 16 nodes, 4 concurrent senders",
      {"transport", "frames/s", "write sys/frame", "read sys/frame",
       "vs blocking"});
  auto sys_cell = [](double v) {
    return v < 0 ? std::string("-") : bench::fmt(v, 3);
  };
  auto row = [&](const char* name, const ThroughputResult& r) {
    table.row({name, fmt(r.frames_per_sec, 0),
               sys_cell(r.write_sys_per_frame),
               sys_cell(r.read_sys_per_frame),
               fmt(r.frames_per_sec / blk.frames_per_sec, 2) + "x"});
  };
  row("in-memory threads", mem);
  row("blocking tcp", blk);
  row("epoll tcp", epl);
  table.print();

  std::printf(
      "Acceptance (event-loop PR): epoll tcp >= 2x blocking tcp -> %s "
      "(%.2fx); write syscalls/frame < 1 -> %s (%.3f)\n",
      epl.frames_per_sec >= 2 * blk.frames_per_sec ? "PASS" : "FAIL",
      epl.frames_per_sec / blk.frames_per_sec,
      epl.write_sys_per_frame < 1.0 ? "PASS" : "FAIL",
      epl.write_sys_per_frame);
}

void run() {
  run_detection_table();
  std::printf(
      "Expected shape: all transports detect every ring.  In-memory threads\n"
      "are fastest in wall clock; TCP adds connection setup + syscall\n"
      "overhead; the simulator's virtual latency reflects the configured\n"
      "delay model rather than host speed.\n\n");
  run_throughput_table();
}

}  // namespace

int main() {
  run();
  return 0;
}
