// Experiment T6 -- transport plumbing overhead.
//
// The same ring-deadlock scenario runs on the three transports.  The
// simulator column reports virtual detection time (the algorithm's view);
// the threaded columns report wall-clock time including scheduler and
// socket overhead -- the "more plumbing required" the reproduction notes
// call out.
#include <chrono>

#include "graph/generators.h"
#include "net/inmemory_transport.h"
#include "net/tcp_transport.h"
#include "runtime/sim_cluster.h"
#include "runtime/threaded_cluster.h"
#include "runtime/workload.h"
#include "table.h"

namespace {

using namespace cmh;
using namespace std::chrono;
using bench::fmt;

double sim_run(std::uint32_t n) {
  runtime::SimCluster cluster(n, core::Options{}, 3);
  runtime::issue_scenario(cluster, graph::make_ring(n, n));
  cluster.run_until_detection();
  return cluster.detections().empty()
             ? -1
             : cluster.detections()[0].at.seconds() * 1e3;
}

template <typename TransportT>
double threaded_run(std::uint32_t n) {
  TransportT transport;
  runtime::ThreadedCluster cluster(transport, n, core::Options{});
  const auto start = steady_clock::now();
  for (std::uint32_t i = 0; i < n; ++i) {
    cluster.request(ProcessId{i}, ProcessId{(i + 1) % n});
  }
  const auto declarer = cluster.wait_for_detection(milliseconds(10000));
  const auto elapsed =
      duration_cast<microseconds>(steady_clock::now() - start).count();
  cluster.stop();
  return declarer ? static_cast<double>(elapsed) / 1e3 : -1;
}

void run() {
  bench::Table table(
      "T6: ring-deadlock detection across transports (ms; sim column is "
      "virtual time, threaded columns are wall clock)",
      {"ring size", "simulator", "in-memory threads", "tcp sockets"});

  for (const std::uint32_t n : {4u, 8u, 16u, 32u}) {
    const double sim_ms = sim_run(n);
    const double mem_ms = threaded_run<net::InMemoryTransport>(n);
    const double tcp_ms = threaded_run<net::TcpTransport>(n);
    auto cell = [](double v) {
      return v < 0 ? std::string("miss") : bench::fmt(v, 2);
    };
    table.row({fmt(n), cell(sim_ms), cell(mem_ms), cell(tcp_ms)});
  }
  table.print();
  std::printf(
      "Expected shape: all three detect every ring.  In-memory threads are\n"
      "fastest in wall clock; TCP adds connection setup + syscall overhead;\n"
      "the simulator's virtual latency reflects the configured delay model\n"
      "rather than host speed.\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
