// Experiment T4 -- the section-6.7 Q optimization.
//
// "it is sufficient for a controller to initiate separate probe computations
// for processes with incoming (black) inter-controller edges" -- Q
// computations instead of one per blocked constituent process.  We build DDB
// states with many locally-blocked transactions but few cross-site waiters
// and compare the number of computations and probes under check_all().
#include "ddb/cluster.h"
#include "table.h"

namespace {

using namespace cmh;
using namespace cmh::ddb;
using bench::fmt;

struct Shape {
  std::uint32_t local_waiters;  // purely local blocked transactions at S0
  std::uint32_t cross_pairs;    // distributed deadlock pairs S0 <-> S1
};

struct Outcome {
  std::size_t computations{0};
  std::uint64_t probes{0};
  std::size_t detections{0};
};

Outcome run_once(const Shape& shape, bool q_optimization) {
  DdbOptions options;
  options.initiation = DdbInitiation::kManual;
  options.q_optimization = q_optimization;
  options.abort_victim = false;
  Cluster db({.n_sites = 2,
              .n_resources = 2 * (2 + shape.cross_pairs * 2),
              .options = options});

  // Cross-site deadlock pairs: T_a holds r_even@S0 wants r_odd@S1, T_b the
  // reverse.  Each pair uses its own two resources.
  for (std::uint32_t k = 0; k < shape.cross_pairs; ++k) {
    const ResourceId r0{4 * k};      // site 0
    const ResourceId r1{4 * k + 1};  // site 1
    const auto ta = db.begin(SiteId{0});
    const auto tb = db.begin(SiteId{1});
    db.lock(ta, r0, LockMode::kWrite);
    db.lock(tb, r1, LockMode::kWrite);
    db.simulator().run();
    db.lock(ta, r1, LockMode::kWrite);
    db.lock(tb, r0, LockMode::kWrite);
    db.simulator().run();
  }

  // Local-only waiters at S0: all queue behind one holder on a dedicated
  // local resource (no cycle; just lots of blocked local processes).
  const ResourceId hot{4 * shape.cross_pairs};  // site 0
  const auto holder = db.begin(SiteId{0});
  db.lock(holder, hot, LockMode::kWrite);
  for (std::uint32_t k = 0; k < shape.local_waiters; ++k) {
    const auto t = db.begin(SiteId{0});
    db.lock(t, hot, LockMode::kWrite);
  }
  db.simulator().run();

  Outcome o;
  o.computations = db.controller(SiteId{0}).check_all();
  db.simulator().run();
  o.probes = db.total_stats().probes_sent;
  o.detections = db.detections().size();
  return o;
}

void run() {
  bench::Table table(
      "T4: section-6.7 Q optimization -- check_all() at controller S0",
      {"local waiters", "cross pairs", "mode", "computations", "probes",
       "detections"});

  const std::vector<Shape> shapes = {
      {4, 1}, {16, 1}, {64, 1}, {16, 4}, {64, 4}, {128, 2},
  };
  for (const Shape& shape : shapes) {
    for (const bool q : {false, true}) {
      const Outcome o = run_once(shape, q);
      table.row({fmt(shape.local_waiters), fmt(shape.cross_pairs),
                 q ? "Q-opt" : "naive", fmt(o.computations), fmt(o.probes),
                 fmt(o.detections)});
    }
  }
  table.print();
  std::printf(
      "Expected shape: naive initiates ~(local waiters + cross waiters)\n"
      "computations; Q-opt initiates only for processes with incoming black\n"
      "inter-controller edges (~cross pairs), cutting computations and\n"
      "probes by the local/Q ratio while still detecting every deadlock.\n");
}

}  // namespace

int main() {
  run();
  return 0;
}
