// SimCluster + InvariantAuditor integration: clean runs stay silent, forged
// traffic is caught at the exact axiom, and the multi-shard guard rails hold.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "check/axioms.h"
#include "core/messages.h"
#include "core/options.h"
#include "runtime/sim_cluster.h"
#include "sim/simulator.h"

namespace cmh::runtime {
namespace {

core::Options on_request_options() {
  core::Options o;
  o.initiation = core::InitiationMode::kOnRequest;
  return o;
}

SimClusterConfig audited(bool abort_on_violation = true) {
  SimClusterConfig config;
  config.seed = 7;
  config.audit = true;
  config.abort_on_violation = abort_on_violation;
  return config;
}

Bytes forged_probe() {
  return core::encode(
      core::Message{core::ProbeMsg{ProbeTag{ProcessId{1}, 1}}});
}

TEST(AuditedCluster, RingDeadlockRunsCleanUnderAbortModeAudit) {
  // abort_on_violation means the run itself is the assertion: any axiom
  // violation would throw out of the event loop.
  SimCluster cluster(3, on_request_options(), audited());
  cluster.request(ProcessId{0}, ProcessId{1});
  cluster.request(ProcessId{1}, ProcessId{2});
  cluster.request(ProcessId{2}, ProcessId{0});
  EXPECT_TRUE(cluster.run_until_detection());
  cluster.run();  // drain remaining traffic; fires P4/QRP1 end-of-run checks

  ASSERT_NE(cluster.auditor(), nullptr);
  EXPECT_TRUE(cluster.auditor()->violations().empty())
      << cluster.audit_report();
  EXPECT_FALSE(cluster.auditor()->declared().empty());
  // The re-derived shadow graph agrees with the cluster's own oracle.
  EXPECT_EQ(cluster.auditor()->derived().edges().size(),
            cluster.oracle().edges().size());
}

TEST(AuditedCluster, RequestReplyChurnRunsClean) {
  SimCluster cluster(3, on_request_options(), audited());
  cluster.request(ProcessId{0}, ProcessId{1});
  cluster.run();
  cluster.request(ProcessId{1}, ProcessId{2});
  cluster.run();
  cluster.reply(ProcessId{2}, ProcessId{1});
  cluster.run();
  cluster.reply(ProcessId{1}, ProcessId{0});
  cluster.run();

  ASSERT_NE(cluster.auditor(), nullptr);
  EXPECT_TRUE(cluster.auditor()->violations().empty())
      << cluster.audit_report();
  EXPECT_TRUE(cluster.auditor()->derived().edges().empty());
  EXPECT_TRUE(cluster.detections().empty());
}

TEST(AuditedCluster, ForgedProbeThrowsInAbortMode) {
  SimCluster cluster(2, on_request_options(), audited());
  // A probe along a wait-for edge that does not exist (P1), injected
  // directly at the transport below the process layer.
  EXPECT_THROW(cluster.simulator().send(1, 0, forged_probe()),
               check::InvariantViolationError);
}

TEST(AuditedCluster, ForgedProbeAccumulatesStructuredP1Report) {
  SimCluster cluster(2, on_request_options(),
                     audited(/*abort_on_violation=*/false));
  cluster.simulator().send(1, 0, forged_probe());
  cluster.run();

  ASSERT_NE(cluster.auditor(), nullptr);
  ASSERT_EQ(cluster.auditor()->violations().size(), 1u)
      << cluster.audit_report();
  const check::Violation& v = cluster.auditor()->violations().front();
  EXPECT_EQ(v.axiom, check::Axiom::kP1);
  EXPECT_EQ(v.from, ProcessId{1});
  EXPECT_EQ(v.to, ProcessId{0});
  EXPECT_NE(cluster.audit_report().find(check::to_string(check::Axiom::kP1)),
            std::string::npos);
}

TEST(AuditedCluster, ManualInitiationGatesQRP1Off) {
  // kManual means nobody ever initiates a computation, so an undeclared
  // cycle at quiescence is expected, not a missed deadlock.
  core::Options options;
  options.initiation = core::InitiationMode::kManual;
  SimCluster cluster(2, options, audited());
  cluster.request(ProcessId{0}, ProcessId{1});
  cluster.request(ProcessId{1}, ProcessId{0});
  cluster.run();  // would throw QRP1 if the gate were wrong

  ASSERT_NE(cluster.auditor(), nullptr);
  EXPECT_TRUE(cluster.auditor()->violations().empty())
      << cluster.audit_report();
}

TEST(AuditedCluster, AuditOffMeansNoAuditor) {
  SimClusterConfig config;
  config.audit = false;
  SimCluster cluster(2, on_request_options(), config);
  EXPECT_EQ(cluster.auditor(), nullptr);
  EXPECT_EQ(cluster.audit_report(), "");
}

TEST(AuditedCluster, AuditRejectsMultiShard) {
  SimClusterConfig config;
  config.shards = 2;
  config.track_oracle = false;
  config.audit = true;
  EXPECT_THROW(SimCluster(4, on_request_options(), config),
               std::invalid_argument);
}

TEST(AuditedCluster, ObserverHookRejectsMultiShard) {
  class NullObserver final : public sim::SimObserver {
   public:
    void on_send(sim::NodeId, sim::NodeId, BytesView, SimTime) override {}
    void on_deliver(sim::NodeId, sim::NodeId, BytesView, SimTime) override {}
  };
  NullObserver observer;
  sim::Simulator sharded(1, sim::DelayModel{}, /*shards=*/2);
  EXPECT_THROW(sharded.set_observer(&observer), std::logic_error);

  sim::Simulator single(1, sim::DelayModel{}, /*shards=*/1);
  single.set_observer(&observer);
  EXPECT_EQ(single.observer(), &observer);
  single.set_observer(nullptr);  // detaching is always allowed
  EXPECT_EQ(single.observer(), nullptr);
}

}  // namespace
}  // namespace cmh::runtime
