// Unit tests for the paper-invariant auditor: each axiom G1-G4/P1-P4 and
// QRP1/QRP2 is exercised with a hand-crafted message history that violates
// exactly that axiom, plus clean histories that must stay silent.
#include <gtest/gtest.h>

#include <string>

#include "check/invariant_auditor.h"
#include "common/ids.h"
#include "core/basic_process.h"
#include "core/messages.h"
#include "core/options.h"

namespace cmh::check {
namespace {

const ProcessId p0{0};
const ProcessId p1{1};
const ProcessId p2{2};

SimTime at(int step) { return SimTime::us(step); }

Bytes request_frame() { return core::encode(core::Message{core::RequestMsg{}}); }
Bytes reply_frame() { return core::encode(core::Message{core::ReplyMsg{}}); }
Bytes probe_frame(ProcessId initiator, std::uint64_t sequence) {
  return core::encode(
      core::Message{core::ProbeMsg{ProbeTag{initiator, sequence}}});
}
Bytes wfgd_frame() {
  return core::encode(
      core::Message{core::WfgdMsg{{graph::Edge{p0, p1}}}});
}

AuditorConfig accumulate() {
  return {.abort_on_violation = false, .check_qrp1 = true};
}

TEST(InvariantAuditor, CleanLifecycleIsSilent) {
  InvariantAuditor a(accumulate());
  a.on_send(p0, p1, request_frame(), at(0));
  a.on_deliver(p0, p1, request_frame(), at(1));
  EXPECT_TRUE(a.derived().has_edge(p0, p1));
  EXPECT_EQ(a.derived().color(p0, p1), graph::EdgeColor::kBlack);
  a.on_send(p1, p0, reply_frame(), at(2));
  a.on_deliver(p1, p0, reply_frame(), at(3));
  a.finalize(at(4));
  EXPECT_TRUE(a.violations().empty()) << a.report();
  EXPECT_FALSE(a.derived().has_edge(p0, p1));
  EXPECT_EQ(a.events_observed(), 4u);
}

TEST(InvariantAuditor, DuplicateRequestIsG1) {
  InvariantAuditor a(accumulate());
  a.on_send(p0, p1, request_frame(), at(0));
  a.on_send(p0, p1, request_frame(), at(1));
  ASSERT_EQ(a.violations().size(), 1u) << a.report();
  EXPECT_EQ(a.violations().front().axiom, Axiom::kG1);
  EXPECT_EQ(a.violations().front().from, p0);
  EXPECT_EQ(a.violations().front().to, p1);
}

TEST(InvariantAuditor, RequestDeliveredTwiceIsG2) {
  InvariantAuditor a(accumulate());
  a.on_send(p0, p1, request_frame(), at(0));
  a.on_deliver(p0, p1, request_frame(), at(1));
  // Forged duplicate delivery: the edge is already black, so the blacken
  // transition is rejected.  (The never-sent frame also breaks FIFO, so P2
  // fires alongside G2 -- both must be present.)
  a.on_deliver(p0, p1, request_frame(), at(2));
  bool saw_g2 = false;
  bool saw_p2 = false;
  for (const Violation& v : a.violations()) {
    saw_g2 = saw_g2 || v.axiom == Axiom::kG2;
    saw_p2 = saw_p2 || v.axiom == Axiom::kP2;
  }
  EXPECT_TRUE(saw_g2) << a.report();
  EXPECT_TRUE(saw_p2) << a.report();
}

TEST(InvariantAuditor, ReplyOnGreyEdgeIsG3) {
  InvariantAuditor a(accumulate());
  a.on_send(p0, p1, request_frame(), at(0));
  // Reply before the request was even delivered: whitening a grey edge.
  a.on_send(p1, p0, reply_frame(), at(1));
  ASSERT_FALSE(a.violations().empty());
  EXPECT_EQ(a.violations().front().axiom, Axiom::kG3);
}

TEST(InvariantAuditor, ReplyFromBlockedProcessIsG3) {
  InvariantAuditor a(accumulate());
  a.on_send(p0, p1, request_frame(), at(0));
  a.on_deliver(p0, p1, request_frame(), at(1));
  a.on_send(p1, p2, request_frame(), at(2));  // p1 is now blocked
  a.on_send(p1, p0, reply_frame(), at(3));
  ASSERT_FALSE(a.violations().empty());
  EXPECT_EQ(a.violations().front().axiom, Axiom::kG3);
}

TEST(InvariantAuditor, ReplyDeliveredOnNonWhiteEdgeIsG4) {
  InvariantAuditor a(accumulate());
  a.on_send(p0, p1, request_frame(), at(0));
  a.on_deliver(p0, p1, request_frame(), at(1));
  // A forged reply delivery with no matching send: the edge is black, not
  // white, so removal is rejected (G4); the frame also fails FIFO (P2).
  a.on_deliver(p1, p0, reply_frame(), at(2));
  bool saw_g4 = false;
  for (const Violation& v : a.violations()) {
    saw_g4 = saw_g4 || v.axiom == Axiom::kG4;
  }
  EXPECT_TRUE(saw_g4) << a.report();
}

TEST(InvariantAuditor, ProbeOnMissingEdgeIsP1) {
  InvariantAuditor a(accumulate());
  a.on_send(p0, p1, probe_frame(p0, 1), at(0));
  ASSERT_FALSE(a.violations().empty());
  EXPECT_EQ(a.violations().front().axiom, Axiom::kP1);
}

TEST(InvariantAuditor, WfgdToNonBlackPredecessorIsP1) {
  InvariantAuditor a(accumulate());
  a.on_send(p0, p1, request_frame(), at(0));
  // Edge (p0, p1) is only grey: p0 is not yet a *black* predecessor of p1,
  // so p1 must not send it a WFGD edge set.
  a.on_send(p1, p0, wfgd_frame(), at(1));
  ASSERT_FALSE(a.violations().empty());
  EXPECT_EQ(a.violations().front().axiom, Axiom::kP1);
}

TEST(InvariantAuditor, FifoReorderIsP2) {
  InvariantAuditor a(accumulate());
  a.on_send(p0, p1, request_frame(), at(0));
  a.on_send(p0, p1, probe_frame(p0, 1), at(1));
  // The probe overtakes the request on the same channel.
  a.on_deliver(p0, p1, probe_frame(p0, 1), at(2));
  ASSERT_FALSE(a.violations().empty());
  EXPECT_EQ(a.violations().front().axiom, Axiom::kP2);
}

TEST(InvariantAuditor, NeverSentDeliveryIsP2) {
  InvariantAuditor a(accumulate());
  a.on_deliver(p0, p1, request_frame(), at(0));
  ASSERT_FALSE(a.violations().empty());
  EXPECT_EQ(a.violations().front().axiom, Axiom::kP2);
}

TEST(InvariantAuditor, LostFrameIsP4) {
  InvariantAuditor a(accumulate());
  a.on_send(p0, p1, request_frame(), at(0));
  a.on_deliver(p0, p1, request_frame(), at(1));
  a.on_send(p1, p0, reply_frame(), at(2));
  // The reply never arrives.
  a.finalize(at(3));
  ASSERT_EQ(a.violations().size(), 1u) << a.report();
  EXPECT_EQ(a.violations().front().axiom, Axiom::kP4);
  EXPECT_EQ(a.violations().front().from, p1);
  EXPECT_EQ(a.violations().front().to, p0);
}

TEST(InvariantAuditor, FalseDeclarationIsQRP2) {
  InvariantAuditor a(accumulate());
  a.on_send(p1, p0, request_frame(), at(0));
  a.on_deliver(p1, p0, request_frame(), at(1));
  // p0 holds a request but waits on nobody -- it is on no cycle.
  a.on_declare(p0, at(2));
  ASSERT_FALSE(a.violations().empty());
  EXPECT_EQ(a.violations().front().axiom, Axiom::kQRP2);
}

TEST(InvariantAuditor, UndeclaredDarkCycleIsQRP1) {
  InvariantAuditor a(accumulate());
  a.on_send(p0, p1, request_frame(), at(0));
  a.on_deliver(p0, p1, request_frame(), at(1));
  a.on_send(p1, p0, request_frame(), at(2));
  a.on_deliver(p1, p0, request_frame(), at(3));
  a.finalize(at(4));
  ASSERT_FALSE(a.violations().empty());
  EXPECT_EQ(a.violations().front().axiom, Axiom::kQRP1);
}

TEST(InvariantAuditor, DeclaredDarkCycleSatisfiesQRP1) {
  InvariantAuditor a(accumulate());
  a.on_send(p0, p1, request_frame(), at(0));
  a.on_deliver(p0, p1, request_frame(), at(1));
  a.on_send(p1, p0, request_frame(), at(2));
  a.on_deliver(p1, p0, request_frame(), at(3));
  a.on_declare(p0, at(4));  // on the dark cycle: QRP2 holds too
  a.finalize(at(5));
  EXPECT_TRUE(a.violations().empty()) << a.report();
  EXPECT_TRUE(a.declared().contains(p0));
}

TEST(InvariantAuditor, ManualInitiationDisablesQRP1) {
  InvariantAuditor a({.abort_on_violation = false, .check_qrp1 = false});
  a.on_send(p0, p1, request_frame(), at(0));
  a.on_deliver(p0, p1, request_frame(), at(1));
  a.on_send(p1, p0, request_frame(), at(2));
  a.on_deliver(p1, p0, request_frame(), at(3));
  a.finalize(at(4));
  EXPECT_TRUE(a.violations().empty()) << a.report();
}

TEST(InvariantAuditor, LocalViewProjectionP3) {
  InvariantAuditor a(accumulate());
  core::Options options;
  options.initiation = core::InitiationMode::kManual;
  core::BasicProcess process{p1, [](ProcessId, BytesView) {}, options};

  const Bytes req = request_frame();
  a.on_send(p0, p1, req, at(0));
  a.on_deliver(p0, p1, req, at(1));
  ASSERT_TRUE(process.on_message(p0, req).ok());
  a.check_local_view(process, at(1));
  EXPECT_TRUE(a.violations().empty()) << a.report();

  // A second delivery the process never handles: its held_requests no longer
  // matches the shadow graph's black in-edges.
  a.on_send(p2, p1, req, at(2));
  a.on_deliver(p2, p1, req, at(3));
  a.check_local_view(process, at(3));
  ASSERT_FALSE(a.violations().empty());
  EXPECT_EQ(a.violations().front().axiom, Axiom::kP3);
}

TEST(InvariantAuditor, AbortModeThrowsStructuredError) {
  InvariantAuditor a({.abort_on_violation = true, .check_qrp1 = true});
  a.on_send(p0, p1, request_frame(), at(0));
  try {
    a.on_send(p0, p1, request_frame(), at(1));
    FAIL() << "duplicate request must throw under abort_on_violation";
  } catch (const InvariantViolationError& e) {
    EXPECT_EQ(e.violation().axiom, Axiom::kG1);
    EXPECT_EQ(e.violation().from, p0);
    EXPECT_EQ(e.violation().to, p1);
  }
  // The violation is also retained for post-mortem reporting.
  EXPECT_FALSE(a.violations().empty());
}

TEST(InvariantAuditor, ReportNamesAxiomEventAndChannel) {
  InvariantAuditor a(accumulate());
  a.on_send(p0, p1, request_frame(), at(0));
  a.on_send(p0, p1, request_frame(), at(7));
  const std::string report = a.report();
  EXPECT_NE(report.find(to_string(Axiom::kG1)), std::string::npos) << report;
  EXPECT_NE(report.find(p0.to_string()), std::string::npos) << report;
  EXPECT_NE(report.find(p1.to_string()), std::string::npos) << report;
  const Violation& v = a.violations().front();
  EXPECT_NE(report.find(std::to_string(v.event_seq)), std::string::npos)
      << report;
}

}  // namespace
}  // namespace cmh::check
