// The exhaustive interleaving checker run over the canonical small
// scenarios: every delivery/script schedule of each scenario is enumerated
// (sleep-set-reduced but state-complete) with the paper-invariant auditor
// embedded, so a single failing schedule anywhere in the product fails the
// test with a replayable trace.  The SeededBug suite then plants one
// protocol/transport bug per axiom and asserts the checker convicts it of
// exactly that axiom.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "check/basic_system.h"
#include "check/ddb_system.h"
#include "check/explore.h"
#include "core/messages.h"
#include "core/options.h"

namespace cmh::check {
namespace {

const ProcessId p0{0};
const ProcessId p1{1};
const ProcessId p2{2};

core::Options on_request() {
  core::Options o;
  o.initiation = core::InitiationMode::kOnRequest;
  return o;
}

std::string diagnose(const ExploreResult& res) {
  std::ostringstream os;
  os << "states=" << res.states_visited
     << " transitions=" << res.transitions_executed
     << " sleep_pruned=" << res.sleep_pruned << " complete=" << res.complete
     << '\n';
  if (res.violation) {
    os << res.violation->to_string() << "\nschedule:\n";
    for (const std::string& step : res.trace) os << "  " << step << '\n';
  }
  return os.str();
}

// ---- canonical scenarios --------------------------------------------------

/// Three processes requesting in a ring: every schedule must end with the
/// dark cycle declared by someone (QRP1) and never declared early (QRP2).
BasicScenario ring_of_three() {
  return BasicScenario{
      .name = "ring-of-three",
      .n = 3,
      .options = on_request(),
      .scripts = {{ScriptOp::request(p1)},
                  {ScriptOp::request(p2)},
                  {ScriptOp::request(p0)}}};
}

/// A chain that blocks, unwinds, and re-requests: exercises the full
/// grey -> black -> white -> removed edge lifecycle plus probe traffic that
/// must die out without a declaration.
BasicScenario chain_with_churn() {
  return BasicScenario{
      .name = "chain-with-churn",
      .n = 3,
      .options = on_request(),
      .scripts = {{ScriptOp::request(p1), ScriptOp::request(p1)},
                  {ScriptOp::request(p2), ScriptOp::reply(p0),
                   ScriptOp::reply(p0)},
                  {ScriptOp::reply(p1)}}};
}

/// Two controllers, one resource each, transactions locking cross-wise.
/// Schedules split into two families: the cycle forms (both blocked; some
/// controller must declare) or one transaction wins both locks (no cycle;
/// nobody may declare).  Both oracles are checked at every leaf.
DdbScenario ddb_cross_lock() {
  const TransactionId t0{0};
  const TransactionId t1{1};
  const ResourceId r0{0};
  const ResourceId r1{1};
  return DdbScenario{
      .name = "ddb-cross-lock",
      .n_sites = 2,
      .resource_owner = {SiteId{0}, SiteId{1}},
      .scripts = {{DdbOp::lock(t0, r0), DdbOp::lock(t0, r1)},
                  {DdbOp::lock(t1, r1), DdbOp::lock(t1, r0)}}};
}

TEST(Exhaustive, RingOfThreeEverySchedule) {
  BasicSystem sys(ring_of_three());
  const ExploreResult res = explore(sys);
  EXPECT_TRUE(res.ok()) << diagnose(res);
  EXPECT_TRUE(res.complete) << diagnose(res);
  // The ring is small but not trivial: the product of request, probe and
  // WFGD deliveries is well beyond a handful of schedules.
  EXPECT_GT(res.states_visited, 50u);
}

TEST(Exhaustive, RingOfThreeUnprunedAgrees) {
  // Soundness cross-check for the sleep-set reduction: the full interleaving
  // product reaches the same verdict, and pruning never did less work.
  BasicSystem sys(ring_of_three());
  const ExploreResult pruned = explore(sys);
  BasicSystem sys_full(ring_of_three());
  const ExploreResult full =
      explore(sys_full, ExploreConfig{.sleep_sets = false});
  EXPECT_TRUE(pruned.ok()) << diagnose(pruned);
  EXPECT_TRUE(full.ok()) << diagnose(full);
  EXPECT_TRUE(full.complete);
  EXPECT_GE(full.transitions_executed, pruned.transitions_executed);
}

TEST(Exhaustive, ChainWithChurnEverySchedule) {
  BasicSystem sys(chain_with_churn());
  const ExploreResult res = explore(sys);
  EXPECT_TRUE(res.ok()) << diagnose(res);
  EXPECT_TRUE(res.complete) << diagnose(res);
  // Quiescent leaves end with an empty graph; no declaration anywhere.
  EXPECT_TRUE(sys.auditor().declared().empty());
}

TEST(Exhaustive, DdbCrossLockEverySchedule) {
  DdbSystem sys(ddb_cross_lock());
  const ExploreResult res = explore(sys);
  EXPECT_TRUE(res.ok()) << diagnose(res);
  EXPECT_TRUE(res.complete) << diagnose(res);
  EXPECT_GT(res.states_visited, 20u);
}

TEST(Exhaustive, DdbRejectsTimerBasedInitiation) {
  DdbScenario scenario = ddb_cross_lock();
  scenario.options.initiation = ddb::DdbInitiation::kDelayed;
  EXPECT_THROW(DdbSystem{scenario}, std::invalid_argument);
}

// ---- seeded bugs: one planted defect per axiom ----------------------------

Bytes request_frame() { return core::encode(core::Message{core::RequestMsg{}}); }
Bytes reply_frame() { return core::encode(core::Message{core::ReplyMsg{}}); }
Bytes probe_frame(ProcessId initiator, std::uint64_t sequence) {
  return core::encode(
      core::Message{core::ProbeMsg{ProbeTag{initiator, sequence}}});
}

void expect_convicts(BasicScenario scenario, Axiom axiom) {
  BasicSystem sys(std::move(scenario));
  const ExploreResult res = explore(sys);
  ASSERT_TRUE(res.violation.has_value())
      << "seeded bug went undetected; " << diagnose(res);
  EXPECT_EQ(res.violation->axiom, axiom) << diagnose(res);
  EXPECT_FALSE(res.trace.empty()) << "violation must come with a schedule";
}

TEST(SeededBug, DuplicateRequestConvictsG1) {
  // A process that "forgets" it already has an outstanding request and sends
  // a second one on the same edge.
  expect_convicts(
      BasicScenario{.name = "dup-request",
                    .n = 2,
                    .options = on_request(),
                    .scripts = {{ScriptOp::request(p1),
                                 ScriptOp::inject(p1, request_frame())}}},
      Axiom::kG1);
}

TEST(SeededBug, ReplyWhileBlockedConvictsG3) {
  // p1 replies to p0 after blocking on p2: only active processes may reply.
  expect_convicts(
      BasicScenario{.name = "reply-while-blocked",
                    .n = 3,
                    .options = on_request(),
                    .scripts = {{ScriptOp::request(p1)},
                                {ScriptOp::request(p2),
                                 ScriptOp::inject(p0, reply_frame())}}},
      Axiom::kG3);
}

TEST(SeededBug, ForwardedStaleProbeConvictsP1) {
  // A detector that forwards a probe along an edge it does not have.
  expect_convicts(
      BasicScenario{.name = "probe-without-edge",
                    .n = 2,
                    .options = on_request(),
                    .scripts = {{ScriptOp::inject(p1, probe_frame(p0, 1))}}},
      Axiom::kP1);
}

TEST(SeededBug, ReorderedChannelConvictsP2) {
  // The transport swaps the request and the initiation probe that follow
  // each other on channel (p0, p1): FIFO broken.
  BasicScenario scenario{.name = "reordered-channel",
                         .n = 2,
                         .options = on_request(),
                         .scripts = {{ScriptOp::request(p1)}}};
  scenario.faults.reorder_channel = {{p0, p1}};
  expect_convicts(std::move(scenario), Axiom::kP2);
}

TEST(SeededBug, DroppedReplyConvictsP4) {
  // p1's reply is lost in transit; at quiescence the channel history shows a
  // sent-but-never-delivered frame.
  BasicScenario scenario{.name = "dropped-reply",
                         .n = 2,
                         .options = on_request(),
                         .scripts = {{ScriptOp::request(p1)},
                                     {ScriptOp::reply(p0)}}};
  scenario.faults.drop_replies_from = p1;
  expect_convicts(std::move(scenario), Axiom::kP4);
}

TEST(SeededBug, ForgedOwnProbeConvictsQRP2) {
  // p1 forges a probe carrying p0's own tag (sequence numbers start at 1).
  // p0 holds p1's request, so the probe is meaningful, and step A1 makes p0
  // declare -- while it waits on nobody.  A false deadlock in every
  // schedule; the checker must catch it at declaration instant.
  expect_convicts(
      BasicScenario{.name = "forged-own-probe",
                    .n = 2,
                    .options = on_request(),
                    .scripts = {{},
                                {ScriptOp::request(p0),
                                 ScriptOp::inject(p0, probe_frame(p0, 1))}}},
      Axiom::kQRP2);
}

TEST(SeededBug, SwallowedProbesConvictQRP1) {
  // Every probe p2 sends vanishes before it reaches the wire.  All probe
  // routes around the ring traverse p2, so no computation can complete and
  // the dark cycle goes undeclared: a missed deadlock at quiescence.
  BasicScenario scenario = ring_of_three();
  scenario.name = "swallowed-probes";
  scenario.faults.swallow_probes_from = p2;
  expect_convicts(std::move(scenario), Axiom::kQRP1);
}

}  // namespace
}  // namespace cmh::check
