#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace cmh::sim {
namespace {

Bytes payload(std::uint8_t b) { return Bytes{b}; }

TEST(Simulator, StartsAtTimeZeroAndIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_TRUE(sim.idle());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, TimerFiresAtScheduledTime) {
  Simulator sim;
  SimTime fired{-1};
  sim.schedule(SimTime::ms(5), [&] { fired = sim.now(); });
  sim.run();
  EXPECT_EQ(fired, SimTime::ms(5));
}

TEST(Simulator, TimersFireInOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(SimTime::ms(3), [&] { order.push_back(3); });
  sim.schedule(SimTime::ms(1), [&] { order.push_back(1); });
  sim.schedule(SimTime::ms(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, EqualTimestampsFifoBySchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(SimTime::ms(1), [&] { order.push_back(1); });
  sim.schedule(SimTime::ms(1), [&] { order.push_back(2); });
  sim.schedule(SimTime::ms(1), [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NegativeDelayRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(SimTime::us(-1), [] {}), std::invalid_argument);
}

TEST(Simulator, MessageDelivered) {
  Simulator sim;
  std::vector<std::uint8_t> got;
  const NodeId a = sim.add_node({});
  const NodeId b =
      sim.add_node([&](NodeId from, const Bytes& p) {
        EXPECT_EQ(from, 0u);
        got.push_back(p.at(0));
      });
  (void)b;
  sim.send(a, 1, payload(42));
  sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 42);
}

TEST(Simulator, SendToUnknownNodeThrows) {
  Simulator sim;
  const NodeId a = sim.add_node({});
  EXPECT_THROW(sim.send(a, 99, payload(1)), std::out_of_range);
}

TEST(Simulator, ChannelFifoPreservedDespiteRandomDelays) {
  // With a wide random-delay window, later sends would often draw shorter
  // delays; the channel clamp must still deliver in order.
  Simulator sim(42, DelayModel::uniform(SimTime::us(10), SimTime::ms(10)));
  std::vector<std::uint8_t> got;
  const NodeId a = sim.add_node({});
  sim.add_node([&](NodeId, const Bytes& p) { got.push_back(p.at(0)); });
  for (std::uint8_t i = 0; i < 50; ++i) sim.send(a, 1, payload(i));
  sim.run();
  ASSERT_EQ(got.size(), 50u);
  for (std::uint8_t i = 0; i < 50; ++i) EXPECT_EQ(got[i], i);
}

TEST(Simulator, IndependentChannelsMayInterleave) {
  // FIFO is per channel only; this just checks both sources' messages land.
  Simulator sim(7);
  int from_a = 0;
  int from_b = 0;
  const NodeId a = sim.add_node({});
  const NodeId b = sim.add_node({});
  sim.add_node([&](NodeId from, const Bytes&) {
    (from == a ? from_a : from_b)++;
  });
  for (int i = 0; i < 10; ++i) {
    sim.send(a, 2, payload(0));
    sim.send(b, 2, payload(1));
  }
  sim.run();
  EXPECT_EQ(from_a, 10);
  EXPECT_EQ(from_b, 10);
}

TEST(Simulator, DeterministicAcrossRunsWithSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim(seed, DelayModel::uniform(SimTime::us(1), SimTime::ms(1)));
    std::vector<std::uint8_t> got;
    const NodeId a = sim.add_node({});
    const NodeId b = sim.add_node({});
    sim.add_node([&](NodeId, const Bytes& p) { got.push_back(p.at(0)); });
    for (std::uint8_t i = 0; i < 20; ++i) {
      sim.send(a, 2, payload(i));
      sim.send(b, 2, payload(static_cast<std::uint8_t>(100 + i)));
    }
    sim.run();
    return got;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

TEST(Simulator, FixedDelayDeliversExactly) {
  Simulator sim(1, DelayModel::fixed(SimTime::ms(2)));
  SimTime delivered{-1};
  const NodeId a = sim.add_node({});
  sim.add_node([&](NodeId, const Bytes&) { delivered = sim.now(); });
  sim.send(a, 1, payload(0));
  sim.run();
  EXPECT_EQ(delivered, SimTime::ms(2));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime::ms(1), [&] { ++fired; });
  sim.schedule(SimTime::ms(10), [&] { ++fired; });
  sim.run_until(SimTime::ms(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::ms(5));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunWhilePendingStopsOnPredicate) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule(SimTime::ms(i), [&] { ++count; });
  }
  const bool hit = sim.run_while_pending([&] { return count >= 3; });
  EXPECT_TRUE(hit);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunWhilePendingFalseWhenDrained) {
  Simulator sim;
  sim.schedule(SimTime::ms(1), [] {});
  const bool hit = sim.run_while_pending([] { return false; });
  EXPECT_FALSE(hit);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, StatsCountEverything) {
  Simulator sim;
  const NodeId a = sim.add_node({});
  sim.add_node([](NodeId, const Bytes&) {});
  sim.send(a, 1, payload(1));
  sim.send(a, 1, Bytes{1, 2, 3});
  sim.schedule(SimTime::ms(1), [] {});
  sim.run();
  EXPECT_EQ(sim.stats().messages_sent, 2u);
  EXPECT_EQ(sim.stats().messages_delivered, 2u);
  EXPECT_EQ(sim.stats().bytes_sent, 4u);
  EXPECT_EQ(sim.stats().timers_fired, 1u);
  EXPECT_EQ(sim.stats().events_processed, 3u);
}

TEST(Simulator, ResetStatsClears) {
  Simulator sim;
  sim.schedule(SimTime::ms(1), [] {});
  sim.run();
  sim.reset_stats();
  EXPECT_EQ(sim.stats().events_processed, 0u);
}

TEST(Simulator, HandlerMayScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule(SimTime::ms(1), recurse);
  };
  sim.schedule(SimTime::ms(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), SimTime::ms(5));
}

TEST(Simulator, SetHandlerReplacesReceiver) {
  Simulator sim;
  const NodeId a = sim.add_node({});
  const NodeId b = sim.add_node({});
  int count = 0;
  sim.set_handler(b, [&](NodeId, const Bytes&) { ++count; });
  sim.send(a, b, payload(0));
  sim.run();
  EXPECT_EQ(count, 1);
}

TEST(SimTime, Arithmetic) {
  EXPECT_EQ(SimTime::ms(1) + SimTime::us(500), SimTime::us(1500));
  EXPECT_EQ(SimTime::sec(1) - SimTime::ms(1), SimTime::us(999000));
  EXPECT_DOUBLE_EQ(SimTime::ms(1500).seconds(), 1.5);
  EXPECT_LT(SimTime::us(1), SimTime::us(2));
}

}  // namespace
}  // namespace cmh::sim
