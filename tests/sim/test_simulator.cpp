#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace cmh::sim {
namespace {

Bytes payload(std::uint8_t b) { return Bytes{b}; }

TEST(Simulator, StartsAtTimeZeroAndIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_TRUE(sim.idle());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, TimerFiresAtScheduledTime) {
  Simulator sim;
  SimTime fired{-1};
  sim.schedule(SimTime::ms(5), [&] { fired = sim.now(); });
  sim.run();
  EXPECT_EQ(fired, SimTime::ms(5));
}

TEST(Simulator, TimersFireInOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(SimTime::ms(3), [&] { order.push_back(3); });
  sim.schedule(SimTime::ms(1), [&] { order.push_back(1); });
  sim.schedule(SimTime::ms(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, EqualTimestampsFifoBySchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(SimTime::ms(1), [&] { order.push_back(1); });
  sim.schedule(SimTime::ms(1), [&] { order.push_back(2); });
  sim.schedule(SimTime::ms(1), [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NegativeDelayRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(SimTime::us(-1), [] {}), std::invalid_argument);
}

TEST(Simulator, MessageDelivered) {
  Simulator sim;
  std::vector<std::uint8_t> got;
  const NodeId a = sim.add_node({});
  const NodeId b =
      sim.add_node([&](NodeId from, const Bytes& p) {
        EXPECT_EQ(from, 0u);
        got.push_back(p.at(0));
      });
  (void)b;
  sim.send(a, 1, payload(42));
  sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 42);
}

TEST(Simulator, SendToUnknownNodeThrows) {
  Simulator sim;
  const NodeId a = sim.add_node({});
  EXPECT_THROW(sim.send(a, 99, payload(1)), std::out_of_range);
}

TEST(Simulator, ChannelFifoPreservedDespiteRandomDelays) {
  // With a wide random-delay window, later sends would often draw shorter
  // delays; the channel clamp must still deliver in order.
  Simulator sim(42, DelayModel::uniform(SimTime::us(10), SimTime::ms(10)));
  std::vector<std::uint8_t> got;
  const NodeId a = sim.add_node({});
  sim.add_node([&](NodeId, const Bytes& p) { got.push_back(p.at(0)); });
  for (std::uint8_t i = 0; i < 50; ++i) sim.send(a, 1, payload(i));
  sim.run();
  ASSERT_EQ(got.size(), 50u);
  for (std::uint8_t i = 0; i < 50; ++i) EXPECT_EQ(got[i], i);
}

TEST(Simulator, IndependentChannelsMayInterleave) {
  // FIFO is per channel only; this just checks both sources' messages land.
  Simulator sim(7);
  int from_a = 0;
  int from_b = 0;
  const NodeId a = sim.add_node({});
  const NodeId b = sim.add_node({});
  sim.add_node([&](NodeId from, const Bytes&) {
    (from == a ? from_a : from_b)++;
  });
  for (int i = 0; i < 10; ++i) {
    sim.send(a, 2, payload(0));
    sim.send(b, 2, payload(1));
  }
  sim.run();
  EXPECT_EQ(from_a, 10);
  EXPECT_EQ(from_b, 10);
}

TEST(Simulator, DeterministicAcrossRunsWithSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim(seed, DelayModel::uniform(SimTime::us(1), SimTime::ms(1)));
    std::vector<std::uint8_t> got;
    const NodeId a = sim.add_node({});
    const NodeId b = sim.add_node({});
    sim.add_node([&](NodeId, const Bytes& p) { got.push_back(p.at(0)); });
    for (std::uint8_t i = 0; i < 20; ++i) {
      sim.send(a, 2, payload(i));
      sim.send(b, 2, payload(static_cast<std::uint8_t>(100 + i)));
    }
    sim.run();
    return got;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

TEST(Simulator, FixedDelayDeliversExactly) {
  Simulator sim(1, DelayModel::fixed(SimTime::ms(2)));
  SimTime delivered{-1};
  const NodeId a = sim.add_node({});
  sim.add_node([&](NodeId, const Bytes&) { delivered = sim.now(); });
  sim.send(a, 1, payload(0));
  sim.run();
  EXPECT_EQ(delivered, SimTime::ms(2));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime::ms(1), [&] { ++fired; });
  sim.schedule(SimTime::ms(10), [&] { ++fired; });
  sim.run_until(SimTime::ms(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::ms(5));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunWhilePendingStopsOnPredicate) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule(SimTime::ms(i), [&] { ++count; });
  }
  const bool hit = sim.run_while_pending([&] { return count >= 3; });
  EXPECT_TRUE(hit);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunWhilePendingFalseWhenDrained) {
  Simulator sim;
  sim.schedule(SimTime::ms(1), [] {});
  const bool hit = sim.run_while_pending([] { return false; });
  EXPECT_FALSE(hit);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, StatsCountEverything) {
  Simulator sim;
  const NodeId a = sim.add_node({});
  sim.add_node([](NodeId, const Bytes&) {});
  sim.send(a, 1, payload(1));
  sim.send(a, 1, Bytes{1, 2, 3});
  sim.schedule(SimTime::ms(1), [] {});
  sim.run();
  EXPECT_EQ(sim.stats().messages_sent, 2u);
  EXPECT_EQ(sim.stats().messages_delivered, 2u);
  EXPECT_EQ(sim.stats().bytes_sent, 4u);
  EXPECT_EQ(sim.stats().timers_fired, 1u);
  EXPECT_EQ(sim.stats().events_processed, 3u);
}

TEST(Simulator, ResetStatsClears) {
  Simulator sim;
  sim.schedule(SimTime::ms(1), [] {});
  sim.run();
  sim.reset_stats();
  EXPECT_EQ(sim.stats().events_processed, 0u);
}

TEST(Simulator, HandlerMayScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule(SimTime::ms(1), recurse);
  };
  sim.schedule(SimTime::ms(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), SimTime::ms(5));
}

TEST(Simulator, SetHandlerReplacesReceiver) {
  Simulator sim;
  const NodeId a = sim.add_node({});
  const NodeId b = sim.add_node({});
  int count = 0;
  sim.set_handler(b, [&](NodeId, const Bytes&) { ++count; });
  sim.send(a, b, payload(0));
  sim.run();
  EXPECT_EQ(count, 1);
}

TEST(Simulator, ChannelSpillFifoBeyondFlatLimit) {
  // More than 1024 nodes: channel state lives in the hash-map spill path
  // from the first send.  FIFO and determinism must hold there too.
  constexpr std::uint32_t kNodes = 1030;
  auto run_once = [] {
    Simulator sim(99, DelayModel::uniform(SimTime::us(10), SimTime::ms(5)));
    std::vector<std::uint8_t> got;
    for (std::uint32_t i = 0; i < kNodes; ++i) sim.add_node({});
    sim.set_handler(1, [&](NodeId from, const Bytes& p) {
      EXPECT_EQ(from, 0u);
      got.push_back(p.at(0));
    });
    for (std::uint8_t i = 0; i < 40; ++i) sim.send(0, 1, payload(i));
    // A second channel into the same receiver would break the from==0
    // expectation; use a distant one to stretch the spill keyspace.
    sim.set_handler(kNodes - 1, [](NodeId, const Bytes&) {});
    for (std::uint8_t i = 0; i < 10; ++i) {
      sim.send(kNodes - 2, kNodes - 1, payload(i));
    }
    sim.run();
    EXPECT_EQ(sim.stats().messages_delivered, 50u);
    return got;
  };
  const auto got = run_once();
  ASSERT_EQ(got.size(), 40u);
  for (std::uint8_t i = 0; i < 40; ++i) EXPECT_EQ(got[i], i);
  EXPECT_EQ(got, run_once());
}

TEST(Simulator, FlatToSpillMigrationPreservesChannelFifo) {
  // Crossing the 1024-node flat-matrix limit mid-simulation must carry the
  // live channel fronts into the spill maps: messages sent *after* the
  // crossing draw fresh random delays and would otherwise be able to
  // overtake in-flight messages on the same channel.
  Simulator sim(1234, DelayModel::uniform(SimTime::us(10), SimTime::ms(10)));
  std::vector<std::uint8_t> got;
  std::vector<std::int64_t> times;
  for (std::uint32_t i = 0; i < 1024; ++i) sim.add_node({});
  sim.set_handler(1, [&](NodeId, const Bytes& p) {
    got.push_back(p.at(0));
    times.push_back(sim.now().micros);
  });
  for (std::uint8_t i = 0; i < 30; ++i) sim.send(0, 1, payload(i));
  // Straddle the boundary inside a batched drain: deliver a few, then grow
  // past the limit and keep sending on the same channel.
  const std::size_t early = sim.run_batch(10);
  EXPECT_EQ(early, 10u);
  sim.add_node({});
  sim.add_node({});
  ASSERT_GT(sim.node_count(), 1024u);
  for (std::uint8_t i = 30; i < 60; ++i) sim.send(0, 1, payload(i));
  while (sim.run_batch(16) > 0) {
  }
  ASSERT_EQ(got.size(), 60u);
  for (std::uint8_t i = 0; i < 60; ++i) EXPECT_EQ(got[i], i);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_LT(times[i - 1], times[i]);
  }
}

TEST(SimTime, Arithmetic) {
  EXPECT_EQ(SimTime::ms(1) + SimTime::us(500), SimTime::us(1500));
  EXPECT_EQ(SimTime::sec(1) - SimTime::ms(1), SimTime::us(999000));
  EXPECT_DOUBLE_EQ(SimTime::ms(1500).seconds(), 1.5);
  EXPECT_LT(SimTime::us(1), SimTime::us(2));
}

}  // namespace
}  // namespace cmh::sim
