// Thread-count-independent determinism of the sharded engine.
//
// The tentpole invariant (DESIGN.md section 4c): the event schedule is a pure
// function of (seed, workload) -- the shard count K only chooses how the work
// is executed, never what happens.  These tests drive one TTL-cascade
// scenario (the golden-trace shape, sized so K=8 still has two nodes per
// shard) through K in {1, 2, 4, 8} and require:
//   * bit-identical global delivery order, reconstructed by merging per-node
//     observation logs on the canonical key (time, src, dst) -- unique
//     because per-channel FIFO clamping keeps channel times strictly
//     increasing;
//   * bit-identical SimStats;
//   * a pinned hash, so a future change that shifts the schedule (even
//     consistently across K) is caught the same way the golden trace catches
//     it at K=1.
// Handlers only append to their own node's log, so the parallel runs are
// race-free by construction -- the same ownership discipline real workloads
// must follow.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/simulator.h"

namespace cmh::sim {
namespace {

constexpr std::uint32_t kN = 16;
constexpr std::uint64_t kSeed = 0xC0FFEEULL;

// One observed delivery, logged by the receiving node's handler.
struct Obs {
  std::int64_t t;
  std::uint32_t from;
  std::uint32_t to;
  std::uint64_t payload_sum;
};

struct TraceResult {
  std::uint64_t hash{0};
  SimStats stats;
};

/// Runs the TTL-cascade scenario on K shards and folds the canonical global
/// delivery order plus the aggregate stats into one hash.
TraceResult run_traced(std::uint32_t shards) {
  Simulator sim(kSeed, DelayModel::uniform(SimTime::us(3), SimTime::us(400)),
                shards);
  std::vector<std::vector<Obs>> logs(kN);
  for (std::uint32_t i = 0; i < kN; ++i) sim.add_node({});
  for (std::uint32_t i = 0; i < kN; ++i) {
    sim.set_handler(i, [&sim, &logs, i](NodeId from, const Bytes& p) {
      std::uint64_t sum = p.size();
      for (const std::uint8_t b : p) sum = sum * 131 + b;
      logs[i].push_back(Obs{sim.now().micros, from, i, sum});
      const std::uint8_t ttl = p.empty() ? 0 : p[0];
      if (ttl == 0) return;
      Bytes fwd(p);
      fwd[0] = static_cast<std::uint8_t>(ttl - 1);
      fwd.push_back(static_cast<std::uint8_t>(i));
      sim.send(i, (i + 1 + ttl) % kN, fwd);
      if (ttl % 3 == 0) {
        sim.schedule(SimTime::us(ttl * 7), [&sim, i, ttl] {
          const Bytes extra{static_cast<std::uint8_t>(ttl / 2)};
          sim.send(i, (i + 2) % kN, extra);
        });
      }
    });
  }
  for (std::uint32_t i = 0; i < kN; ++i) {
    sim.send(i, (i + 1) % kN, Bytes{21, static_cast<std::uint8_t>(i)});
  }
  sim.run();

  std::vector<Obs> merged;
  for (const auto& log : logs) merged.insert(merged.end(), log.begin(), log.end());
  std::sort(merged.begin(), merged.end(), [](const Obs& x, const Obs& y) {
    if (x.t != y.t) return x.t < y.t;
    if (x.from != y.from) return x.from < y.from;
    return x.to < y.to;
  });

  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const Obs& o : merged) {
    mix(static_cast<std::uint64_t>(o.t));
    mix(o.from);
    mix(o.to);
    mix(o.payload_sum);
  }
  const SimStats s = sim.stats();
  mix(s.messages_sent);
  mix(s.messages_delivered);
  mix(s.bytes_sent);
  mix(s.timers_fired);
  mix(s.events_processed);
  return {h, s};
}

TEST(ShardedDeterminism, TraceIsBitIdenticalAcrossShardCounts) {
  const TraceResult base = run_traced(1);
  for (const std::uint32_t k : {2u, 4u, 8u}) {
    const TraceResult r = run_traced(k);
    EXPECT_EQ(r.hash, base.hash) << "shards=" << k;
    EXPECT_EQ(r.stats.messages_sent, base.stats.messages_sent);
    EXPECT_EQ(r.stats.messages_delivered, base.stats.messages_delivered);
    EXPECT_EQ(r.stats.bytes_sent, base.stats.bytes_sent);
    EXPECT_EQ(r.stats.timers_fired, base.stats.timers_fired);
    EXPECT_EQ(r.stats.events_processed, base.stats.events_processed);
  }
}

TEST(ShardedDeterminism, TraceHashIsPinned) {
  // Re-record (like the golden trace) only for a deliberate schedule change.
  EXPECT_EQ(run_traced(1).hash, 0x237ac7576960d91bULL);
  EXPECT_EQ(run_traced(4).hash, 0x237ac7576960d91bULL);
}

TEST(ShardedDeterminism, StepMergeMatchesParallelRun) {
  // step() across shard queues is a sequential merge on the canonical key;
  // it must realize the exact same schedule as the parallel windowed run().
  Simulator sim(kSeed, DelayModel::uniform(SimTime::us(3), SimTime::us(400)),
                4);
  std::vector<std::vector<Obs>> logs(kN);
  for (std::uint32_t i = 0; i < kN; ++i) sim.add_node({});
  for (std::uint32_t i = 0; i < kN; ++i) {
    sim.set_handler(i, [&sim, &logs, i](NodeId from, const Bytes& p) {
      std::uint64_t sum = p.size();
      for (const std::uint8_t b : p) sum = sum * 131 + b;
      logs[i].push_back(Obs{sim.now().micros, from, i, sum});
      const std::uint8_t ttl = p.empty() ? 0 : p[0];
      if (ttl == 0) return;
      Bytes fwd(p);
      fwd[0] = static_cast<std::uint8_t>(ttl - 1);
      sim.send(i, (i + 1 + ttl) % kN, fwd);
    });
  }
  for (std::uint32_t i = 0; i < kN; ++i) {
    sim.send(i, (i + 1) % kN, Bytes{21, static_cast<std::uint8_t>(i)});
  }
  std::uint64_t steps = 0;
  while (sim.step()) ++steps;
  EXPECT_EQ(steps, sim.stats().events_processed);

  // Sequential stepping also yields a single globally time-ordered stream:
  // the concatenated logs, merged, must already be sorted.
  std::vector<Obs> merged;
  for (const auto& log : logs) {
    for (std::size_t j = 1; j < log.size(); ++j) {
      EXPECT_LE(log[j - 1].t, log[j].t) << "per-node time order violated";
    }
    merged.insert(merged.end(), log.begin(), log.end());
  }
  EXPECT_EQ(merged.size(), sim.stats().messages_delivered);
}

TEST(ShardedDeterminism, CrossShardChannelsStayFifo) {
  // Nodes 0 and 15 sit on different shards at K=4; a burst of back-to-back
  // sends across that boundary must arrive in order with strictly
  // increasing delivery times (window exchange must not reorder).
  Simulator sim(7, DelayModel::uniform(SimTime::us(2), SimTime::us(90)), 4);
  std::vector<std::uint8_t> seen;
  std::vector<std::int64_t> times;
  for (std::uint32_t i = 0; i < kN; ++i) sim.add_node({});
  sim.set_handler(kN - 1, [&](NodeId from, const Bytes& p) {
    ASSERT_EQ(from, 0u);
    ASSERT_EQ(p.size(), 1u);
    seen.push_back(p[0]);
    times.push_back(sim.now().micros);
  });
  ASSERT_NE(sim.shard_of(0), sim.shard_of(kN - 1));
  for (std::uint8_t i = 0; i < 64; ++i) sim.send(0, kN - 1, Bytes{i});
  sim.run();
  ASSERT_EQ(seen.size(), 64u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<std::uint8_t>(i));
    if (i > 0) EXPECT_LT(times[i - 1], times[i]);
  }
}

TEST(ShardedDeterminism, RunUntilWindowsStopAtBoundary) {
  Simulator sim(11, DelayModel::uniform(SimTime::us(5), SimTime::us(50)), 4);
  // Per-node counters: handlers on different shards run concurrently, so a
  // single shared counter would be the exact race the ownership rule bans.
  std::vector<std::uint64_t> delivered(kN, 0);
  const auto total = [&delivered] {
    std::uint64_t sum = 0;
    for (const std::uint64_t d : delivered) sum += d;
    return sum;
  };
  for (std::uint32_t i = 0; i < kN; ++i) sim.add_node({});
  for (std::uint32_t i = 0; i < kN; ++i) {
    sim.set_handler(i, [&sim, &delivered, i](NodeId, const Bytes& p) {
      ++delivered[i];
      if (p[0] > 0) {
        sim.send(i, (i + 3) % kN, Bytes{static_cast<std::uint8_t>(p[0] - 1)});
      }
    });
  }
  for (std::uint32_t i = 0; i < kN; ++i) sim.send(i, (i + 3) % kN, Bytes{40});
  sim.run_until(SimTime::us(300));
  EXPECT_EQ(sim.now(), SimTime::us(300));
  EXPECT_FALSE(sim.idle());
  const std::uint64_t at_boundary = total();
  EXPECT_GT(at_boundary, 0u);
  sim.run();
  EXPECT_TRUE(sim.idle());
  EXPECT_GT(total(), at_boundary);
  EXPECT_EQ(total(), sim.stats().messages_delivered);
}

TEST(ShardedDeterminism, ShardedModeRejectsSubMicrosecondLookahead) {
  EXPECT_THROW(Simulator(1, DelayModel::fixed(SimTime::zero()), 2),
               std::invalid_argument);
  EXPECT_NO_THROW(Simulator(1, DelayModel::fixed(SimTime::zero()), 1));
  EXPECT_NO_THROW(Simulator(1, DelayModel::fixed(SimTime::us(1)), 2));
}

TEST(ShardedDeterminism, AddNodeAfterFirstEventThrowsWhenSharded) {
  Simulator sim(1, DelayModel::fixed(SimTime::us(10)), 2);
  for (int i = 0; i < 4; ++i) sim.add_node([](NodeId, const Bytes&) {});
  sim.send(0, 1, Bytes{1});
  EXPECT_THROW(sim.add_node({}), std::logic_error);

  // Single-shard keeps the legacy anytime-add behavior.
  Simulator lazy(1, DelayModel::fixed(SimTime::us(10)), 1);
  lazy.add_node([](NodeId, const Bytes&) {});
  lazy.add_node([](NodeId, const Bytes&) {});
  lazy.send(0, 1, Bytes{1});
  EXPECT_NO_THROW(lazy.add_node({}));
}

TEST(ShardedDeterminism, ForeignSourceSendThrowsInParallelRun) {
  // A handler may only send on behalf of its own shard's nodes while the
  // parallel engine is running -- channel state lives with the source shard.
  Simulator sim(1, DelayModel::fixed(SimTime::us(10)), 2);
  for (std::uint32_t i = 0; i < 4; ++i) sim.add_node({});
  sim.set_handler(0, [&sim](NodeId, const Bytes& p) {
    sim.send(3, 1, p);  // node 3 lives on the other shard
  });
  sim.send(1, 0, Bytes{1});
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(ShardedDeterminism, SendValidatesSourceAndDestination) {
  Simulator sim(1, DelayModel::fixed(SimTime::us(10)));
  sim.add_node({});
  sim.add_node({});
  EXPECT_THROW(sim.send(0, 99, Bytes{1}), std::out_of_range);
  EXPECT_THROW(sim.send(99, 0, Bytes{1}), std::out_of_range);
  EXPECT_THROW(sim.send(2, 0, Bytes{1}), std::out_of_range);
}

}  // namespace
}  // namespace cmh::sim
