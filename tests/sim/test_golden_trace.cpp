// Golden-trace determinism: a fixed seed must produce a bit-identical event
// schedule forever.  The scenario below (12 nodes, TTL-decrementing forwards
// plus timer-spawned extra traffic) drives >1300 events through every
// simulator mechanism -- channel-FIFO clamping, equal-timestamp tie-breaks,
// timer interleaving, payload recycling -- and folds the full delivery order
// into one FNV-1a hash.
//
// Re-pinned for the sharded engine (DESIGN.md section 4c): delay draws moved
// from a global RNG stream to counter-based per-channel hashes, and the
// equal-timestamp tie-break moved from global scheduling order to the
// canonical key (time, src, dst, channel-seq) -- both deliberate schedule
// changes, required so the trace is a pure function of (seed, workload)
// independent of the shard count.  The event/delivery/timer *counts* are
// unchanged from the sequential engine (the TTL cascade is delay-agnostic),
// which is itself a useful cross-check.  tests/sim/test_sharded.cpp pins the
// same scenario across K in {1,2,4,8}.
#include "sim/simulator.h"

#include <gtest/gtest.h>

namespace cmh::sim {
namespace {

struct GoldenResult {
  std::uint64_t events{0};
  std::uint64_t delivered{0};
  std::uint64_t timers{0};
  std::uint64_t hash{0};
};

GoldenResult run_golden_scenario() {
  Simulator sim(0xC0FFEEULL,
                DelayModel::uniform(SimTime::us(3), SimTime::us(400)));
  constexpr std::uint32_t kN = 12;
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;  // FNV-1a prime
  };
  for (std::uint32_t i = 0; i < kN; ++i) sim.add_node({});
  for (std::uint32_t i = 0; i < kN; ++i) {
    sim.set_handler(i, [&sim, &mix, i](NodeId from, const Bytes& p) {
      mix(from);
      mix(i);
      mix(p.size());
      for (const std::uint8_t b : p) mix(b);
      mix(static_cast<std::uint64_t>(sim.now().micros));
      const std::uint8_t ttl = p.empty() ? 0 : p[0];
      if (ttl == 0) return;
      Bytes fwd(p);
      fwd[0] = static_cast<std::uint8_t>(ttl - 1);
      fwd.push_back(static_cast<std::uint8_t>(i));
      sim.send(i, (i + 1 + ttl) % kN, fwd);
      if (ttl % 3 == 0) {
        sim.schedule(SimTime::us(ttl * 7), [&sim, i, ttl] {
          const Bytes extra{static_cast<std::uint8_t>(ttl / 2)};
          sim.send(i, (i + 2) % kN, extra);
        });
      }
    });
  }
  for (std::uint32_t i = 0; i < kN; ++i) {
    sim.send(i, (i + 1) % kN, Bytes{19, static_cast<std::uint8_t>(i)});
  }
  sim.run();
  const SimStats& s = sim.stats();
  mix(s.messages_sent);
  mix(s.messages_delivered);
  mix(s.bytes_sent);
  mix(s.timers_fired);
  mix(s.events_processed);
  return {s.events_processed, s.messages_delivered, s.timers_fired, h};
}

TEST(GoldenTrace, SeededScheduleIsBitIdentical) {
  const GoldenResult r = run_golden_scenario();
  EXPECT_EQ(r.events, 1320u);
  EXPECT_EQ(r.delivered, 1092u);
  EXPECT_EQ(r.timers, 228u);
  EXPECT_EQ(r.hash, 0x4d94b3dc4e8f13c5ULL);
}

TEST(GoldenTrace, RepeatedRunsAgree) {
  const GoldenResult a = run_golden_scenario();
  const GoldenResult b = run_golden_scenario();
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.events, b.events);
}

TEST(GoldenTrace, RunBatchMatchesStepLoop) {
  // Batched delivery is a throughput interface, not a different schedule:
  // draining the same scenario via run_batch must reproduce the golden
  // hash exactly.
  Simulator sim(0xC0FFEEULL,
                DelayModel::uniform(SimTime::us(3), SimTime::us(400)));
  constexpr std::uint32_t kN = 12;
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (std::uint32_t i = 0; i < kN; ++i) sim.add_node({});
  for (std::uint32_t i = 0; i < kN; ++i) {
    sim.set_handler(i, [&sim, &mix, i](NodeId from, const Bytes& p) {
      mix(from);
      mix(i);
      mix(p.size());
      for (const std::uint8_t b : p) mix(b);
      mix(static_cast<std::uint64_t>(sim.now().micros));
      const std::uint8_t ttl = p.empty() ? 0 : p[0];
      if (ttl == 0) return;
      Bytes fwd(p);
      fwd[0] = static_cast<std::uint8_t>(ttl - 1);
      fwd.push_back(static_cast<std::uint8_t>(i));
      sim.send(i, (i + 1 + ttl) % kN, fwd);
      if (ttl % 3 == 0) {
        sim.schedule(SimTime::us(ttl * 7), [&sim, i, ttl] {
          const Bytes extra{static_cast<std::uint8_t>(ttl / 2)};
          sim.send(i, (i + 2) % kN, extra);
        });
      }
    });
  }
  for (std::uint32_t i = 0; i < kN; ++i) {
    sim.send(i, (i + 1) % kN, Bytes{19, static_cast<std::uint8_t>(i)});
  }
  std::uint64_t processed = 0;
  while (const std::size_t n = sim.run_batch(64)) processed += n;
  const SimStats& s = sim.stats();
  mix(s.messages_sent);
  mix(s.messages_delivered);
  mix(s.bytes_sent);
  mix(s.timers_fired);
  mix(s.events_processed);
  EXPECT_EQ(processed, 1320u);
  EXPECT_EQ(h, 0x4d94b3dc4e8f13c5ULL);
}

}  // namespace
}  // namespace cmh::sim
