// Randomized DDB property tests over the transaction workload driver.
#include <gtest/gtest.h>

#include "ddb/cluster.h"
#include "ddb/workload.h"

namespace cmh::ddb {
namespace {

struct DdbPropertyCase {
  std::uint64_t seed;
  std::uint32_t sites;
  std::uint32_t txns;
  std::uint32_t hot_set;
  std::uint32_t locks_per_txn;
};

class DdbProperties : public ::testing::TestWithParam<DdbPropertyCase> {};

TEST_P(DdbProperties, WorkloadTerminatesAndAllClientsResolve) {
  const auto& p = GetParam();
  DdbOptions options;
  options.initiation = DdbInitiation::kDelayed;
  options.initiation_delay = SimTime::ms(2);
  options.abort_victim = true;
  Cluster db({.n_sites = p.sites,
              .n_resources = p.hot_set,
              .options = options,
              .seed = p.seed});
  TxnScriptConfig cfg;
  cfg.locks_per_txn = p.locks_per_txn;
  cfg.hot_set = p.hot_set;
  cfg.write_fraction = 0.7;
  TxnWorkload workload(db, cfg, p.seed * 13 + 1);
  workload.start(p.txns);
  db.simulator().run();

  // Liveness: with detection + victim abort, every client either commits or
  // exhausts retries; nothing is silently wedged.
  const auto& result = workload.result();
  EXPECT_EQ(result.committed + result.given_up, p.txns)
      << "committed=" << result.committed << " aborted=" << result.aborted
      << " given_up=" << result.given_up;
  // And the system itself ends quiescent: no deadlocked transactions left.
  EXPECT_TRUE(db.oracle_deadlocked().empty());
}

TEST_P(DdbProperties, DetectionsAreSoundAtDeclaration) {
  const auto& p = GetParam();
  DdbOptions options;
  options.initiation = DdbInitiation::kDelayed;
  options.initiation_delay = SimTime::ms(2);
  // Soundness check runs without victim aborts: aborts release locks while
  // others wait (violating the DDB model's release-only-when-active axiom,
  // section 6.4 G2), which the paper's correctness proof does not cover.
  options.abort_victim = false;
  Cluster db({.n_sites = p.sites,
              .n_resources = p.hot_set,
              .options = options,
              .seed = p.seed});
  std::size_t checked = 0;
  db.set_detection_listener([&](const DdbDetection& d) {
    ++checked;
    const auto deadlocked = db.oracle_deadlocked();
    EXPECT_NE(std::find(deadlocked.begin(), deadlocked.end(), d.victim),
              deadlocked.end())
        << d.victim << " declared at " << d.at
        << " but oracle disagrees (site " << d.site << ")";
  });
  TxnScriptConfig cfg;
  cfg.locks_per_txn = p.locks_per_txn;
  cfg.hot_set = p.hot_set;
  cfg.write_fraction = 0.8;
  cfg.max_retries = 0;  // no retries: victims stay wedged (no aborts anyway)
  TxnWorkload workload(db, cfg, p.seed * 17 + 3);
  workload.start(p.txns);
  db.simulator().run();

  // Completeness: every deadlocked transaction's cycle was found by someone
  // (at least one victim per wedged cycle declared).
  const auto deadlocked = db.oracle_deadlocked();
  if (!deadlocked.empty()) {
    EXPECT_FALSE(db.detections().empty())
        << deadlocked.size() << " transactions wedged, none declared";
  } else {
    EXPECT_EQ(db.detections().size(), 0u);
  }
}

std::vector<DdbPropertyCase> make_cases() {
  std::vector<DdbPropertyCase> cases;
  std::uint64_t seed = 100;
  for (const std::uint32_t sites : {2u, 4u}) {
    for (const std::uint32_t txns : {6u, 12u}) {
      for (const std::uint32_t hot : {4u, 8u}) {
        cases.push_back(DdbPropertyCase{seed++, sites, txns, hot, 3});
      }
    }
  }
  cases.push_back(DdbPropertyCase{200, 3, 20, 6, 4});
  cases.push_back(DdbPropertyCase{201, 5, 15, 10, 3});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DdbProperties,
                         ::testing::ValuesIn(make_cases()),
                         [](const auto& info) {
                           const auto& p = info.param;
                           return "s" + std::to_string(p.seed) + "_k" +
                                  std::to_string(p.sites) + "_t" +
                                  std::to_string(p.txns) + "_h" +
                                  std::to_string(p.hot_set);
                         });

}  // namespace
}  // namespace cmh::ddb
