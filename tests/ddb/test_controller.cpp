// Direct Controller unit tests with hand-delivered messages, including
// regression tests for the subtle races found during development:
//   * zombie lock requests overtaken by an abort purge (tombstones),
//   * grant reshuffles creating wait edges without block events,
//   * the degenerate two-agent probe bounce over release-wait edges,
//   * floor corruption by forwarders (stale-tag rule, section 4.3/6.7),
//   * stale labels acting across probe receipts.
#include "ddb/controller.h"

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>

namespace cmh::ddb {
namespace {

/// Manual message fabric for controllers: sends queue per channel; tests
/// deliver selectively (FIFO per channel, arbitrary interleaving across
/// channels -- exactly the paper's network model).
class Rig {
 public:
  explicit Rig(std::uint32_t n_sites, DdbOptions options = manual_options()) {
    for (std::uint32_t i = 0; i < n_sites; ++i) {
      const SiteId id{i};
      controllers_.push_back(std::make_unique<Controller>(
          id, n_sites,
          [this, id](SiteId to, BytesView payload) {
            wires_[{id, to}].emplace_back(payload.begin(), payload.end());
          },
          [n_sites](ResourceId r) { return SiteId{r.value() % n_sites}; },
          options, TimerFn{}));
      controllers_.back()->set_deadlock_callback(
          [this, id](TransactionId victim, const DdbProbeTag& tag) {
            declared_.emplace_back(id, victim, tag);
          });
    }
  }

  static DdbOptions manual_options() {
    DdbOptions o;
    o.initiation = DdbInitiation::kManual;
    o.abort_victim = false;
    return o;
  }

  using TimerFn = Controller::TimerFn;

  Controller& c(std::uint32_t i) { return *controllers_.at(i); }

  std::size_t pending(std::uint32_t from, std::uint32_t to) {
    return wires_[{SiteId{from}, SiteId{to}}].size();
  }

  void deliver_one(std::uint32_t from, std::uint32_t to) {
    auto& q = wires_.at({SiteId{from}, SiteId{to}});
    ASSERT_FALSE(q.empty());
    const Bytes payload = q.front();
    q.pop_front();
    ASSERT_TRUE(c(to).on_message(SiteId{from}, payload).ok());
  }

  void deliver_all() {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (auto& [channel, q] : wires_) {
        while (!q.empty()) {
          const Bytes payload = q.front();
          q.pop_front();
          ASSERT_TRUE(controllers_[channel.second.value()]
                          ->on_message(channel.first, payload)
                          .ok());
          progressed = true;
        }
      }
    }
  }

  /// Drops every pending message on one channel (models nothing -- used to
  /// hold a message back while delivering others first).
  std::deque<Bytes> take_channel(std::uint32_t from, std::uint32_t to) {
    auto& q = wires_[{SiteId{from}, SiteId{to}}];
    std::deque<Bytes> taken = std::move(q);
    q.clear();
    return taken;
  }

  void inject(std::uint32_t from, std::uint32_t to, const Bytes& payload) {
    ASSERT_TRUE(c(to).on_message(SiteId{from}, payload).ok());
  }

  struct Declared {
    Declared(SiteId s, TransactionId v, DdbProbeTag t)
        : site(s), victim(v), tag(t) {}
    SiteId site;
    TransactionId victim;
    DdbProbeTag tag;
  };
  const std::vector<Declared>& declared() const { return declared_; }

 private:
  std::vector<std::unique_ptr<Controller>> controllers_;
  std::map<std::pair<SiteId, SiteId>, std::deque<Bytes>> wires_;
  std::vector<Declared> declared_;
};

const TransactionId t1{1};
const TransactionId t2{2};
// Resource placement in the rig: r % n_sites.
ResourceId res_at(std::uint32_t site, std::uint32_t k, std::uint32_t n) {
  return ResourceId{site + k * n};
}

// ---- lock routing ---------------------------------------------------------------

TEST(Controller, LocalLockSynchronousGrant) {
  Rig rig(2);
  EXPECT_TRUE(rig.c(0).lock(t1, res_at(0, 0, 2), LockMode::kWrite));
  EXPECT_TRUE(rig.c(0).locks().holds(res_at(0, 0, 2), t1));
}

TEST(Controller, RemoteLockForwardedAndGranted) {
  Rig rig(2);
  const ResourceId r = res_at(1, 0, 2);
  EXPECT_FALSE(rig.c(0).lock(t1, r, LockMode::kWrite));
  EXPECT_EQ(rig.pending(0, 1), 1u);  // RemoteLockRequest in flight
  EXPECT_EQ(rig.c(0).pending_remote_sites(t1), (std::vector<SiteId>{SiteId{1}}));
  rig.deliver_all();  // request lands, grant returns
  EXPECT_TRUE(rig.c(1).locks().holds(r, t1));
  EXPECT_TRUE(rig.c(0).pending_remote_sites(t1).empty());
}

TEST(Controller, BlockedQueries) {
  Rig rig(2);
  const ResourceId local = res_at(0, 0, 2);
  ASSERT_TRUE(rig.c(0).lock(t1, local, LockMode::kWrite));
  EXPECT_FALSE(rig.c(0).blocked(t1));
  rig.c(0).lock(t2, local, LockMode::kWrite);  // queues
  EXPECT_TRUE(rig.c(0).blocked(t2));
}

TEST(Controller, FinishBroadcastsPurgeAndReleasesEverywhere) {
  Rig rig(3);
  const ResourceId remote = res_at(1, 0, 3);
  rig.c(0).lock(t1, remote, LockMode::kWrite);
  rig.deliver_all();
  ASSERT_TRUE(rig.c(1).locks().holds(remote, t1));
  rig.c(0).finish(t1);
  EXPECT_EQ(rig.pending(0, 1), 1u);
  EXPECT_EQ(rig.pending(0, 2), 1u);
  rig.deliver_all();
  EXPECT_FALSE(rig.c(1).locks().holds(remote, t1));
}

// ---- regression: zombie request vs abort purge ------------------------------------

TEST(ControllerRegression, AbortPurgeOvertakingRequestLeavesNoZombie) {
  // t1 (home S0) sends a lock request to S2 while S1 declares/aborts t1.
  // The purge (S1 -> S2) is delivered BEFORE the request (S0 -> S2): the
  // request must die on the tombstone instead of occupying the resource.
  Rig rig(3);
  const ResourceId r = res_at(2, 0, 3);
  rig.c(0).lock(t1, r, LockMode::kWrite);  // request S0 -> S2 in flight
  rig.c(1).abort(t1);                      // purge broadcast from S1
  rig.deliver_one(1, 2);                   // purge overtakes
  rig.deliver_one(0, 2);                   // zombie request arrives
  EXPECT_FALSE(rig.c(2).locks().holds(r, t1));
  EXPECT_EQ(rig.c(2).locks().queue_depth(r), 0u);
  // And a second transaction can take the resource.
  rig.deliver_all();
  rig.c(2).lock(t2, r, LockMode::kWrite);
  EXPECT_TRUE(rig.c(2).locks().holds(r, t2));
}

TEST(ControllerRegression, LocalLockAfterLocalAbortRefused) {
  // The declaring controller itself must refuse later lock calls for the
  // victim (its home may not have heard yet and may keep driving it).
  Rig rig(2);
  const ResourceId r = res_at(0, 0, 2);
  rig.c(0).lock(t1, r, LockMode::kWrite);
  rig.c(0).abort(t1);
  EXPECT_FALSE(rig.c(0).lock(t1, res_at(0, 1, 2), LockMode::kWrite));
  EXPECT_FALSE(rig.c(0).locks().holds(res_at(0, 1, 2), t1));
}

// ---- probe computation: two-site deadlock -----------------------------------------

/// Builds the canonical cross-site deadlock:
///   t1 (home S0) holds rA@S0, waits rB@S1 (queued).
///   t2 (home S1) holds rB@S1, waits rA@S0 (queued).
void build_cross_deadlock(Rig& rig, ResourceId& rA, ResourceId& rB) {
  rA = res_at(0, 0, 2);
  rB = res_at(1, 0, 2);
  ASSERT_TRUE(rig.c(0).lock(t1, rA, LockMode::kWrite));
  ASSERT_TRUE(rig.c(1).lock(t2, rB, LockMode::kWrite));
  rig.c(0).lock(t1, rB, LockMode::kWrite);
  rig.c(1).lock(t2, rA, LockMode::kWrite);
  rig.deliver_all();
}

TEST(ControllerProbe, CrossSiteDeadlockDetectedFromEitherSide) {
  for (const std::uint32_t initiator : {0u, 1u}) {
    Rig rig(2);
    ResourceId rA, rB;
    build_cross_deadlock(rig, rA, rB);
    const TransactionId target = initiator == 0 ? t1 : t2;
    ASSERT_TRUE(rig.c(initiator).initiate_for(target).has_value());
    rig.deliver_all();
    ASSERT_EQ(rig.declared().size(), 1u) << "initiator " << initiator;
    EXPECT_EQ(rig.declared()[0].victim, target);
    EXPECT_EQ(rig.declared()[0].site, SiteId{initiator});
  }
}

TEST(ControllerProbe, InitiateForUnblockedProcessReturnsNothing) {
  Rig rig(2);
  ASSERT_TRUE(rig.c(0).lock(t1, res_at(0, 0, 2), LockMode::kWrite));
  EXPECT_EQ(rig.c(0).initiate_for(t1), std::nullopt);
}

TEST(ControllerProbe, NoCycleNoDeclaration) {
  // t1 waits on t2 (remote), t2 is active holding: no cycle.
  Rig rig(2);
  const ResourceId rB = res_at(1, 0, 2);
  ASSERT_TRUE(rig.c(1).lock(t2, rB, LockMode::kWrite));
  rig.c(0).lock(t1, rB, LockMode::kWrite);
  rig.deliver_all();
  ASSERT_TRUE(rig.c(0).initiate_for(t1).has_value());
  rig.deliver_all();
  EXPECT_TRUE(rig.declared().empty());
}

// ---- regression: degenerate release-wait bounce ------------------------------------

TEST(ControllerRegression, HoldHereWaitThereIsNotADeadlock) {
  // t1 (home S0) holds rB@S1 and separately waits for rC@S2 held by t2
  // (t2 active).  The agent pair (t1,S0) <-> (t1,S1) must not be declared
  // a cycle: the holding and the pending acquisition concern different
  // resources.
  Rig rig(3);
  const ResourceId rB = res_at(1, 0, 3);
  const ResourceId rC = res_at(2, 0, 3);
  rig.c(0).lock(t1, rB, LockMode::kWrite);
  rig.deliver_all();
  ASSERT_TRUE(rig.c(1).locks().holds(rB, t1));
  ASSERT_TRUE(rig.c(2).lock(t2, rC, LockMode::kWrite));
  rig.c(0).lock(t1, rC, LockMode::kWrite);  // queues behind t2
  rig.deliver_all();
  ASSERT_TRUE(rig.c(0).initiate_for(t1).has_value());
  // Also poke every other entry point.
  (void)rig.c(1).check_all();
  (void)rig.c(2).check_all();
  rig.deliver_all();
  EXPECT_TRUE(rig.declared().empty());
}

TEST(ControllerProbe, ReleaseWaitCycleDetected) {
  // The shape that NEEDS release-wait edges:
  //   t1 (home S0) holds rB@S1 (remote), waits rC@S2 (queued behind t2).
  //   t2 (home S2) holds rC@S2 (local), waits rB@S1 (queued behind t1).
  // Cycle: (t1,S0) -acq-> (t1,S2) -intra-> (t2,S2) -acq-> (t2,S1)
  //        -intra-> (t1,S1) -release-wait-> (t1,S0).
  Rig rig(3);
  const ResourceId rB = res_at(1, 0, 3);
  const ResourceId rC = res_at(2, 0, 3);
  rig.c(0).lock(t1, rB, LockMode::kWrite);
  rig.deliver_all();
  ASSERT_TRUE(rig.c(2).lock(t2, rC, LockMode::kWrite));
  rig.c(0).lock(t1, rC, LockMode::kWrite);  // t1 waits on t2
  rig.c(2).lock(t2, rB, LockMode::kWrite);  // t2 waits on t1 (via holding)
  rig.deliver_all();
  ASSERT_TRUE(rig.c(0).initiate_for(t1).has_value());
  rig.deliver_all();
  ASSERT_EQ(rig.declared().size(), 1u);
  EXPECT_EQ(rig.declared()[0].victim, t1);
}

// ---- regression: floor propagation --------------------------------------------------

TEST(ControllerRegression, ForwarderDoesNotCorruptInitiatorFloor) {
  // S0 runs many computations (driving its own sequence numbers high);
  // afterwards S1 initiates its FIRST computation (sequence 1).  S0
  // forwards S1's probe; the forwarded probe must carry S1's floor, not
  // S0's -- otherwise S1 drops its own live computation as stale.
  Rig rig(2);
  ResourceId rA, rB;
  build_cross_deadlock(rig, rA, rB);
  // Burn sequence numbers at S0 without resolving anything: initiate for
  // t2 (blocked at S0 via its queued forwarded request) repeatedly.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(rig.c(0).initiate_for(t2).has_value());
  }
  (void)rig.take_channel(0, 1);  // discard that probe traffic entirely
  // Now S1's first computation must still complete.
  ASSERT_TRUE(rig.c(1).initiate_for(t2).has_value());
  rig.deliver_all();
  ASSERT_FALSE(rig.declared().empty());
  EXPECT_EQ(rig.declared()[0].victim, t2);
  EXPECT_EQ(rig.declared()[0].site, SiteId{1});
}

TEST(ControllerProbe, StaleComputationSupersededByNewerFloor) {
  // Two initiations for the same target: receivers must keep only the
  // newer computation's state once its floor arrives.
  Rig rig(2);
  ResourceId rA, rB;
  build_cross_deadlock(rig, rA, rB);
  const auto tag1 = rig.c(0).initiate_for(t1);
  const auto tag2 = rig.c(0).initiate_for(t1);
  ASSERT_TRUE(tag1 && tag2);
  EXPECT_LT(tag1->sequence, tag2->sequence);
  rig.deliver_all();
  // Both computations' probes circulate; at least the newer declares, and
  // every declaration is for the real victim.
  ASSERT_FALSE(rig.declared().empty());
  for (const auto& d : rig.declared()) EXPECT_EQ(d.victim, t1);
}

// ---- regression: grant reshuffle creates wait edges ---------------------------------

TEST(ControllerRegression, GrantReshuffleReArmsDetection) {
  // t3 holds rA; t1 and t2 queue behind it (t1 first).  When t3 finishes,
  // t1 is granted and t2 now waits on t1 -- a NEW edge created by the
  // grant.  With kOnBlock initiation the re-arm hook must fire probes for
  // t2 (visible as computations initiated after the release).
  DdbOptions o;
  o.initiation = DdbInitiation::kOnBlock;
  o.abort_victim = false;
  Rig rig(2, o);
  const TransactionId t3{3};
  const ResourceId rA = res_at(0, 0, 2);
  ASSERT_TRUE(rig.c(0).lock(t3, rA, LockMode::kWrite));
  rig.c(0).lock(t1, rA, LockMode::kWrite);
  rig.c(0).lock(t2, rA, LockMode::kWrite);
  const auto before = rig.c(0).stats().computations_initiated +
                      rig.c(0).stats().local_cycle_detections;
  rig.c(0).finish(t3);  // grants t1; t2 now waits on t1
  rig.deliver_all();
  const auto after = rig.c(0).stats().computations_initiated +
                     rig.c(0).stats().local_cycle_detections;
  EXPECT_GT(after, before);
}

// ---- local cycles and check_all -----------------------------------------------------

TEST(ControllerProbe, LocalCycleDeclaredWithoutMessages) {
  Rig rig(1);
  const ResourceId r0{0};
  const ResourceId r1 = res_at(0, 1, 1);
  ASSERT_TRUE(rig.c(0).lock(t1, r0, LockMode::kWrite));
  ASSERT_TRUE(rig.c(0).lock(t2, r1, LockMode::kWrite));
  rig.c(0).lock(t1, r1, LockMode::kWrite);
  rig.c(0).lock(t2, r0, LockMode::kWrite);
  EXPECT_EQ(rig.c(0).initiate_for(t1), std::nullopt);  // declared locally
  ASSERT_EQ(rig.declared().size(), 1u);
  EXPECT_EQ(rig.c(0).stats().probes_sent, 0u);
  EXPECT_EQ(rig.c(0).stats().local_cycle_detections, 1u);
}

TEST(ControllerProbe, CheckAllQSetListsForwardedWaiters) {
  Rig rig(2);
  ResourceId rA, rB;
  build_cross_deadlock(rig, rA, rB);
  // t2's forwarded request queues at S0: incoming black acquisition edge.
  const auto incoming = rig.c(0).incoming_black_processes();
  EXPECT_NE(std::find(incoming.begin(), incoming.end(), t2), incoming.end());
  // t1 holds remotely-acquired rB?  No: t1 only WAITS for rB.  But t1 is
  // blocked at S0 with a remote holding?  It has none granted yet, so only
  // t2 qualifies here.
  EXPECT_EQ(incoming.size(), 1u);
}

TEST(ControllerProbe, CheckAllDetectsCrossDeadlock) {
  Rig rig(2);
  ResourceId rA, rB;
  build_cross_deadlock(rig, rA, rB);
  EXPECT_GT(rig.c(0).check_all(), 0u);
  rig.deliver_all();
  EXPECT_FALSE(rig.declared().empty());
}

TEST(ControllerProbe, RemoteHoldingFeedsQSet) {
  // t1 (home S0) holds rB@S1 and is blocked: its agent has an incoming
  // release-wait edge, so S0's Q set must include it.
  Rig rig(2);
  const ResourceId rB = res_at(1, 0, 2);
  const ResourceId rA = res_at(0, 0, 2);
  rig.c(0).lock(t1, rB, LockMode::kWrite);
  rig.deliver_all();
  ASSERT_TRUE(rig.c(0).lock(t2, rA, LockMode::kWrite));
  rig.c(0).lock(t1, rA, LockMode::kWrite);  // t1 blocked locally
  const auto incoming = rig.c(0).incoming_black_processes();
  EXPECT_NE(std::find(incoming.begin(), incoming.end(), t1), incoming.end());
}

// ---- misc ---------------------------------------------------------------------------

TEST(Controller, UndecodableFrameReported) {
  Rig rig(1);
  EXPECT_FALSE(rig.c(0).on_message(SiteId{0}, Bytes{0x77}).ok());
}

TEST(Controller, StatsAccumulate) {
  Rig rig(2);
  ResourceId rA, rB;
  build_cross_deadlock(rig, rA, rB);
  ASSERT_TRUE(rig.c(0).initiate_for(t1).has_value());
  rig.deliver_all();
  const auto& s0 = rig.c(0).stats();
  const auto& s1 = rig.c(1).stats();
  EXPECT_GT(s0.probes_sent, 0u);
  EXPECT_GT(s1.probes_received, 0u);
  EXPECT_GT(s1.meaningful_probes, 0u);
  EXPECT_EQ(s0.deadlocks_declared, 1u);
  EXPECT_GT(s0.remote_requests_sent, 0u);
  EXPECT_GT(s1.remote_requests_received, 0u);
}

TEST(Controller, DeclaredVictimsAccessor) {
  Rig rig(2);
  ResourceId rA, rB;
  build_cross_deadlock(rig, rA, rB);
  ASSERT_TRUE(rig.c(0).initiate_for(t1).has_value());
  rig.deliver_all();
  ASSERT_EQ(rig.c(0).declared_victims().size(), 1u);
  EXPECT_EQ(rig.c(0).declared_victims()[0].first, t1);
}

}  // namespace
}  // namespace cmh::ddb
