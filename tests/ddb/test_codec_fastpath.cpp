// DDB codec equivalence and robustness: the stack-encoded probe fast path
// must be byte-identical to the generic encoder, every message must
// round-trip, and every truncated prefix must be rejected cleanly.
#include <gtest/gtest.h>

#include <vector>

#include "ddb/messages.h"

namespace cmh::ddb {
namespace {

DdbProbeMsg sample_probe() {
  return DdbProbeMsg{
      DdbProbeTag{SiteId{3}, 0x123456789ULL},
      42,
      InterEdge{AgentId{TransactionId{7}, SiteId{3}},
                AgentId{TransactionId{7}, SiteId{9}}},
      true};
}

std::vector<DdbMessage> sample_messages() {
  return {
      DdbMessage{RemoteLockRequestMsg{TransactionId{1}, ResourceId{2},
                                      LockMode::kWrite}},
      DdbMessage{RemoteLockRequestMsg{TransactionId{0xFFFFFFFF},
                                      ResourceId{0}, LockMode::kRead}},
      DdbMessage{RemoteLockGrantMsg{TransactionId{5}, ResourceId{6}}},
      DdbMessage{PurgeTxnMsg{TransactionId{8}, true}},
      DdbMessage{PurgeTxnMsg{TransactionId{9}, false}},
      DdbMessage{sample_probe()},
      DdbMessage{DdbProbeMsg{}},
  };
}

TEST(DdbCodecEquivalence, ProbeFastPathMatchesGenericEncoder) {
  const DdbProbeMsg probe = sample_probe();
  const DdbFrame frame = encode_small(probe);
  const Bytes generic = encode(DdbMessage{probe});
  ASSERT_EQ(frame.size(), generic.size());
  EXPECT_TRUE(std::equal(frame.data(), frame.data() + frame.size(),
                         generic.begin()));
  EXPECT_LE(frame.size(), kDdbFrameCapacity);
}

TEST(DdbCodecEquivalence, EncodeIntoMatchesEncode) {
  Bytes scratch;
  for (const DdbMessage& msg : sample_messages()) {
    encode_into(msg, scratch);
    EXPECT_EQ(scratch, encode(msg));
  }
}

TEST(DdbCodecRoundTrip, AllMessageTypes) {
  for (const DdbMessage& msg : sample_messages()) {
    const Bytes bytes = encode(msg);
    const auto decoded = decode(bytes);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->index(), msg.index());
  }
  const auto decoded = decode(encode(DdbMessage{sample_probe()}));
  ASSERT_TRUE(decoded.ok());
  const auto& p = std::get<DdbProbeMsg>(*decoded);
  const DdbProbeMsg expected = sample_probe();
  EXPECT_EQ(p.tag, expected.tag);
  EXPECT_EQ(p.floor, expected.floor);
  EXPECT_EQ(p.edge, expected.edge);
  EXPECT_EQ(p.via_release_wait, expected.via_release_wait);
}

TEST(DdbCodecTruncation, EveryProperPrefixRejected) {
  for (const DdbMessage& msg : sample_messages()) {
    const Bytes bytes = encode(msg);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      const auto r = decode(BytesView(bytes.data(), cut));
      EXPECT_FALSE(r.ok()) << "prefix of " << cut << '/' << bytes.size();
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

}  // namespace
}  // namespace cmh::ddb
