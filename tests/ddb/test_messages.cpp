#include "ddb/messages.h"

#include <gtest/gtest.h>

namespace cmh::ddb {
namespace {

TEST(DdbMessages, LockRequestRoundTrip) {
  const RemoteLockRequestMsg msg{TransactionId{5}, ResourceId{9},
                                 LockMode::kWrite};
  const auto m = decode(encode(DdbMessage{msg}));
  ASSERT_TRUE(m.ok());
  const auto* got = std::get_if<RemoteLockRequestMsg>(&*m);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->txn, msg.txn);
  EXPECT_EQ(got->resource, msg.resource);
  EXPECT_EQ(got->mode, LockMode::kWrite);
}

TEST(DdbMessages, LockRequestReadMode) {
  const auto m = decode(encode(
      DdbMessage{RemoteLockRequestMsg{TransactionId{1}, ResourceId{2},
                                      LockMode::kRead}}));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(std::get<RemoteLockRequestMsg>(*m).mode, LockMode::kRead);
}

TEST(DdbMessages, GrantRoundTrip) {
  const auto m = decode(
      encode(DdbMessage{RemoteLockGrantMsg{TransactionId{3}, ResourceId{4}}}));
  ASSERT_TRUE(m.ok());
  const auto& got = std::get<RemoteLockGrantMsg>(*m);
  EXPECT_EQ(got.txn, TransactionId{3});
  EXPECT_EQ(got.resource, ResourceId{4});
}

TEST(DdbMessages, PurgeRoundTrip) {
  for (const bool aborted : {false, true}) {
    const auto m =
        decode(encode(DdbMessage{PurgeTxnMsg{TransactionId{8}, aborted}}));
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(std::get<PurgeTxnMsg>(*m).aborted, aborted);
    EXPECT_EQ(std::get<PurgeTxnMsg>(*m).txn, TransactionId{8});
  }
}

TEST(DdbMessages, ProbeRoundTrip) {
  for (const bool release_wait : {false, true}) {
    DdbProbeMsg probe;
    probe.tag = DdbProbeTag{SiteId{2}, 77};
    probe.floor = 70;
    probe.edge = InterEdge{AgentId{TransactionId{5}, SiteId{2}},
                           AgentId{TransactionId{5}, SiteId{3}}};
    probe.via_release_wait = release_wait;
    const auto m = decode(encode(DdbMessage{probe}));
    ASSERT_TRUE(m.ok());
    const auto& got = std::get<DdbProbeMsg>(*m);
    EXPECT_EQ(got.tag, probe.tag);
    EXPECT_EQ(got.floor, 70u);
    EXPECT_EQ(got.edge, probe.edge);
    EXPECT_EQ(got.via_release_wait, release_wait);
  }
}

TEST(DdbMessages, EmptyRejected) { EXPECT_FALSE(decode(Bytes{}).ok()); }

TEST(DdbMessages, UnknownTypeRejected) {
  EXPECT_FALSE(decode(Bytes{0x99}).ok());
}

TEST(DdbMessages, BadLockModeRejected) {
  Bytes b = encode(DdbMessage{
      RemoteLockRequestMsg{TransactionId{1}, ResourceId{1}, LockMode::kRead}});
  b.back() = 7;  // corrupt the mode byte
  EXPECT_FALSE(decode(b).ok());
}

TEST(DdbMessages, TruncatedProbeRejected) {
  Bytes b = encode(DdbMessage{DdbProbeMsg{}});
  b.resize(b.size() / 2);
  EXPECT_FALSE(decode(b).ok());
}

TEST(DdbTypes, ConflictMatrix) {
  EXPECT_FALSE(conflicts(LockMode::kRead, LockMode::kRead));
  EXPECT_TRUE(conflicts(LockMode::kRead, LockMode::kWrite));
  EXPECT_TRUE(conflicts(LockMode::kWrite, LockMode::kRead));
  EXPECT_TRUE(conflicts(LockMode::kWrite, LockMode::kWrite));
}

TEST(DdbTypes, ProbeTagOrdering) {
  EXPECT_LT((DdbProbeTag{SiteId{1}, 5}), (DdbProbeTag{SiteId{1}, 6}));
  EXPECT_LT((DdbProbeTag{SiteId{1}, 9}), (DdbProbeTag{SiteId{2}, 1}));
}

}  // namespace
}  // namespace cmh::ddb
