// End-to-end DDB scenarios: local (intra-controller) cycles, distributed
// cycles across sites, the section-6.7 Q optimization, and victim-abort
// liveness.
#include <gtest/gtest.h>

#include "ddb/cluster.h"

namespace cmh::ddb {
namespace {

DdbOptions manual_opts(bool abort_victim = false) {
  DdbOptions o;
  o.initiation = DdbInitiation::kManual;
  o.abort_victim = abort_victim;
  return o;
}

DdbOptions delayed_opts(bool abort_victim = true) {
  DdbOptions o;
  o.initiation = DdbInitiation::kDelayed;
  o.initiation_delay = SimTime::ms(2);
  o.abort_victim = abort_victim;
  return o;
}

// Resources are placed round-robin: resource r lives at site r % n_sites.
ResourceId at_site(std::uint32_t site, std::uint32_t k, std::uint32_t n_sites) {
  return ResourceId{site + k * n_sites};
}

TEST(DdbCluster, SingleSiteLockFlow) {
  Cluster db({.n_sites = 2, .n_resources = 8, .options = manual_opts()});
  const auto t = db.begin(SiteId{0});
  db.lock(t, at_site(0, 0, 2), LockMode::kWrite);
  EXPECT_TRUE(db.granted(t, at_site(0, 0, 2)));
  db.finish(t);
  EXPECT_EQ(db.status(t), TxnStatus::kCommitted);
}

TEST(DdbCluster, RemoteLockFlow) {
  Cluster db({.n_sites = 2, .n_resources = 8, .options = manual_opts()});
  const auto t = db.begin(SiteId{0});
  const auto r = at_site(1, 0, 2);  // resource at the other site
  db.lock(t, r, LockMode::kWrite);
  EXPECT_FALSE(db.granted(t, r));  // in flight
  db.simulator().run();
  EXPECT_TRUE(db.granted(t, r));
  db.finish(t);
  db.simulator().run();
  // After the purge, a second transaction can take the lock.
  const auto t2 = db.begin(SiteId{0});
  db.lock(t2, r, LockMode::kWrite);
  db.simulator().run();
  EXPECT_TRUE(db.granted(t2, r));
}

TEST(DdbCluster, QueuedRemoteGrantArrivesAfterRelease) {
  Cluster db({.n_sites = 2, .n_resources = 8, .options = manual_opts()});
  const auto r = at_site(1, 0, 2);
  const auto t1 = db.begin(SiteId{0});
  db.lock(t1, r, LockMode::kWrite);
  db.simulator().run();
  const auto t2 = db.begin(SiteId{0});
  db.lock(t2, r, LockMode::kWrite);
  db.simulator().run();
  EXPECT_FALSE(db.granted(t2, r));
  db.finish(t1);
  db.simulator().run();
  EXPECT_TRUE(db.granted(t2, r));
}

TEST(DdbCluster, LocalCycleDetectedWithoutProbes) {
  // Two local transactions at the same site deadlock over r0 and r2
  // (both site-0 resources): A0's intra-controller check catches it.
  Cluster db({.n_sites = 2, .n_resources = 8, .options = manual_opts()});
  const auto ra = at_site(0, 0, 2);
  const auto rb = at_site(0, 1, 2);
  const auto t1 = db.begin(SiteId{0});
  const auto t2 = db.begin(SiteId{0});
  db.lock(t1, ra, LockMode::kWrite);
  db.lock(t2, rb, LockMode::kWrite);
  db.lock(t1, rb, LockMode::kWrite);  // queues
  db.lock(t2, ra, LockMode::kWrite);  // queues -> local cycle
  db.simulator().run();
  EXPECT_EQ(db.controller(SiteId{0}).check_all(), 0u);  // no probes needed
  ASSERT_EQ(db.detections().size(), 1u);
  const auto stats = db.total_stats();
  EXPECT_EQ(stats.probes_sent, 0u);
  EXPECT_EQ(stats.local_cycle_detections, 1u);
}

TEST(DdbCluster, DistributedCycleDetectedByProbes) {
  // T1 (home S0) holds r0@S0, wants r1@S1; T2 (home S1) holds r1@S1,
  // wants r0@S0 -- the canonical two-site deadlock.
  Cluster db({.n_sites = 2, .n_resources = 8, .options = manual_opts()});
  const auto r0 = at_site(0, 0, 2);
  const auto r1 = at_site(1, 0, 2);
  const auto t1 = db.begin(SiteId{0});
  const auto t2 = db.begin(SiteId{1});
  db.lock(t1, r0, LockMode::kWrite);
  db.lock(t2, r1, LockMode::kWrite);
  db.simulator().run();
  db.lock(t1, r1, LockMode::kWrite);
  db.lock(t2, r0, LockMode::kWrite);
  db.simulator().run();
  // Both transactions deadlocked per the oracle.
  EXPECT_EQ(db.oracle_deadlocked().size(), 2u);
  // Either controller can find it.
  EXPECT_GT(db.controller(SiteId{0}).check_all(), 0u);
  db.simulator().run();
  ASSERT_FALSE(db.detections().empty());
  const auto victim = db.detections()[0].victim;
  EXPECT_TRUE(victim == t1 || victim == t2);
  EXPECT_GT(db.total_stats().probes_sent, 0u);
  EXPECT_GT(db.total_stats().meaningful_probes, 0u);
}

TEST(DdbCluster, ThreeSiteCycleDetected) {
  Cluster db({.n_sites = 3, .n_resources = 9, .options = manual_opts()});
  const auto r0 = at_site(0, 0, 3);
  const auto r1 = at_site(1, 0, 3);
  const auto r2 = at_site(2, 0, 3);
  const auto t0 = db.begin(SiteId{0});
  const auto t1 = db.begin(SiteId{1});
  const auto t2 = db.begin(SiteId{2});
  db.lock(t0, r0, LockMode::kWrite);
  db.lock(t1, r1, LockMode::kWrite);
  db.lock(t2, r2, LockMode::kWrite);
  db.simulator().run();
  db.lock(t0, r1, LockMode::kWrite);
  db.lock(t1, r2, LockMode::kWrite);
  db.lock(t2, r0, LockMode::kWrite);
  db.simulator().run();
  EXPECT_EQ(db.oracle_deadlocked().size(), 3u);
  EXPECT_GT(db.controller(SiteId{1}).check_all(), 0u);
  db.simulator().run();
  ASSERT_FALSE(db.detections().empty());
  EXPECT_EQ(db.detections()[0].site, SiteId{1});
}

TEST(DdbCluster, NoFalseDetectionOnCleanWorkload) {
  Cluster db({.n_sites = 3, .n_resources = 9, .options = manual_opts()});
  // Non-conflicting transactions.
  const auto t0 = db.begin(SiteId{0});
  const auto t1 = db.begin(SiteId{1});
  db.lock(t0, at_site(1, 0, 3), LockMode::kWrite);
  db.lock(t1, at_site(2, 0, 3), LockMode::kWrite);
  db.simulator().run();
  for (std::uint32_t s = 0; s < 3; ++s) {
    (void)db.controller(SiteId{s}).check_all();
  }
  db.simulator().run();
  EXPECT_TRUE(db.detections().empty());
}

TEST(DdbCluster, WaitChainWithoutCycleNotDeclared) {
  // T1 waits on T2 waits on T3 (no cycle) across two sites.
  Cluster db({.n_sites = 2, .n_resources = 8, .options = manual_opts()});
  const auto r0 = at_site(0, 0, 2);
  const auto r1 = at_site(1, 0, 2);
  const auto t1 = db.begin(SiteId{0});
  const auto t2 = db.begin(SiteId{0});
  const auto t3 = db.begin(SiteId{1});
  db.lock(t3, r1, LockMode::kWrite);
  db.simulator().run();
  db.lock(t2, r1, LockMode::kWrite);  // t2 waits on t3 (remote)
  db.lock(t2, r0, LockMode::kWrite);  // t2 holds r0
  db.simulator().run();
  db.lock(t1, r0, LockMode::kWrite);  // t1 waits on t2 (local)
  db.simulator().run();
  for (std::uint32_t s = 0; s < 2; ++s) {
    (void)db.controller(SiteId{s}).check_all();
  }
  db.simulator().run();
  EXPECT_TRUE(db.detections().empty());
  EXPECT_TRUE(db.oracle_deadlocked().empty());
}

TEST(DdbCluster, DelayedInitiationDetectsAutomatically) {
  Cluster db({.n_sites = 2, .n_resources = 8, .options = delayed_opts()});
  const auto r0 = at_site(0, 0, 2);
  const auto r1 = at_site(1, 0, 2);
  const auto t1 = db.begin(SiteId{0});
  const auto t2 = db.begin(SiteId{1});
  db.lock(t1, r0, LockMode::kWrite);
  db.lock(t2, r1, LockMode::kWrite);
  db.simulator().run();
  db.lock(t1, r1, LockMode::kWrite);
  db.lock(t2, r0, LockMode::kWrite);
  db.simulator().run();
  ASSERT_FALSE(db.detections().empty());
  // Victim was aborted; the survivor's lock was granted (liveness).
  const auto victim = db.detections()[0].victim;
  const auto survivor = (victim == t1) ? t2 : t1;
  EXPECT_EQ(db.status(victim), TxnStatus::kAborted);
  EXPECT_TRUE(db.all_granted(survivor));
}

TEST(DdbCluster, VictimAbortUnblocksLocalCycleToo) {
  DdbOptions o = delayed_opts(true);
  Cluster db({.n_sites = 1, .n_resources = 4, .options = o});
  const auto t1 = db.begin(SiteId{0});
  const auto t2 = db.begin(SiteId{0});
  db.lock(t1, ResourceId{0}, LockMode::kWrite);
  db.lock(t2, ResourceId{1}, LockMode::kWrite);
  db.lock(t1, ResourceId{1}, LockMode::kWrite);
  db.lock(t2, ResourceId{0}, LockMode::kWrite);
  db.simulator().run();
  ASSERT_FALSE(db.detections().empty());
  const auto victim = db.detections()[0].victim;
  const auto survivor = (victim == t1) ? t2 : t1;
  EXPECT_EQ(db.status(victim), TxnStatus::kAborted);
  EXPECT_TRUE(db.all_granted(survivor));
}

TEST(DdbCluster, QOptimizationInitiatesFewerComputations) {
  // Many local-only blocked transactions plus one distributed cycle: the
  // naive mode initiates for every blocked process, the Q mode only for
  // processes with incoming black inter-controller edges.
  auto build = [](DdbOptions o) {
    auto db = std::make_unique<Cluster>(
        ClusterConfig{.n_sites = 2, .n_resources = 32, .options = o});
    const auto r0 = ResourceId{0};  // site 0
    const auto r1 = ResourceId{1};  // site 1
    const auto t1 = db->begin(SiteId{0});
    const auto t2 = db->begin(SiteId{1});
    db->lock(t1, r0, LockMode::kWrite);
    db->lock(t2, r1, LockMode::kWrite);
    db->simulator().run();
    db->lock(t1, r1, LockMode::kWrite);
    db->lock(t2, r0, LockMode::kWrite);
    db->simulator().run();
    // Local-only waiters at site 0: t1 holds r0; they all queue behind it.
    for (int i = 0; i < 6; ++i) {
      const auto t = db->begin(SiteId{0});
      db->lock(t, r0, LockMode::kWrite);
    }
    db->simulator().run();
    return db;
  };

  DdbOptions naive = manual_opts();
  naive.q_optimization = false;
  auto db_naive = build(naive);
  const auto naive_count = db_naive->controller(SiteId{0}).check_all();

  DdbOptions qopt = manual_opts();
  qopt.q_optimization = true;
  auto db_q = build(qopt);
  const auto q_count = db_q->controller(SiteId{0}).check_all();

  EXPECT_LT(q_count, naive_count);
  // Both still find the deadlock.
  db_naive->simulator().run();
  db_q->simulator().run();
  EXPECT_FALSE(db_naive->detections().empty());
  EXPECT_FALSE(db_q->detections().empty());
}

TEST(DdbCluster, ReadSharingAcrossSitesNoDeadlock) {
  Cluster db({.n_sites = 2, .n_resources = 8, .options = delayed_opts()});
  const auto r = ResourceId{1};  // site 1
  const auto t1 = db.begin(SiteId{0});
  const auto t2 = db.begin(SiteId{0});
  db.lock(t1, r, LockMode::kRead);
  db.lock(t2, r, LockMode::kRead);
  db.simulator().run();
  EXPECT_TRUE(db.granted(t1, r));
  EXPECT_TRUE(db.granted(t2, r));
  EXPECT_TRUE(db.detections().empty());
}

TEST(DdbCluster, UpgradeDeadlockAcrossSitesDetected) {
  // Both read r (remote), then both upgrade to write: cross-wait at the
  // owning site (intra-controller cycle there).
  Cluster db({.n_sites = 2, .n_resources = 8, .options = delayed_opts()});
  const auto r = ResourceId{1};  // site 1
  const auto t1 = db.begin(SiteId{0});
  const auto t2 = db.begin(SiteId{0});
  db.lock(t1, r, LockMode::kRead);
  db.lock(t2, r, LockMode::kRead);
  db.simulator().run();
  db.lock(t1, r, LockMode::kWrite);
  db.lock(t2, r, LockMode::kWrite);
  db.simulator().run();
  ASSERT_FALSE(db.detections().empty());
  const auto victim = db.detections()[0].victim;
  const auto survivor = (victim == t1) ? t2 : t1;
  EXPECT_EQ(db.status(victim), TxnStatus::kAborted);
  EXPECT_TRUE(db.granted(survivor, r));
}

TEST(DdbCluster, DetectionListenerFiresAtDeclaration) {
  Cluster db({.n_sites = 2, .n_resources = 8, .options = delayed_opts()});
  std::vector<DdbDetection> seen;
  db.set_detection_listener(
      [&](const DdbDetection& d) { seen.push_back(d); });
  const auto t1 = db.begin(SiteId{0});
  const auto t2 = db.begin(SiteId{1});
  db.lock(t1, ResourceId{0}, LockMode::kWrite);
  db.lock(t2, ResourceId{1}, LockMode::kWrite);
  db.simulator().run();
  db.lock(t1, ResourceId{1}, LockMode::kWrite);
  db.lock(t2, ResourceId{0}, LockMode::kWrite);
  db.simulator().run();
  EXPECT_EQ(seen.size(), db.detections().size());
  ASSERT_FALSE(seen.empty());
}

}  // namespace
}  // namespace cmh::ddb
