// TxnWorkload driver: retry-on-abort, client lock-wait timeouts, and the
// q-optimization on/off behavioural equivalence under random load.
#include "ddb/workload.h"

#include <gtest/gtest.h>

namespace cmh::ddb {
namespace {

DdbOptions detecting(bool q_opt = true) {
  DdbOptions o;
  o.initiation = DdbInitiation::kDelayed;
  o.initiation_delay = SimTime::ms(2);
  o.abort_victim = true;
  o.q_optimization = q_opt;
  return o;
}

TEST(TxnWorkload, AllCommitWithoutContention) {
  Cluster db({.n_sites = 2, .n_resources = 64, .options = detecting()});
  TxnScriptConfig cfg;
  cfg.locks_per_txn = 2;
  cfg.hot_set = 64;  // plenty of room: conflicts unlikely
  cfg.write_fraction = 0.2;
  TxnWorkload workload(db, cfg, 5);
  workload.start(8);
  db.simulator().run();
  EXPECT_EQ(workload.result().committed, 8u);
  EXPECT_EQ(workload.result().given_up, 0u);
}

TEST(TxnWorkload, VictimsRetryAndEventuallyCommit) {
  Cluster db({.n_sites = 2, .n_resources = 4, .options = detecting()});
  TxnScriptConfig cfg;
  cfg.locks_per_txn = 2;
  cfg.hot_set = 4;  // hot: deadlocks certain
  cfg.write_fraction = 1.0;
  cfg.max_retries = 30;
  TxnWorkload workload(db, cfg, 7);
  workload.start(8);
  db.simulator().run();
  const auto& r = workload.result();
  EXPECT_EQ(r.committed + r.given_up, 8u);
  EXPECT_GT(r.aborted, 0u);  // contention this hot must abort someone
  EXPECT_TRUE(db.oracle_deadlocked().empty());
}

TEST(TxnWorkload, ZeroRetriesStopsAfterFirstAbort) {
  Cluster db({.n_sites = 2, .n_resources = 2, .options = detecting()});
  TxnScriptConfig cfg;
  cfg.locks_per_txn = 2;
  cfg.hot_set = 2;
  cfg.write_fraction = 1.0;
  cfg.max_retries = 0;
  TxnWorkload workload(db, cfg, 11);
  workload.start(4);
  db.simulator().run();
  const auto& r = workload.result();
  EXPECT_EQ(r.committed + r.given_up, 4u);
  EXPECT_EQ(r.aborted, r.given_up);  // every abort is terminal
}

TEST(TxnWorkload, ClientTimeoutResolvesWithoutDetector) {
  DdbOptions off;
  off.initiation = DdbInitiation::kManual;  // no probes at all
  off.abort_victim = false;
  Cluster db({.n_sites = 2, .n_resources = 4, .options = off});
  TxnScriptConfig cfg;
  cfg.locks_per_txn = 2;
  cfg.hot_set = 4;
  cfg.write_fraction = 1.0;
  cfg.lock_wait_timeout = SimTime::ms(8);
  cfg.max_retries = 40;
  TxnWorkload workload(db, cfg, 13);
  workload.start(8);
  db.simulator().run();
  const auto& r = workload.result();
  EXPECT_EQ(r.committed + r.given_up, 8u);
  EXPECT_EQ(db.total_stats().probes_sent, 0u);
  EXPECT_TRUE(db.oracle_deadlocked().empty());
}

class QOptEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QOptEquivalence, SameLivenessWithAndWithoutQOptimization) {
  // Detection driven exclusively by periodic check_all() sweeps, which is
  // the code path the section-6.7 flag selects between.  (Per-sweep
  // computation counts are compared in bench_t4 on frozen states; the two
  // runs here diverge after the first abort, so totals are not comparable.)
  for (const bool q : {true, false}) {
    DdbOptions options;
    options.initiation = DdbInitiation::kManual;
    options.abort_victim = true;
    options.q_optimization = q;
    Cluster db({.n_sites = 3,
                .n_resources = 6,
                .options = options,
                .seed = GetParam()});
    // Bounded periodic sweeps: 150 rounds x 2ms per site.
    for (int round = 1; round <= 150; ++round) {
      db.simulator().schedule(SimTime::ms(2 * round), [&db] {
        for (std::uint32_t s = 0; s < 3; ++s) {
          (void)db.controller(SiteId{s}).check_all();
        }
      });
    }
    TxnScriptConfig cfg;
    cfg.locks_per_txn = 3;
    cfg.hot_set = 6;
    cfg.write_fraction = 0.8;
    cfg.max_retries = 25;
    TxnWorkload workload(db, cfg, GetParam() * 3 + 2);
    workload.start(10);
    db.simulator().run();
    const auto& r = workload.result();
    EXPECT_EQ(r.committed + r.given_up, 10u) << "q_opt=" << q;
    EXPECT_TRUE(db.oracle_deadlocked().empty()) << "q_opt=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QOptEquivalence,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

}  // namespace
}  // namespace cmh::ddb
