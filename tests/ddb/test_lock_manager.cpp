#include "ddb/lock_manager.h"

#include <gtest/gtest.h>

namespace cmh::ddb {
namespace {

const TransactionId t1{1};
const TransactionId t2{2};
const TransactionId t3{3};
const ResourceId r1{1};
const ResourceId r2{2};
const SiteId here{0};
const SiteId other{1};

TEST(LockManager, FirstAcquireGranted) {
  LockManager lm;
  EXPECT_EQ(lm.acquire(r1, t1, LockMode::kWrite, here),
            AcquireResult::kGranted);
  EXPECT_TRUE(lm.holds(r1, t1));
  EXPECT_EQ(lm.held_mode(r1, t1), LockMode::kWrite);
}

TEST(LockManager, SharedReadersCoexist) {
  LockManager lm;
  EXPECT_EQ(lm.acquire(r1, t1, LockMode::kRead, here),
            AcquireResult::kGranted);
  EXPECT_EQ(lm.acquire(r1, t2, LockMode::kRead, here),
            AcquireResult::kGranted);
  EXPECT_TRUE(lm.holds(r1, t1));
  EXPECT_TRUE(lm.holds(r1, t2));
}

TEST(LockManager, WriteBlocksBehindRead) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(r1, t1, LockMode::kRead, here),
            AcquireResult::kGranted);
  EXPECT_EQ(lm.acquire(r1, t2, LockMode::kWrite, here),
            AcquireResult::kQueued);
  EXPECT_FALSE(lm.holds(r1, t2));
  EXPECT_TRUE(lm.waiting(r1, t2));
}

TEST(LockManager, ReadBlocksBehindWrite) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(r1, t1, LockMode::kWrite, here),
            AcquireResult::kGranted);
  EXPECT_EQ(lm.acquire(r1, t2, LockMode::kRead, here),
            AcquireResult::kQueued);
}

TEST(LockManager, RedundantAcquire) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(r1, t1, LockMode::kWrite, here),
            AcquireResult::kGranted);
  EXPECT_EQ(lm.acquire(r1, t1, LockMode::kWrite, here),
            AcquireResult::kRedundant);
  EXPECT_EQ(lm.acquire(r1, t1, LockMode::kRead, here),
            AcquireResult::kRedundant);
}

TEST(LockManager, UpgradeSoleReaderInPlace) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(r1, t1, LockMode::kRead, here),
            AcquireResult::kGranted);
  EXPECT_EQ(lm.acquire(r1, t1, LockMode::kWrite, here),
            AcquireResult::kGranted);
  EXPECT_EQ(lm.held_mode(r1, t1), LockMode::kWrite);
}

TEST(LockManager, ContendedUpgradeQueues) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(r1, t1, LockMode::kRead, here),
            AcquireResult::kGranted);
  ASSERT_EQ(lm.acquire(r1, t2, LockMode::kRead, here),
            AcquireResult::kGranted);
  EXPECT_EQ(lm.acquire(r1, t1, LockMode::kWrite, here),
            AcquireResult::kQueued);
  // Release the other reader: the upgrade completes.
  const auto granted = lm.release(r1, t2);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0].txn, t1);
  EXPECT_EQ(lm.held_mode(r1, t1), LockMode::kWrite);
}

TEST(LockManager, UpgradeDeadlockShapeProducesCrossWaits) {
  // Classic upgrade deadlock: both read, both try to upgrade.
  LockManager lm;
  ASSERT_EQ(lm.acquire(r1, t1, LockMode::kRead, here),
            AcquireResult::kGranted);
  ASSERT_EQ(lm.acquire(r1, t2, LockMode::kRead, here),
            AcquireResult::kGranted);
  EXPECT_EQ(lm.acquire(r1, t1, LockMode::kWrite, here),
            AcquireResult::kQueued);
  EXPECT_EQ(lm.acquire(r1, t2, LockMode::kWrite, here),
            AcquireResult::kQueued);
  const auto edges = lm.wait_edges();
  // t1 waits on holder t2 and vice versa (each also waits on the other's
  // queued upgrade ahead of it, already covered by the holder edge).
  EXPECT_NE(std::find(edges.begin(), edges.end(), std::pair{t1, t2}),
            edges.end());
  EXPECT_NE(std::find(edges.begin(), edges.end(), std::pair{t2, t1}),
            edges.end());
}

TEST(LockManager, ReleaseGrantsFifo) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(r1, t1, LockMode::kWrite, here),
            AcquireResult::kGranted);
  ASSERT_EQ(lm.acquire(r1, t2, LockMode::kWrite, here),
            AcquireResult::kQueued);
  ASSERT_EQ(lm.acquire(r1, t3, LockMode::kWrite, here),
            AcquireResult::kQueued);
  auto granted = lm.release(r1, t1);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0].txn, t2);  // FIFO: t2 before t3
  granted = lm.release(r1, t2);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0].txn, t3);
}

TEST(LockManager, ReleaseGrantsMultipleReaders) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(r1, t1, LockMode::kWrite, here),
            AcquireResult::kGranted);
  ASSERT_EQ(lm.acquire(r1, t2, LockMode::kRead, here),
            AcquireResult::kQueued);
  ASSERT_EQ(lm.acquire(r1, t3, LockMode::kRead, here),
            AcquireResult::kQueued);
  const auto granted = lm.release(r1, t1);
  EXPECT_EQ(granted.size(), 2u);  // both readers at once
  EXPECT_TRUE(lm.holds(r1, t2));
  EXPECT_TRUE(lm.holds(r1, t3));
}

TEST(LockManager, NoOvertakingPastConflictingWaiter) {
  // Writer queued behind reader-holder; a later read must NOT overtake it.
  LockManager lm;
  ASSERT_EQ(lm.acquire(r1, t1, LockMode::kRead, here),
            AcquireResult::kGranted);
  ASSERT_EQ(lm.acquire(r1, t2, LockMode::kWrite, here),
            AcquireResult::kQueued);
  EXPECT_EQ(lm.acquire(r1, t3, LockMode::kRead, here),
            AcquireResult::kQueued);
  // t3 waits for the queued writer t2 (and t2 waits for holder t1).
  const auto edges = lm.wait_edges();
  EXPECT_NE(std::find(edges.begin(), edges.end(), std::pair{t3, t2}),
            edges.end());
  EXPECT_NE(std::find(edges.begin(), edges.end(), std::pair{t2, t1}),
            edges.end());
}

TEST(LockManager, ReleaseUnheldIsNoop) {
  LockManager lm;
  EXPECT_TRUE(lm.release(r1, t1).empty());
}

TEST(LockManager, AbortReleasesEverythingAndCancelsQueued) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(r1, t1, LockMode::kWrite, here),
            AcquireResult::kGranted);
  ASSERT_EQ(lm.acquire(r2, t1, LockMode::kRead, here),
            AcquireResult::kGranted);
  ASSERT_EQ(lm.acquire(r1, t2, LockMode::kWrite, here),
            AcquireResult::kQueued);
  ASSERT_EQ(lm.acquire(r2, t2, LockMode::kWrite, here),
            AcquireResult::kQueued);
  const auto granted = lm.abort(t1);
  EXPECT_EQ(granted.size(), 2u);  // t2 acquires both
  EXPECT_FALSE(lm.holds(r1, t1));
  EXPECT_FALSE(lm.holds(r2, t1));
  EXPECT_TRUE(lm.holds(r1, t2));
  EXPECT_TRUE(lm.holds(r2, t2));
}

TEST(LockManager, AbortCancelsOwnQueuedRequests) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(r1, t1, LockMode::kWrite, here),
            AcquireResult::kGranted);
  ASSERT_EQ(lm.acquire(r1, t2, LockMode::kWrite, here),
            AcquireResult::kQueued);
  (void)lm.abort(t2);
  EXPECT_FALSE(lm.waiting(r1, t2));
  EXPECT_TRUE(lm.release(r1, t1).empty());  // nobody left to grant
}

TEST(LockManager, HeldByListsResources) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(r1, t1, LockMode::kRead, here),
            AcquireResult::kGranted);
  ASSERT_EQ(lm.acquire(r2, t1, LockMode::kWrite, here),
            AcquireResult::kGranted);
  EXPECT_EQ(lm.held_by(t1), (std::vector<ResourceId>{r1, r2}));
  EXPECT_TRUE(lm.held_by(t2).empty());
}

TEST(LockManager, WaitEdgesOnlyForConflicts) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(r1, t1, LockMode::kWrite, here),
            AcquireResult::kGranted);
  ASSERT_EQ(lm.acquire(r1, t2, LockMode::kRead, here),
            AcquireResult::kQueued);
  ASSERT_EQ(lm.acquire(r1, t3, LockMode::kRead, here),
            AcquireResult::kQueued);
  const auto edges = lm.wait_edges();
  // Both readers wait on the writer; they do NOT wait on each other.
  EXPECT_EQ(edges.size(), 2u);
  EXPECT_EQ(std::find(edges.begin(), edges.end(), std::pair{t3, t2}),
            edges.end());
}

TEST(LockManager, QueuedForTracksOrigin) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(r1, t1, LockMode::kWrite, here),
            AcquireResult::kGranted);
  ASSERT_EQ(lm.acquire(r1, t2, LockMode::kWrite, other),
            AcquireResult::kQueued);
  const auto queued = lm.queued_for(t2);
  ASSERT_EQ(queued.size(), 1u);
  EXPECT_EQ(queued[0].first, r1);
  EXPECT_EQ(queued[0].second.origin, other);
}

TEST(LockManager, QueueDepth) {
  LockManager lm;
  EXPECT_EQ(lm.queue_depth(r1), 0u);
  ASSERT_EQ(lm.acquire(r1, t1, LockMode::kWrite, here),
            AcquireResult::kGranted);
  ASSERT_EQ(lm.acquire(r1, t2, LockMode::kWrite, here),
            AcquireResult::kQueued);
  ASSERT_EQ(lm.acquire(r1, t3, LockMode::kWrite, here),
            AcquireResult::kQueued);
  EXPECT_EQ(lm.queue_depth(r1), 2u);
}

TEST(LockManager, QueuedRequestsEnumeratesAll) {
  LockManager lm;
  ASSERT_EQ(lm.acquire(r1, t1, LockMode::kWrite, here),
            AcquireResult::kGranted);
  ASSERT_EQ(lm.acquire(r2, t1, LockMode::kWrite, here),
            AcquireResult::kGranted);
  ASSERT_EQ(lm.acquire(r1, t2, LockMode::kWrite, other),
            AcquireResult::kQueued);
  ASSERT_EQ(lm.acquire(r2, t3, LockMode::kRead, here),
            AcquireResult::kQueued);
  EXPECT_EQ(lm.queued_requests().size(), 2u);
}

}  // namespace
}  // namespace cmh::ddb
