// Unit tests for BasicProcess with hand-delivered messages: a tiny rig that
// lets each test play postman and interleave deliveries adversarially.
#include "core/basic_process.h"

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>

namespace cmh::core {
namespace {

/// Manual message fabric: sends queue up; tests deliver selectively.
class Rig {
 public:
  explicit Rig(std::uint32_t n, Options options = {}) {
    for (std::uint32_t i = 0; i < n; ++i) {
      const ProcessId id{i};
      procs_.push_back(std::make_unique<BasicProcess>(
          id,
          [this, id](ProcessId to, BytesView payload) {
            wires_[{id, to}].emplace_back(payload.begin(), payload.end());
          },
          options));
    }
  }

  BasicProcess& p(std::uint32_t i) { return *procs_.at(i); }

  std::size_t pending(std::uint32_t from, std::uint32_t to) {
    return wires_[{ProcessId{from}, ProcessId{to}}].size();
  }

  /// Delivers the oldest message on channel from->to.
  void deliver_one(std::uint32_t from, std::uint32_t to) {
    auto& q = wires_.at({ProcessId{from}, ProcessId{to}});
    ASSERT_FALSE(q.empty());
    const Bytes payload = q.front();
    q.pop_front();
    ASSERT_TRUE(p(to).on_message(ProcessId{from}, payload).ok());
  }

  /// Delivers everything until quiescent (FIFO per channel, round-robin).
  void deliver_all() {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (auto& [channel, q] : wires_) {
        while (!q.empty()) {
          const Bytes payload = q.front();
          q.pop_front();
          ASSERT_TRUE(p(channel.second.value())
                          .on_message(channel.first, payload)
                          .ok());
          progressed = true;
        }
      }
    }
  }

  std::size_t total_pending() {
    std::size_t n = 0;
    for (auto& [channel, q] : wires_) n += q.size();
    return n;
  }

 private:
  std::vector<std::unique_ptr<BasicProcess>> procs_;
  std::map<std::pair<ProcessId, ProcessId>, std::deque<Bytes>> wires_;
};

Options manual() {
  Options o;
  o.initiation = InitiationMode::kManual;
  return o;
}

// ---- underlying computation ---------------------------------------------------

TEST(BasicProcess, RequestCreatesLocalOutEdge) {
  Rig rig(2, manual());
  rig.p(0).send_request(ProcessId{1});
  EXPECT_TRUE(rig.p(0).waits_for().contains(ProcessId{1}));
  EXPECT_TRUE(rig.p(0).blocked());
  EXPECT_EQ(rig.pending(0, 1), 1u);
}

TEST(BasicProcess, RequestReceiptCreatesBlackInEdge) {
  Rig rig(2, manual());
  rig.p(0).send_request(ProcessId{1});
  rig.deliver_one(0, 1);
  EXPECT_TRUE(rig.p(1).held_requests().contains(ProcessId{0}));
}

TEST(BasicProcess, ReplyClearsBothSides) {
  Rig rig(2, manual());
  rig.p(0).send_request(ProcessId{1});
  rig.deliver_one(0, 1);
  rig.p(1).send_reply(ProcessId{0});
  EXPECT_FALSE(rig.p(1).held_requests().contains(ProcessId{0}));
  rig.deliver_one(1, 0);
  EXPECT_FALSE(rig.p(0).blocked());
  EXPECT_FALSE(rig.p(0).waits_for().contains(ProcessId{1}));
}

TEST(BasicProcess, DuplicateRequestIsModelViolation) {
  Rig rig(2, manual());
  rig.p(0).send_request(ProcessId{1});
  EXPECT_THROW(rig.p(0).send_request(ProcessId{1}), ModelViolation);
}

TEST(BasicProcess, SelfRequestIsModelViolation) {
  Rig rig(1, manual());
  EXPECT_THROW(rig.p(0).send_request(ProcessId{0}), ModelViolation);
}

TEST(BasicProcess, BlockedProcessCannotReply) {
  // G3: only active processes may reply.
  Rig rig(3, manual());
  rig.p(0).send_request(ProcessId{1});
  rig.deliver_one(0, 1);
  rig.p(1).send_request(ProcessId{2});  // p1 now blocked
  EXPECT_THROW(rig.p(1).send_reply(ProcessId{0}), ModelViolation);
}

TEST(BasicProcess, ReplyWithoutRequestIsModelViolation) {
  Rig rig(2, manual());
  EXPECT_THROW(rig.p(0).send_reply(ProcessId{1}), ModelViolation);
}

TEST(BasicProcess, UndecodablePayloadReturnsError) {
  Rig rig(1, manual());
  EXPECT_FALSE(rig.p(0).on_message(ProcessId{0}, Bytes{0xff}).ok());
}

// ---- probe computation: A0 / A1 / A2 ------------------------------------------

TEST(Probe, ActiveProcessCannotInitiate) {
  Rig rig(2, manual());
  EXPECT_EQ(rig.p(0).initiate(), std::nullopt);
}

TEST(Probe, InitiateSendsProbeOnEveryOutgoingEdge) {
  Rig rig(4, manual());
  rig.p(0).send_request(ProcessId{1});
  rig.p(0).send_request(ProcessId{2});
  rig.p(0).send_request(ProcessId{3});
  const auto tag = rig.p(0).initiate();
  ASSERT_TRUE(tag.has_value());
  EXPECT_EQ(tag->initiator, ProcessId{0});
  EXPECT_EQ(rig.pending(0, 1), 2u);  // request + probe
  EXPECT_EQ(rig.pending(0, 2), 2u);
  EXPECT_EQ(rig.pending(0, 3), 2u);
  EXPECT_EQ(rig.p(0).stats().probes_sent, 3u);
}

TEST(Probe, TwoCycleDetected) {
  Rig rig(2, manual());
  rig.p(0).send_request(ProcessId{1});
  rig.p(1).send_request(ProcessId{0});
  rig.deliver_all();
  ASSERT_TRUE(rig.p(0).initiate().has_value());
  rig.deliver_all();
  EXPECT_TRUE(rig.p(0).declared_deadlock());
  EXPECT_TRUE(rig.p(0).deadlocked());
}

TEST(Probe, NonInitiatorForwardsButDoesNotDeclare) {
  Rig rig(3, manual());
  rig.p(0).send_request(ProcessId{1});
  rig.p(1).send_request(ProcessId{2});
  rig.p(2).send_request(ProcessId{0});
  rig.deliver_all();
  ASSERT_TRUE(rig.p(0).initiate().has_value());
  rig.deliver_all();
  EXPECT_TRUE(rig.p(0).declared_deadlock());
  EXPECT_FALSE(rig.p(1).declared_deadlock());
  EXPECT_FALSE(rig.p(2).declared_deadlock());
}

TEST(Probe, MeaninglessProbeDropped) {
  // Probe arrives along an edge that is not black at receipt (the receiver
  // holds no request from the sender) -- it must be ignored (P3 check).
  Rig rig(2, manual());
  rig.p(0).send_request(ProcessId{1});
  const auto tag = rig.p(0).initiate();
  ASSERT_TRUE(tag.has_value());
  // Deliver the probe BEFORE the request: channel FIFO would forbid this,
  // but a buggy network might not; the meaningful check protects us.
  // (Request is message 0, probe is message 1 on the channel.)
  auto& p1 = rig.p(1);
  // Simulate out-of-order by delivering only the probe bytes.
  // Build the probe payload directly:
  const Bytes probe = encode(Message{ProbeMsg{*tag}});
  ASSERT_TRUE(p1.on_message(ProcessId{0}, probe).ok());
  EXPECT_EQ(p1.stats().probes_received, 1u);
  EXPECT_EQ(p1.stats().meaningful_probes, 0u);
  EXPECT_EQ(p1.stats().probes_sent, 0u);
}

TEST(Probe, AcyclicChainNeverDeclares) {
  Rig rig(4, manual());
  rig.p(0).send_request(ProcessId{1});
  rig.p(1).send_request(ProcessId{2});
  rig.p(2).send_request(ProcessId{3});
  rig.deliver_all();
  ASSERT_TRUE(rig.p(0).initiate().has_value());
  rig.deliver_all();
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(rig.p(i).declared_deadlock()) << i;
  }
}

TEST(Probe, ForwardOnceGate) {
  // A2: only the FIRST meaningful probe of a computation triggers
  // forwarding; a diamond delivers two meaningful probes to p3.
  Rig rig(5, manual());
  // p0 -> p1 -> p3 -> p4,  p0 -> p2 -> p3
  rig.p(0).send_request(ProcessId{1});
  rig.p(0).send_request(ProcessId{2});
  rig.p(1).send_request(ProcessId{3});
  rig.p(2).send_request(ProcessId{3});
  rig.p(3).send_request(ProcessId{4});
  rig.deliver_all();
  ASSERT_TRUE(rig.p(0).initiate().has_value());
  rig.deliver_all();
  EXPECT_EQ(rig.p(3).stats().meaningful_probes, 2u);
  EXPECT_EQ(rig.p(3).stats().probes_sent, 1u);  // forwarded only once
}

TEST(Probe, ForwardEveryAblationForwardsTwice) {
  Options o = manual();
  o.forward_every_meaningful_probe = true;
  Rig rig(5, o);
  rig.p(0).send_request(ProcessId{1});
  rig.p(0).send_request(ProcessId{2});
  rig.p(1).send_request(ProcessId{3});
  rig.p(2).send_request(ProcessId{3});
  rig.p(3).send_request(ProcessId{4});
  rig.deliver_all();
  ASSERT_TRUE(rig.p(0).initiate().has_value());
  rig.deliver_all();
  EXPECT_EQ(rig.p(3).stats().probes_sent, 2u);
}

TEST(Probe, StaleComputationIgnored) {
  Rig rig(2, manual());
  rig.p(0).send_request(ProcessId{1});
  rig.p(1).send_request(ProcessId{0});
  rig.deliver_all();
  const auto tag1 = rig.p(0).initiate();
  const auto tag2 = rig.p(0).initiate();
  ASSERT_TRUE(tag1 && tag2);
  EXPECT_LT(tag1->sequence, tag2->sequence);
  // Deliver the newer computation first...
  rig.deliver_all();
  EXPECT_TRUE(rig.p(0).declared_deadlock());
  // p1 engaged with (0, n2); a late probe of (0, n1) must be dropped.
  const Bytes stale = encode(Message{ProbeMsg{*tag1}});
  const auto forwarded_before = rig.p(1).stats().probes_sent;
  ASSERT_TRUE(rig.p(1).on_message(ProcessId{0}, stale).ok());
  EXPECT_EQ(rig.p(1).stats().probes_sent, forwarded_before);
}

TEST(Probe, InitiatorDeclaresOnlyOncePerComputation) {
  // Two disjoint return paths deliver two meaningful probes to the
  // initiator; only one declaration must result.
  Rig rig(3, manual());
  // p0 -> p1 -> p0 and p0 -> p2 -> p0: two 2-cycles through p0.
  rig.p(0).send_request(ProcessId{1});
  rig.p(0).send_request(ProcessId{2});
  rig.p(1).send_request(ProcessId{0});
  rig.p(2).send_request(ProcessId{0});
  rig.deliver_all();
  int declarations = 0;
  rig.p(0).set_deadlock_callback([&](const ProbeTag&) { ++declarations; });
  ASSERT_TRUE(rig.p(0).initiate().has_value());
  rig.deliver_all();
  EXPECT_EQ(declarations, 1);
  EXPECT_EQ(rig.p(0).stats().deadlocks_declared, 1u);
}

TEST(Probe, SeparateComputationsHaveDistinctTags) {
  Rig rig(2, manual());
  rig.p(0).send_request(ProcessId{1});
  const auto t1 = rig.p(0).initiate();
  const auto t2 = rig.p(0).initiate();
  ASSERT_TRUE(t1 && t2);
  EXPECT_NE(*t1, *t2);
  EXPECT_EQ(t1->initiator, t2->initiator);
}

TEST(Probe, ConcurrentInitiatorsBothDetect) {
  Rig rig(2, manual());
  rig.p(0).send_request(ProcessId{1});
  rig.p(1).send_request(ProcessId{0});
  rig.deliver_all();
  ASSERT_TRUE(rig.p(0).initiate().has_value());
  ASSERT_TRUE(rig.p(1).initiate().has_value());
  rig.deliver_all();
  EXPECT_TRUE(rig.p(0).declared_deadlock());
  EXPECT_TRUE(rig.p(1).declared_deadlock());
}

TEST(Probe, OnRequestModeInitiatesAutomatically) {
  Options o;  // default kOnRequest
  Rig rig(2, o);
  rig.p(0).send_request(ProcessId{1});
  EXPECT_EQ(rig.p(0).stats().computations_initiated, 1u);
  rig.p(1).send_request(ProcessId{0});
  rig.deliver_all();
  // p1's computation (initiated at the cycle-closing request) must detect.
  EXPECT_TRUE(rig.p(1).declared_deadlock());
}

TEST(Probe, DelayedModeRequiresTimerService) {
  Options o;
  o.initiation = InitiationMode::kDelayed;
  EXPECT_THROW(
      BasicProcess(ProcessId{0}, [](ProcessId, BytesView) {}, o, nullptr),
      std::invalid_argument);
}

// ---- stats ------------------------------------------------------------------------

TEST(Stats, CountersTrackTraffic) {
  Rig rig(2, manual());
  rig.p(0).send_request(ProcessId{1});
  rig.deliver_all();
  rig.p(1).send_reply(ProcessId{0});
  rig.deliver_all();
  EXPECT_EQ(rig.p(0).stats().requests_sent, 1u);
  EXPECT_EQ(rig.p(1).stats().replies_sent, 1u);
}

}  // namespace
}  // namespace cmh::core
