// Randomized property tests: QRP1 (completeness) and QRP2 (soundness) under
// adversarial schedules produced by the random workload driver, across many
// seeds, delay models and initiation policies.
#include <gtest/gtest.h>

#include "runtime/sim_cluster.h"
#include "runtime/workload.h"

namespace cmh {
namespace {

using runtime::SimCluster;

struct PropertyCase {
  std::uint64_t seed;
  std::uint32_t processes;
  core::InitiationMode mode;
  std::int64_t delay_t_ms;  // T for kDelayed
  std::int64_t net_min_us;
  std::int64_t net_max_us;
};

class ProbeProperties : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ProbeProperties, SoundAndComplete) {
  const auto& param = GetParam();
  core::Options options;
  options.initiation = param.mode;
  options.initiation_delay = SimTime::ms(param.delay_t_ms);

  SimCluster cluster(param.processes, options, param.seed,
                     sim::DelayModel::uniform(SimTime::us(param.net_min_us),
                                              SimTime::us(param.net_max_us)));

  // QRP2 at declaration instants: the declarer is on a dark cycle NOW.
  std::size_t declarations = 0;
  cluster.set_detection_callback([&](const runtime::DeadlockEvent& e) {
    ++declarations;
    EXPECT_TRUE(cluster.oracle().on_dark_cycle(e.process))
        << "false deadlock declared by " << e.process << " at " << e.at;
    EXPECT_EQ(e.tag.initiator, e.process);
  });

  runtime::WorkloadConfig wl;
  wl.mean_interarrival = SimTime::us(150);
  wl.mean_service = SimTime::us(800);
  wl.max_outstanding = 3;
  wl.issue_until = SimTime::ms(30);
  runtime::RandomWorkload workload(cluster, wl, param.seed * 31 + 7);
  workload.start();
  cluster.run();

  // QRP1 at quiescence: if the system wedged into dark cycles, somebody on
  // a cycle must have declared.
  const auto deadlocked = cluster.oracle().deadlocked_vertices();
  if (!deadlocked.empty()) {
    EXPECT_GT(declarations, 0u)
        << deadlocked.size() << " vertices deadlocked but nobody declared";
    for (const auto& d : cluster.detections()) {
      EXPECT_TRUE(cluster.oracle().on_dark_cycle(d.process));
    }
  } else {
    // No deadlock ever formed (first_deadlock_at catches mid-run cycles,
    // which by permanence would still exist now).
    EXPECT_EQ(declarations, 0u);
    EXPECT_FALSE(workload.first_deadlock_at().has_value());
  }
}

std::vector<PropertyCase> make_cases() {
  std::vector<PropertyCase> cases;
  std::uint64_t seed = 1;
  for (const auto mode :
       {core::InitiationMode::kOnRequest, core::InitiationMode::kDelayed}) {
    for (const std::uint32_t n : {4u, 8u, 16u}) {
      for (const auto& [lo, hi] :
           {std::pair<std::int64_t, std::int64_t>{50, 500},
            std::pair<std::int64_t, std::int64_t>{1, 5000}}) {
        for (int rep = 0; rep < 3; ++rep) {
          cases.push_back(PropertyCase{seed++, n, mode, 2, lo, hi});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProbeProperties, ::testing::ValuesIn(make_cases()),
    [](const auto& info) {
      const auto& p = info.param;
      return "s" + std::to_string(p.seed) + "_n" +
             std::to_string(p.processes) + "_m" +
             std::to_string(static_cast<int>(p.mode)) + "_d" +
             std::to_string(p.net_max_us);
    });

// ---- stale-tag ablation keeps correctness ---------------------------------------
//
// NOTE: both ablations disable the paper's traffic-bounding rules, whose
// absence is combinatorially explosive on dense graphs (that is the point of
// bench_a1/bench_a2).  The correctness checks therefore run on small planted
// scenarios, not the random workload.

TEST(StaleTagAblation, ProcessingStaleTagsStillSound) {
  core::Options options;
  options.initiation = core::InitiationMode::kManual;
  options.ignore_stale_computations = false;
  SimCluster cluster(6, options, 77);
  cluster.set_detection_callback([&](const runtime::DeadlockEvent& e) {
    EXPECT_TRUE(cluster.oracle().on_dark_cycle(e.process));
  });
  runtime::issue_scenario(cluster, graph::make_ring(6, 6));
  cluster.run();
  // Initiate twice: the second computation supersedes, but with the
  // ablation the first one's probes are processed too.
  (void)cluster.process(ProcessId{0}).initiate();
  (void)cluster.process(ProcessId{0}).initiate();
  cluster.run();
  EXPECT_FALSE(cluster.detections().empty());
}

// ---- forward-every ablation keeps correctness ------------------------------------

TEST(ForwardEveryAblation, StillSoundJustNoisier) {
  core::Options options;
  options.initiation = core::InitiationMode::kManual;
  options.forward_every_meaningful_probe = true;
  SimCluster cluster(8, options, 79);
  cluster.set_detection_callback([&](const runtime::DeadlockEvent& e) {
    EXPECT_TRUE(cluster.oracle().on_dark_cycle(e.process));
  });
  // A ring plus a couple of chords: meaningful probes arrive several times
  // at some vertices; correctness must survive the extra forwarding.
  runtime::issue_scenario(cluster, graph::make_ring(8, 8));
  cluster.request(ProcessId{1}, ProcessId{4});
  cluster.request(ProcessId{3}, ProcessId{7});
  cluster.run();
  (void)cluster.process(ProcessId{0}).initiate();
  cluster.run();
  EXPECT_FALSE(cluster.detections().empty());
}

}  // namespace
}  // namespace cmh
