// Section-5 WFGD computation: after a detection, every vertex learns the
// edges on permanent black paths leading from it; validated against the
// graph oracle's black-path fixpoint.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "runtime/sim_cluster.h"
#include "runtime/workload.h"

namespace cmh {
namespace {

using runtime::SimCluster;

core::Options manual_with_wfgd() {
  core::Options o;
  o.initiation = core::InitiationMode::kManual;
  o.propagate_wfgd = true;
  return o;
}

/// Wedges a scenario, initiates at `initiator`, runs to quiescence, and
/// returns the cluster for inspection.
std::unique_ptr<SimCluster> detect(const graph::Scenario& scenario,
                                   ProcessId initiator, std::uint64_t seed) {
  auto cluster = std::make_unique<SimCluster>(scenario.n_processes,
                                              manual_with_wfgd(), seed);
  runtime::issue_scenario(*cluster, scenario);
  cluster->run();
  EXPECT_TRUE(cluster->process(initiator).initiate().has_value());
  cluster->run();
  return cluster;
}

TEST(Wfgd, RingMembersLearnFullCycle) {
  const std::uint32_t len = 5;
  auto cluster = detect(graph::make_ring(len, len), ProcessId{0}, 1);
  ASSERT_EQ(cluster->detections().size(), 1u);
  // Every ring member's S_j must equal the oracle's black-path edges from
  // it to the initiator -- which for a pure ring is all cycle edges.
  for (std::uint32_t i = 0; i < len; ++i) {
    const auto& s = cluster->process(ProcessId{i}).wfgd_edges();
    const auto expected =
        cluster->oracle().black_path_edges_to(ProcessId{i}, ProcessId{0});
    EXPECT_EQ(std::set<graph::Edge>(expected.begin(), expected.end()),
              std::set<graph::Edge>(s.begin(), s.end()))
        << "S_" << i;
    EXPECT_EQ(s.size(), len) << "S_" << i;
  }
}

TEST(Wfgd, AllRingMembersMarkedDeadlocked) {
  const std::uint32_t len = 7;
  auto cluster = detect(graph::make_ring(len, len), ProcessId{2}, 2);
  for (std::uint32_t i = 0; i < len; ++i) {
    EXPECT_TRUE(cluster->process(ProcessId{i}).deadlocked()) << i;
  }
  // Exactly one vertex *declared* (A1); the rest learnt via WFGD.
  std::size_t declared = 0;
  for (std::uint32_t i = 0; i < len; ++i) {
    declared += cluster->process(ProcessId{i}).declared_deadlock() ? 1 : 0;
  }
  EXPECT_EQ(declared, 1u);
}

TEST(Wfgd, TailsLearnTheirPathsIntoTheCycle) {
  // Ring 0..3 plus tails waiting into it; tails have permanent black paths
  // leading from them and must discover exactly the oracle fixpoint.
  const auto scenario = graph::make_ring_with_tails(12, 4, 10, 5);
  auto cluster = detect(scenario, ProcessId{1}, 3);
  ASSERT_FALSE(cluster->detections().empty());
  const ProcessId initiator = cluster->detections()[0].process;
  for (std::uint32_t i = 0; i < scenario.n_processes; ++i) {
    const ProcessId v{i};
    const auto expected =
        cluster->oracle().black_path_edges_to(v, initiator);
    const auto& got = cluster->process(v).wfgd_edges();
    EXPECT_EQ(std::set<graph::Edge>(expected.begin(), expected.end()),
              std::set<graph::Edge>(got.begin(), got.end()))
        << "S_" << i;
    if (!expected.empty()) {
      EXPECT_TRUE(cluster->process(v).deadlocked()) << i;
    }
  }
}

TEST(Wfgd, ComputationTerminates) {
  // "A WFGD computation will cease because a vertex never sends the same
  // message twice" -- quiescence of the simulator run IS termination; also
  // bound the message count: each vertex sends at most (distinct sets) x
  // (black in-edges), and sets grow monotonically, so total messages are
  // bounded by edges^2.  Check a generous bound.
  const std::uint32_t len = 8;
  auto cluster = detect(graph::make_ring(len, len), ProcessId{0}, 7);
  const auto stats = cluster->total_stats();
  EXPECT_GT(stats.wfgd_messages_sent, 0u);
  EXPECT_LE(stats.wfgd_messages_sent,
            static_cast<std::uint64_t>(len) * len);
  EXPECT_EQ(stats.wfgd_messages_sent, stats.wfgd_messages_received);
}

TEST(Wfgd, DisabledOptionSendsNothing) {
  core::Options o;
  o.initiation = core::InitiationMode::kManual;
  o.propagate_wfgd = false;
  SimCluster cluster(4, o, 1);
  runtime::issue_scenario(cluster, graph::make_ring(4, 4));
  cluster.run();
  ASSERT_TRUE(cluster.process(ProcessId{0}).initiate().has_value());
  cluster.run();
  EXPECT_EQ(cluster.total_stats().wfgd_messages_sent, 0u);
  EXPECT_TRUE(cluster.process(ProcessId{1}).wfgd_edges().empty());
  // Non-declaring members never learn they are deadlocked without WFGD.
  EXPECT_FALSE(cluster.process(ProcessId{1}).deadlocked());
}

TEST(Wfgd, TwoCycleMinimalCase) {
  auto cluster = detect(graph::make_ring(2, 2), ProcessId{0}, 9);
  const core::BasicProcess::WfgdEdgeSet expected{
      graph::Edge{ProcessId{0}, ProcessId{1}},
      graph::Edge{ProcessId{1}, ProcessId{0}}};
  EXPECT_EQ(cluster->process(ProcessId{0}).wfgd_edges(), expected);
  EXPECT_EQ(cluster->process(ProcessId{1}).wfgd_edges(), expected);
}

class WfgdRandomTails
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WfgdRandomTails, FixpointMatchesOracleEverywhere) {
  const auto scenario =
      graph::make_ring_with_tails(24, 6, 20, GetParam());
  auto cluster = detect(scenario, ProcessId{0}, GetParam());
  ASSERT_FALSE(cluster->detections().empty());
  const ProcessId initiator = cluster->detections()[0].process;
  for (std::uint32_t i = 0; i < scenario.n_processes; ++i) {
    const auto expected =
        cluster->oracle().black_path_edges_to(ProcessId{i}, initiator);
    const auto& got = cluster->process(ProcessId{i}).wfgd_edges();
    EXPECT_EQ(std::set<graph::Edge>(expected.begin(), expected.end()),
              std::set<graph::Edge>(got.begin(), got.end()))
        << "vertex " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WfgdRandomTails,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace cmh
