// Codec equivalence and robustness properties:
//   * the stack fast path (encode_small), the scratch-buffer path
//     (encode_into) and the allocating path (encode) emit byte-identical
//     frames for the same message;
//   * every message round-trips;
//   * every proper prefix of a valid frame is rejected with
//     kInvalidArgument -- truncation at ANY byte offset, not just the
//     offsets a hand-picked test happens to cover.
#include <gtest/gtest.h>

#include <vector>

#include "core/messages.h"
#include "core/or_model.h"

namespace cmh::core {
namespace {

std::vector<Message> sample_messages() {
  std::vector<Message> msgs;
  msgs.emplace_back(RequestMsg{});
  msgs.emplace_back(ReplyMsg{});
  msgs.emplace_back(ProbeMsg{ProbeTag{ProcessId{0}, 0}});
  msgs.emplace_back(ProbeMsg{ProbeTag{ProcessId{0xFFFFFFFF}, ~0ULL}});
  msgs.emplace_back(ProbeMsg{ProbeTag{ProcessId{7}, 123456}});
  msgs.emplace_back(WfgdMsg{});
  msgs.emplace_back(
      WfgdMsg{{graph::Edge{ProcessId{1}, ProcessId{2}},
               graph::Edge{ProcessId{2}, ProcessId{1}}}});
  WfgdMsg big;
  for (std::uint32_t i = 0; i < 100; ++i) {
    big.edges.push_back(graph::Edge{ProcessId{i}, ProcessId{i + 1}});
  }
  msgs.emplace_back(std::move(big));
  return msgs;
}

TEST(CodecEquivalence, SmallFramesMatchGenericEncoder) {
  const RequestMsg request;
  const ReplyMsg reply;
  const ProbeMsg probe{ProbeTag{ProcessId{42}, 0xDEADBEEFCAFEULL}};

  const auto check = [](const SmallFrame& frame, const Message& msg) {
    const Bytes generic = encode(msg);
    ASSERT_EQ(frame.size(), generic.size());
    EXPECT_TRUE(std::equal(frame.data(), frame.data() + frame.size(),
                           generic.begin()));
  };
  check(encode_small(request), Message{request});
  check(encode_small(reply), Message{reply});
  check(encode_small(probe), Message{probe});
}

TEST(CodecEquivalence, EncodeIntoMatchesEncodeAndReusesCapacity) {
  Bytes scratch;
  for (const Message& msg : sample_messages()) {
    encode_into(msg, scratch);
    EXPECT_EQ(scratch, encode(msg));
  }
  // A big frame followed by a small one: the buffer shrinks logically but
  // keeps its capacity, so repeated small encodes never reallocate.
  const std::size_t cap = scratch.capacity();
  encode_into(Message{ProbeMsg{ProbeTag{ProcessId{1}, 2}}}, scratch);
  EXPECT_GE(cap, scratch.size());
  EXPECT_GE(scratch.capacity(), cap);
}

TEST(CodecRoundTrip, AllMessageTypes) {
  for (const Message& msg : sample_messages()) {
    const Bytes bytes = encode(msg);
    const auto decoded = decode(bytes);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded->index(), msg.index());
    if (const auto* probe = std::get_if<ProbeMsg>(&msg)) {
      EXPECT_EQ(std::get<ProbeMsg>(*decoded).tag, probe->tag);
    } else if (const auto* wfgd = std::get_if<WfgdMsg>(&msg)) {
      EXPECT_EQ(std::get<WfgdMsg>(*decoded).edges, wfgd->edges);
    }
  }
}

TEST(CodecTruncation, EveryProperPrefixRejected) {
  for (const Message& msg : sample_messages()) {
    const Bytes bytes = encode(msg);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      const auto r = decode(BytesView(bytes.data(), cut));
      EXPECT_FALSE(r.ok()) << "prefix of " << cut << '/' << bytes.size();
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(CodecTruncation, TrailingGarbageStillDecodes) {
  // The codecs are length-framed by the transport; bytes beyond a complete
  // frame are the next frame's problem, not an error here.
  Bytes bytes = encode(Message{ProbeMsg{ProbeTag{ProcessId{3}, 9}}});
  bytes.push_back(0x55);
  EXPECT_TRUE(decode(bytes).ok());
}

TEST(OrCodecEquivalence, SmallFramesMatchGenericEncoder) {
  const std::vector<OrMessage> msgs{
      OrMessage{OrSignalMsg{}},
      OrMessage{OrQueryMsg{ProbeTag{ProcessId{5}, 77}}},
      OrMessage{OrReplyMsg{ProbeTag{ProcessId{0xFFFFFFFF}, ~0ULL}}},
  };
  for (const OrMessage& msg : msgs) {
    const OrFrame frame = or_encode_small(msg);
    const Bytes generic = or_encode(msg);
    ASSERT_EQ(frame.size(), generic.size());
    EXPECT_TRUE(std::equal(frame.data(), frame.data() + frame.size(),
                           generic.begin()));
    const auto decoded = or_decode(generic);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->index(), msg.index());
  }
}

TEST(OrCodecTruncation, EveryProperPrefixRejected) {
  const Bytes bytes =
      or_encode(OrMessage{OrQueryMsg{ProbeTag{ProcessId{5}, 77}}});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const auto r = or_decode(BytesView(bytes.data(), cut));
    EXPECT_FALSE(r.ok()) << "prefix of " << cut;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace cmh::core
