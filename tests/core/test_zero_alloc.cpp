// Allocation accounting for the steady-state hot paths.  The overhaul's
// contract: once warmed up, probe encode/handle/forward at a process and
// message traffic through the simulator perform ZERO heap allocations.
// A counting global operator new makes that an assertable property instead
// of a benchmark anecdote.  (The override is binary-wide but only counts;
// it delegates to malloc/free.)
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "core/basic_process.h"
#include "core/messages.h"
#include "sim/simulator.h"

namespace {
// Not atomic: every test in this binary is single-threaded, and the net
// transports are not exercised here.
std::size_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_alloc_count;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) { return ::operator new(n); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cmh::core {
namespace {

TEST(ZeroAlloc, SteadyStateProbeEncodeHandleForward) {
  Options options;
  options.initiation = InitiationMode::kManual;
  std::uint64_t sink = 0;
  BasicProcess p(
      ProcessId{1}, [&sink](ProcessId, BytesView b) { sink += b.size(); },
      options);
  p.send_request(ProcessId{2});  // outgoing edge: probes will forward
  ASSERT_TRUE(
      p.on_message(ProcessId{0}, encode(Message{RequestMsg{}})).ok());

  // Warm-up: first probe of an initiator creates its computation record.
  std::uint64_t seq = 0;
  for (int i = 0; i < 16; ++i) {
    const SmallFrame probe =
        encode_small(ProbeMsg{ProbeTag{ProcessId{0}, ++seq}});
    ASSERT_TRUE(p.on_message(ProcessId{0}, probe.view()).ok());
  }

  // Measured phase: every probe is meaningful, starts a fresh computation
  // sequence, and forwards along the outgoing edge -- the full detection
  // hot path.  (No gtest macros inside: their success paths may allocate.)
  const std::size_t before = g_alloc_count;
  bool all_ok = true;
  for (int i = 0; i < 10000; ++i) {
    const SmallFrame probe =
        encode_small(ProbeMsg{ProbeTag{ProcessId{0}, ++seq}});
    all_ok &= p.on_message(ProcessId{0}, probe.view()).ok();
  }
  const std::size_t allocations = g_alloc_count - before;

  EXPECT_TRUE(all_ok);
  EXPECT_EQ(allocations, 0u);
  EXPECT_EQ(p.stats().probes_received, 10016u);
  EXPECT_GT(sink, 0u);
}

TEST(ZeroAlloc, SteadyStateSimulatorTraffic) {
  sim::Simulator sim(7, sim::DelayModel::fixed(SimTime::us(10)));
  int remaining = 4000;
  const sim::NodeId a = sim.add_node({});
  const sim::NodeId b = sim.add_node({});
  const auto forward = [&sim, &remaining, a, b](sim::NodeId from,
                                                const Bytes& payload) {
    if (remaining-- > 0) sim.send(from == a ? b : a, from, payload);
  };
  sim.set_handler(a, forward);
  sim.set_handler(b, forward);
  const SmallFrame probe = encode_small(ProbeMsg{ProbeTag{ProcessId{0}, 1}});
  sim.send(a, b, probe.view());

  // Warm-up: slab, queue, channel matrix and buffer pool reach capacity.
  (void)sim.run_batch(1000);

  // Measured phase: pure pooled recycling -- pop, deliver, re-send.
  const std::size_t before = g_alloc_count;
  const std::size_t processed = sim.run_batch(2000);
  const std::size_t allocations = g_alloc_count - before;

  EXPECT_EQ(processed, 2000u);
  EXPECT_EQ(allocations, 0u);
  EXPECT_GE(sim.stats().messages_delivered, 3000u);
}

}  // namespace
}  // namespace cmh::core
