#include "core/messages.h"

#include <gtest/gtest.h>

namespace cmh::core {
namespace {

TEST(CoreMessages, RequestRoundTrip) {
  const Bytes b = encode(Message{RequestMsg{}});
  const auto m = decode(b);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(std::holds_alternative<RequestMsg>(*m));
}

TEST(CoreMessages, ReplyRoundTrip) {
  const auto m = decode(encode(Message{ReplyMsg{}}));
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(std::holds_alternative<ReplyMsg>(*m));
}

TEST(CoreMessages, ProbeRoundTrip) {
  const ProbeMsg probe{ProbeTag{ProcessId{17}, 0xabcdef0123ULL}};
  const auto m = decode(encode(Message{probe}));
  ASSERT_TRUE(m.ok());
  const auto* p = std::get_if<ProbeMsg>(&*m);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->tag, probe.tag);
}

TEST(CoreMessages, WfgdRoundTripEmpty) {
  const auto m = decode(encode(Message{WfgdMsg{}}));
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(std::get<WfgdMsg>(*m).edges.empty());
}

TEST(CoreMessages, WfgdRoundTripEdges) {
  WfgdMsg msg;
  msg.edges.push_back(graph::Edge{ProcessId{1}, ProcessId{2}});
  msg.edges.push_back(graph::Edge{ProcessId{3}, ProcessId{4}});
  const auto m = decode(encode(Message{msg}));
  ASSERT_TRUE(m.ok());
  const auto& got = std::get<WfgdMsg>(*m);
  ASSERT_EQ(got.edges.size(), 2u);
  EXPECT_EQ(got.edges[0], (graph::Edge{ProcessId{1}, ProcessId{2}}));
  EXPECT_EQ(got.edges[1], (graph::Edge{ProcessId{3}, ProcessId{4}}));
}

TEST(CoreMessages, EmptyPayloadRejected) {
  EXPECT_FALSE(decode(Bytes{}).ok());
}

TEST(CoreMessages, UnknownTypeRejected) {
  EXPECT_FALSE(decode(Bytes{0xee}).ok());
}

TEST(CoreMessages, TruncatedProbeRejected) {
  Bytes b = encode(Message{ProbeMsg{ProbeTag{ProcessId{1}, 2}}});
  b.resize(b.size() - 1);
  EXPECT_FALSE(decode(b).ok());
}

TEST(CoreMessages, WfgdCountOverflowRejected) {
  // Claims 2^31 edges but supplies none.
  Writer w;
  w.u8(4);  // kWfgd
  w.u32(0x80000000u);
  EXPECT_FALSE(decode(w.bytes()).ok());
}

TEST(CoreMessages, TrailingGarbageTolerated) {
  // Decoders read what they need; extra bytes are ignored by design (a
  // framing layer owns exact lengths).
  Bytes b = encode(Message{RequestMsg{}});
  b.push_back(0xff);
  EXPECT_TRUE(decode(b).ok());
}

}  // namespace
}  // namespace cmh::core
