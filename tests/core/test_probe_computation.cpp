// Probe-computation tests on the simulator-hosted cluster: end-to-end
// detection with realistic message delays, checked against the global
// oracle maintained by SimCluster.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "runtime/sim_cluster.h"
#include "runtime/workload.h"

namespace cmh {
namespace {

using graph::Scenario;
using runtime::SimCluster;

core::Options manual_opts() {
  core::Options o;
  o.initiation = core::InitiationMode::kManual;
  return o;
}

// ---- planted rings, parameterized over size ------------------------------------

struct RingCase {
  std::uint32_t n;
  std::uint32_t len;
  std::uint64_t seed;
};

class SimRingTest : public ::testing::TestWithParam<RingCase> {};

TEST_P(SimRingTest, OnRequestModeDetectsPlantedRing) {
  const auto [n, len, seed] = GetParam();
  SimCluster cluster(n, core::Options{}, seed);
  runtime::issue_scenario(cluster, graph::make_ring(n, len));
  ASSERT_TRUE(cluster.run_until_detection());
  // detections() returns a snapshot by value; copy the element rather than
  // binding a reference into the temporary vector.
  const auto d = cluster.detections().front();
  // QRP2 against the oracle at (or after) declaration: the declarer is
  // genuinely on a dark cycle.
  EXPECT_TRUE(cluster.oracle().on_dark_cycle(d.process));
  EXPECT_LT(d.process.value(), len);
}

TEST_P(SimRingTest, EveryDeclarationIsSound) {
  const auto [n, len, seed] = GetParam();
  SimCluster cluster(n, core::Options{}, seed);
  cluster.set_detection_callback([&](const runtime::DeadlockEvent& e) {
    // Checked at the declaration instant (QRP2, literally).
    EXPECT_TRUE(cluster.oracle().on_dark_cycle(e.process))
        << e.process << " declared without being on a dark cycle";
  });
  runtime::issue_scenario(cluster, graph::make_ring(n, len));
  cluster.run();
  EXPECT_FALSE(cluster.detections().empty());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimRingTest,
    ::testing::Values(RingCase{2, 2, 1}, RingCase{4, 3, 2}, RingCase{8, 8, 3},
                      RingCase{32, 16, 4}, RingCase{64, 64, 5},
                      RingCase{128, 5, 6}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_L" +
             std::to_string(info.param.len);
    });

// ---- soundness on deadlock-free workloads ----------------------------------------

class AcyclicSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AcyclicSeedTest, NoFalseDeadlockOnAcyclicWaits) {
  SimCluster cluster(30, core::Options{}, GetParam());
  runtime::issue_scenario(cluster,
                          graph::make_acyclic(30, 60, GetParam() * 7 + 1));
  cluster.run();
  EXPECT_TRUE(cluster.detections().empty());
  EXPECT_TRUE(cluster.oracle().deadlocked_vertices().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcyclicSeedTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---- ring with tails: only cycle members declare ---------------------------------

TEST(SimProbe, TailsNeverDeclare) {
  SimCluster cluster(40, core::Options{}, 11);
  runtime::issue_scenario(cluster, graph::make_ring_with_tails(40, 6, 25, 3));
  cluster.run();
  ASSERT_FALSE(cluster.detections().empty());
  for (const auto& d : cluster.detections()) {
    EXPECT_LT(d.process.value(), 6u) << "tail vertex declared deadlock";
  }
}

// ---- manual initiation ----------------------------------------------------------

TEST(SimProbe, ManualModeSilentWithoutInitiate) {
  SimCluster cluster(8, manual_opts(), 1);
  runtime::issue_scenario(cluster, graph::make_ring(8, 8));
  cluster.run();
  EXPECT_TRUE(cluster.detections().empty());  // nobody probed
  EXPECT_EQ(cluster.oracle().deadlocked_vertices().size(), 8u);
}

TEST(SimProbe, ManualInitiateAfterWedgeDetects) {
  SimCluster cluster(8, manual_opts(), 1);
  runtime::issue_scenario(cluster, graph::make_ring(8, 8));
  cluster.run();  // wedge fully forms; all edges black
  ASSERT_TRUE(cluster.process(ProcessId{3}).initiate().has_value());
  cluster.run();
  ASSERT_EQ(cluster.detections().size(), 1u);
  EXPECT_EQ(cluster.detections()[0].process, ProcessId{3});
  EXPECT_EQ(cluster.detections()[0].tag.initiator, ProcessId{3});
}

TEST(SimProbe, ProbeCountBoundedByN) {
  // Section 4.3: at most N probes per computation (one per edge out of each
  // vertex, each vertex forwards once).
  for (const std::uint32_t len : {4u, 16u, 64u}) {
    SimCluster cluster(len, manual_opts(), 9);
    runtime::issue_scenario(cluster, graph::make_ring(len, len));
    cluster.run();
    ASSERT_TRUE(cluster.process(ProcessId{0}).initiate().has_value());
    cluster.run();
    const auto stats = cluster.total_stats();
    EXPECT_LE(stats.probes_sent, len);
    EXPECT_EQ(stats.deadlocks_declared, 1u);
  }
}

TEST(SimProbe, OffCycleInitiatorDoesNotDeclare) {
  // Initiator waits on a cycle but is not part of it (QRP2: it must not
  // declare itself deadlocked; the probe dies at the cycle since everyone
  // there forwards at most once and the path never returns to the tail).
  SimCluster cluster(4, manual_opts(), 2);
  // 0 -> 1 -> 2 -> 1 (cycle 1<->2... build: 1->2, 2->1, 0->1)
  cluster.request(ProcessId{1}, ProcessId{2});
  cluster.request(ProcessId{2}, ProcessId{1});
  cluster.request(ProcessId{0}, ProcessId{1});
  cluster.run();
  ASSERT_TRUE(cluster.process(ProcessId{0}).initiate().has_value());
  cluster.run();
  EXPECT_TRUE(cluster.detections().empty());
  EXPECT_FALSE(cluster.process(ProcessId{0}).declared_deadlock());
}

// ---- delayed (timer-T) initiation -------------------------------------------------

TEST(DelayedInitiation, TransientWaitAvoidsProbeComputation) {
  core::Options o;
  o.initiation = core::InitiationMode::kDelayed;
  o.initiation_delay = SimTime::ms(10);
  SimCluster cluster(2, o, 3);
  // p0 requests p1; p1 replies quickly -- before T elapses.
  cluster.request(ProcessId{0}, ProcessId{1});
  cluster.simulator().run_until(SimTime::ms(2));
  cluster.reply(ProcessId{1}, ProcessId{0});
  cluster.run();
  EXPECT_EQ(cluster.total_stats().computations_initiated, 0u);
  EXPECT_TRUE(cluster.detections().empty());
}

TEST(DelayedInitiation, PersistentEdgeTriggersComputation) {
  core::Options o;
  o.initiation = core::InitiationMode::kDelayed;
  o.initiation_delay = SimTime::ms(10);
  SimCluster cluster(2, o, 3);
  cluster.request(ProcessId{0}, ProcessId{1});
  cluster.request(ProcessId{1}, ProcessId{0});
  ASSERT_TRUE(cluster.run_until_detection());
  // Detection cannot precede T (the latency floor of section 4.3).
  EXPECT_GE(cluster.detections()[0].at, SimTime::ms(10));
}

TEST(DelayedInitiation, RecreatedEdgeRestartsClock) {
  core::Options o;
  o.initiation = core::InitiationMode::kDelayed;
  o.initiation_delay = SimTime::ms(10);
  SimCluster cluster(3, o, 3);
  // Edge (0,1) lives [0, 5ms) then is replaced by (0,2) -- neither edge
  // exists continuously for 10ms, so no computation starts.
  cluster.request(ProcessId{0}, ProcessId{1});
  cluster.simulator().run_until(SimTime::ms(5));
  cluster.reply(ProcessId{1}, ProcessId{0});
  cluster.simulator().run_until(SimTime::ms(8));
  cluster.request(ProcessId{0}, ProcessId{2});
  cluster.simulator().run_until(SimTime::ms(15));
  cluster.reply(ProcessId{2}, ProcessId{0});
  cluster.run();
  EXPECT_EQ(cluster.total_stats().computations_initiated, 0u);
}

// ---- random workload smoke test ----------------------------------------------------

TEST(Workload, RunsToQuiescenceAndOracleAgrees) {
  SimCluster cluster(12, core::Options{}, 21);
  runtime::RandomWorkload workload(
      cluster, runtime::WorkloadConfig{.issue_until = SimTime::ms(20)}, 22);
  workload.start();
  cluster.run();
  // At quiescence: either no deadlock anywhere and no detections, or a
  // dark cycle exists and at least one of its members declared.
  const auto deadlocked = cluster.oracle().deadlocked_vertices();
  if (deadlocked.empty()) {
    EXPECT_TRUE(cluster.detections().empty());
    EXPECT_FALSE(workload.first_deadlock_at().has_value());
  } else {
    EXPECT_FALSE(cluster.detections().empty());
    EXPECT_TRUE(workload.first_deadlock_at().has_value());
  }
}

}  // namespace
}  // namespace cmh
