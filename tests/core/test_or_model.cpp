// OR-model (communication model) extension: codec, state machine, and
// end-to-end detection on the simulator, checked against the reachability
// oracle.
#include "core/or_model.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "runtime/or_cluster.h"

namespace cmh {
namespace {

using core::OrMessage;
using core::OrQueryMsg;
using core::OrReplyMsg;
using core::OrSignalMsg;
using runtime::OrCluster;

const ProcessId p0{0};
const ProcessId p1{1};
const ProcessId p2{2};
const ProcessId p3{3};

// ---- codec -----------------------------------------------------------------------

TEST(OrCodec, SignalRoundTrip) {
  const auto m = core::or_decode(core::or_encode(OrMessage{OrSignalMsg{}}));
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(std::holds_alternative<OrSignalMsg>(*m));
}

TEST(OrCodec, QueryRoundTrip) {
  const OrQueryMsg q{ProbeTag{ProcessId{9}, 77}};
  const auto m = core::or_decode(core::or_encode(OrMessage{q}));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(std::get<OrQueryMsg>(*m).tag, q.tag);
}

TEST(OrCodec, ReplyRoundTrip) {
  const OrReplyMsg r{ProbeTag{ProcessId{3}, 5}};
  const auto m = core::or_decode(core::or_encode(OrMessage{r}));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(std::get<OrReplyMsg>(*m).tag, r.tag);
}

TEST(OrCodec, GarbageRejected) {
  EXPECT_FALSE(core::or_decode(Bytes{}).ok());
  EXPECT_FALSE(core::or_decode(Bytes{0x42}).ok());
}

// ---- local state machine ------------------------------------------------------------

TEST(OrProcess, BlockAndSignalLifecycle) {
  OrCluster cluster(2);
  EXPECT_FALSE(cluster.process(p0).blocked());
  cluster.block(p0, {p1});
  EXPECT_TRUE(cluster.process(p0).blocked());
  cluster.signal(p1, p0);
  cluster.run();
  EXPECT_FALSE(cluster.process(p0).blocked());
}

TEST(OrProcess, DoubleBlockRejected) {
  OrCluster cluster(2);
  cluster.block(p0, {p1});
  EXPECT_THROW(cluster.block(p0, {p1}), std::logic_error);
}

TEST(OrProcess, EmptyDependentSetRejected) {
  OrCluster cluster(2);
  EXPECT_THROW(cluster.block(p0, {}), std::invalid_argument);
}

TEST(OrProcess, SelfDependenceRejected) {
  OrCluster cluster(2);
  EXPECT_THROW(cluster.block(p0, {p0, p1}), std::invalid_argument);
}

TEST(OrProcess, BlockedProcessCannotSignal) {
  OrCluster cluster(2);
  cluster.block(p0, {p1});
  EXPECT_THROW(cluster.signal(p0, p1), std::logic_error);
}

TEST(OrProcess, ActiveProcessCannotInitiate) {
  OrCluster cluster(2);
  EXPECT_EQ(cluster.process(p0).initiate(), std::nullopt);
}

// ---- detection: OR semantics ---------------------------------------------------------

TEST(OrDetection, CycleOfSingletonWaitsIsDeadlock) {
  // p0 -> p1 -> p2 -> p0 with singleton sets: OR degenerates to AND.
  OrCluster cluster(3);
  cluster.block(p0, {p1});
  cluster.block(p1, {p2});
  cluster.block(p2, {p0});
  cluster.run();
  ASSERT_FALSE(cluster.detections().empty());
  EXPECT_TRUE(cluster.oracle_deadlocked(cluster.detections()[0].process));
}

TEST(OrDetection, OneActiveHelperPreventsDeadlock) {
  // p0 waits on {p1, p2}; p1 waits back on p0, but p2 stays ACTIVE: p0 can
  // still be saved, so no declaration may happen.
  OrCluster cluster(3);
  cluster.block(p1, {p0});
  cluster.block(p0, {p1, p2});
  cluster.run();
  EXPECT_TRUE(cluster.detections().empty());
  EXPECT_FALSE(cluster.oracle_deadlocked(p0));
  // ... and indeed p2 can release everyone.
  cluster.signal(p2, p0);
  cluster.run();
  EXPECT_FALSE(cluster.process(p0).blocked());
}

TEST(OrDetection, AllHelpersBlockedIsDeadlock) {
  // Same shape, but p2 also wedges into the group: now it IS a deadlock.
  OrCluster cluster(3);
  cluster.block(p1, {p0});
  cluster.block(p2, {p1});
  cluster.block(p0, {p1, p2});
  cluster.run();
  ASSERT_FALSE(cluster.detections().empty());
  for (const ProcessId p : {p0, p1, p2}) {
    EXPECT_TRUE(cluster.oracle_deadlocked(p)) << p;
  }
}

TEST(OrDetection, ChainToActiveProcessIsNotDeadlock) {
  OrCluster cluster(4);
  cluster.block(p0, {p1});
  cluster.block(p1, {p2});
  cluster.block(p2, {p3});  // p3 active
  cluster.run();
  EXPECT_TRUE(cluster.detections().empty());
}

TEST(OrDetection, DiamondKnotDetected) {
  // p0 -> {p1, p2}; p1 -> {p3}; p2 -> {p3}; p3 -> {p0}: every escape path
  // loops back; a knot.
  OrCluster cluster(4);
  cluster.block(p1, {p3});
  cluster.block(p2, {p3});
  cluster.block(p3, {p0});
  cluster.block(p0, {p1, p2});
  cluster.run();
  ASSERT_FALSE(cluster.detections().empty());
  EXPECT_TRUE(cluster.oracle_deadlocked(p0));
}

TEST(OrDetection, LateBlockerTriggersDetectionOnItsOwnInitiation) {
  // The wedge completes only when p2 blocks; p2's own initiation at block
  // time must find it (earlier computations rightly starved).
  OrCluster cluster(3);
  cluster.block(p0, {p1});
  cluster.block(p1, {p2});
  cluster.run();
  EXPECT_TRUE(cluster.detections().empty());
  cluster.block(p2, {p0});
  cluster.run();
  EXPECT_FALSE(cluster.detections().empty());
}

TEST(OrDetection, SignalRaceDoesNotProducePhantom) {
  // p2 blocks on p0 and is then signalled free by p3; queries of stale
  // engagements must not certify p2 as permanently blocked.
  OrCluster cluster(4, 7);
  cluster.set_detection_callback([&](const runtime::OrDetection& d) {
    EXPECT_TRUE(cluster.oracle_deadlocked(d.process))
        << d.process << " declared but oracle disagrees";
  });
  cluster.block(p0, {p1});
  cluster.block(p1, {p2});
  cluster.block(p2, {p0, p3});
  cluster.signal(p3, p2);  // p2 released while queries circulate
  cluster.run();
  // p2 is free; p0 and p1 wait into p2 (now active): nobody is deadlocked.
  EXPECT_FALSE(cluster.process(p2).blocked());
  EXPECT_TRUE(cluster.detections().empty());
}

TEST(OrDetection, ReblockedProcessDoesNotSatisfyOldWave) {
  // p2 is released and re-blocks; replies tied to its old wait epoch must
  // be void (the "continuously blocked" condition).
  OrCluster cluster(4, 9);
  cluster.set_detection_callback([&](const runtime::OrDetection& d) {
    EXPECT_TRUE(cluster.oracle_deadlocked(d.process));
  });
  cluster.block(p0, {p1});
  cluster.block(p1, {p2});
  cluster.block(p2, {p0});  // would be a cycle...
  cluster.signal(p3, p2);   // ...but p2 escapes
  cluster.run();
  EXPECT_TRUE(cluster.detections().empty());
  // p2 re-blocks on the (still active) p3: no deadlock either.
  cluster.block(p2, {p3});
  cluster.run();
  EXPECT_TRUE(cluster.detections().empty());
  EXPECT_FALSE(cluster.oracle_deadlocked(p0));
}

// ---- randomized property sweep --------------------------------------------------------

class OrProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrProperties, SoundAndCompleteOnRandomWaitStructures) {
  Rng rng(GetParam());
  OrCluster cluster(10, GetParam() * 3 + 1);
  cluster.set_detection_callback([&](const runtime::OrDetection& d) {
    EXPECT_TRUE(cluster.oracle_deadlocked(d.process))
        << d.process << " declared; oracle disagrees (seed " << GetParam()
        << ")";
  });
  // Random blocking structure built sequentially (each block sees the sim
  // settle first, so declarations are checked against a stable oracle).
  for (std::uint32_t i = 0; i < 10; ++i) {
    if (rng.chance(0.3)) continue;  // leave some processes active
    std::set<ProcessId> deps;
    const std::uint32_t fan = 1 + static_cast<std::uint32_t>(rng.below(3));
    while (deps.size() < fan) {
      const ProcessId d{static_cast<std::uint32_t>(rng.below(10))};
      if (d != ProcessId{i}) deps.insert(d);
    }
    cluster.block(ProcessId{i}, deps);
    cluster.run();
  }
  // Completeness: every oracle-deadlocked process belongs to a wedge that
  // produced at least one declaration.
  const auto dead = cluster.oracle_deadlocked_set();
  if (!dead.empty()) {
    EXPECT_FALSE(cluster.detections().empty())
        << dead.size() << " processes deadlocked, none declared (seed "
        << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrProperties,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

// ---- stats -----------------------------------------------------------------------------

TEST(OrStats, CountersTrackTraffic) {
  OrCluster cluster(3);
  cluster.block(p0, {p1});
  cluster.block(p1, {p2});
  cluster.block(p2, {p0});
  cluster.run();
  const auto stats = cluster.total_stats();
  EXPECT_GT(stats.queries_sent, 0u);
  EXPECT_EQ(stats.queries_sent, stats.queries_received);
  EXPECT_GT(stats.replies_sent, 0u);
  EXPECT_GT(stats.computations_initiated, 0u);
  EXPECT_GE(stats.deadlocks_declared, 1u);
}

}  // namespace
}  // namespace cmh
