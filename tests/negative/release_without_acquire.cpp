// Negative-compile case: releasing a mutex the caller never acquired.  Must
// be rejected by -Wthread-safety.  (The manual unlock() is the point of the
// test; the repo lint would otherwise ban it.)
// expect: releasing mutex 'mu' that was not held
#include "common/sync.h"

namespace {

void broken_release(cmh::Mutex& mu) {
  mu.unlock();  // lint:allow(raw-sync)
}

}  // namespace

int main() {
  cmh::Mutex mu;
  broken_release(mu);
}
