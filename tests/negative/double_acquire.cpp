// Negative-compile case: acquiring a mutex that is already held (self
// deadlock on the non-recursive Mutex).  Must be rejected by -Wthread-safety.
// expect: acquiring mutex 'mu' that is already held
#include "common/sync.h"

int main() {
  cmh::Mutex mu;
  const cmh::MutexLock outer(mu);
  const cmh::MutexLock inner(mu);  // second acquisition of the same capability
}
