#!/usr/bin/env python3
"""Negative-compile driver for the thread-safety annotation suite.

Each case file in this directory declares its own verdict in a header
comment:

  // expect: <regex>   compilation must FAIL and stderr must match <regex>
  // expect-clean      compilation must SUCCEED with no diagnostics

Cases are compiled with Clang's analysis turned all the way up
(-fsyntax-only -Wthread-safety -Wthread-safety-beta -Werror), mirroring the
CI thread-safety job.  A negative case that *compiles* means the annotation
it exercises has stopped biting -- the suite exists to catch exactly that
regression.

Usage: check_thread_safety.py --compiler clang++ --include SRC_DIR CASE...
Exit status: 0 all cases behave as declared, 1 otherwise.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import subprocess
import sys

EXPECT_RE = re.compile(r"^//\s*expect:\s*(.+?)\s*$", re.MULTILINE)
EXPECT_CLEAN_RE = re.compile(r"^//\s*expect-clean\s*$", re.MULTILINE)

FLAGS = [
    "-std=c++20",
    "-fsyntax-only",
    "-Wthread-safety",
    "-Wthread-safety-beta",
    "-Werror",
]


def run_case(compiler: str, include: str, case: pathlib.Path) -> str | None:
    """Returns None on success, else a failure description."""
    text = case.read_text(encoding="utf-8")
    expect = EXPECT_RE.search(text)
    clean = EXPECT_CLEAN_RE.search(text)
    if bool(expect) == bool(clean):
        return "case must declare exactly one of '// expect:' / '// expect-clean'"

    proc = subprocess.run(
        [compiler, *FLAGS, "-I", include, str(case)],
        capture_output=True, text=True)
    diagnostics = proc.stderr.strip()

    if clean:
        if proc.returncode != 0:
            return f"expected clean compile, got:\n{diagnostics}"
        return None

    pattern = expect.group(1)
    if proc.returncode == 0:
        return (f"expected compile failure matching /{pattern}/, "
                "but the case compiled -- the annotation no longer bites")
    if not re.search(pattern, diagnostics):
        return (f"compile failed, but not with /{pattern}/; stderr was:\n"
                f"{diagnostics}")
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compiler", required=True,
                        help="Clang-family C++ compiler to test with")
    parser.add_argument("--include", required=True,
                        help="include root holding common/sync.h")
    parser.add_argument("cases", nargs="+", type=pathlib.Path)
    args = parser.parse_args()

    failures = 0
    for case in args.cases:
        error = run_case(args.compiler, args.include, case)
        if error is None:
            print(f"PASS {case.name}")
        else:
            failures += 1
            print(f"FAIL {case.name}: {error}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
