// Negative-compile case: writing a CMH_GUARDED_BY field without holding the
// guarding mutex.  Must be rejected by -Wthread-safety.
// expect: writing variable 'value_' requires holding mutex 'mu_' exclusively
#include "common/sync.h"

namespace {

class Counter {
 public:
  void broken_increment() { ++value_; }  // no lock held

 private:
  cmh::Mutex mu_;
  int value_ CMH_GUARDED_BY(mu_){0};
};

}  // namespace

int main() {
  Counter c;
  c.broken_increment();
}
