// Negative-compile case: calling a CMH_REQUIRES function without holding the
// required mutex.  Must be rejected by -Wthread-safety.
// expect: calling function 'bump_locked' requires holding mutex 'mu_' exclusively
#include "common/sync.h"

namespace {

class Counter {
 public:
  void bump_locked() CMH_REQUIRES(mu_) { ++value_; }

  void broken_bump() { bump_locked(); }  // capability never acquired

 private:
  cmh::Mutex mu_;
  int value_ CMH_GUARDED_BY(mu_){0};
};

}  // namespace

int main() {
  Counter c;
  c.broken_bump();
}
