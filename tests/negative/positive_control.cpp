// Positive control: disciplined use of every primitive the negative cases
// abuse.  Must compile *clean* under the exact flags the negative cases fail
// under -- proving those failures come from the defects, not the harness.
// expect-clean
#include "common/sync.h"

namespace {

class Channel {
 public:
  void push(int v) {
    const cmh::MutexLock lock(mu_);
    value_ = v;
    has_value_ = true;
    cv_.notify_all();
  }

  int pop() {
    const cmh::MutexLock lock(mu_);
    cv_.wait(mu_, [this] {
      mu_.assert_held();  // held by CondVar::wait's contract
      return has_value_;
    });
    has_value_ = false;
    return value_;
  }

  void clear_locked() CMH_REQUIRES(mu_) { has_value_ = false; }

  void clear() CMH_EXCLUDES(mu_) {
    const cmh::MutexLock lock(mu_);
    clear_locked();
  }

 private:
  cmh::Mutex mu_;
  cmh::CondVar cv_;
  int value_ CMH_GUARDED_BY(mu_){0};
  bool has_value_ CMH_GUARDED_BY(mu_){false};
};

}  // namespace

int main() {
  Channel ch;
  ch.push(42);
  const int got = ch.pop();
  ch.clear();
  return got == 42 ? 0 : 1;
}
