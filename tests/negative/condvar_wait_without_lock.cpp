// Negative-compile case: waiting on a CondVar without holding the guarding
// mutex.  CondVar::wait carries CMH_REQUIRES(mu), so this must be rejected.
// expect: calling function 'wait' requires holding mutex 'mu_' exclusively
#include "common/sync.h"

namespace {

class Queue {
 public:
  void broken_wait() { cv_.wait(mu_); }  // mutex never taken

 private:
  cmh::Mutex mu_;
  cmh::CondVar cv_;
};

}  // namespace

int main() {
  Queue q;
  q.broken_wait();
}
