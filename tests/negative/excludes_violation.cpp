// Negative-compile case: calling a CMH_EXCLUDES function while holding the
// excluded mutex (would self-deadlock at runtime).  Must be rejected by
// -Wthread-safety.
// expect: cannot call function 'reacquire' while mutex 'mu_' is held
#include "common/sync.h"

namespace {

class Widget {
 public:
  void reacquire() CMH_EXCLUDES(mu_) { const cmh::MutexLock lock(mu_); }

  void broken_nested_call() {
    const cmh::MutexLock lock(mu_);
    reacquire();  // takes mu_ again underneath us
  }

 private:
  cmh::Mutex mu_;
};

}  // namespace

int main() {
  Widget w;
  w.broken_nested_call();
}
