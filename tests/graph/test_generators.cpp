#include "graph/generators.h"

#include <gtest/gtest.h>

namespace cmh::graph {
namespace {

// ---- make_ring ----------------------------------------------------------------

struct RingParam {
  std::uint32_t n;
  std::uint32_t cycle_len;
};

class RingTest : public ::testing::TestWithParam<RingParam> {};

TEST_P(RingTest, ProducesExactDarkCycle) {
  const auto [n, len] = GetParam();
  const Scenario s = make_ring(n, len);
  EXPECT_EQ(s.n_processes, n);
  EXPECT_EQ(s.planted_cycle.size(), len);
  const WaitForGraph g = replay(s, s.script.size());
  EXPECT_EQ(g.edge_count(), len);
  for (const ProcessId v : s.planted_cycle) {
    EXPECT_TRUE(g.on_dark_cycle(v)) << v;
  }
  EXPECT_EQ(g.deadlocked_vertices().size(), len);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RingTest,
                         ::testing::Values(RingParam{2, 2}, RingParam{3, 2},
                                           RingParam{3, 3}, RingParam{8, 5},
                                           RingParam{32, 32},
                                           RingParam{100, 64}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "_L" +
                                  std::to_string(info.param.cycle_len);
                         });

TEST(MakeRing, RejectsDegenerateParams) {
  EXPECT_THROW(make_ring(4, 1), std::invalid_argument);
  EXPECT_THROW(make_ring(4, 5), std::invalid_argument);
}

TEST(MakeRing, AllEdgesBlackAfterReplay) {
  const Scenario s = make_ring(5, 5);
  const WaitForGraph g = replay(s, s.script.size());
  EXPECT_EQ(g.edges(EdgeColor::kBlack).size(), 5u);
}

// ---- make_disjoint_rings --------------------------------------------------------

TEST(MakeDisjointRings, RejectsDegenerateParams) {
  EXPECT_THROW(make_disjoint_rings(8, 1), std::invalid_argument);
  EXPECT_THROW(make_disjoint_rings(4, 5), std::invalid_argument);
}

TEST(MakeDisjointRings, EveryBlockIsAnIndependentDarkCycle) {
  const Scenario s = make_disjoint_rings(22, 4);  // 5 rings + 2 idle ids
  const WaitForGraph g = replay(s, s.script.size());
  EXPECT_EQ(s.planted_cycle.size(), 5u);
  EXPECT_EQ(g.edges(EdgeColor::kBlack).size(), 20u);
  EXPECT_EQ(g.deadlocked_vertices().size(), 20u);
  for (std::uint32_t j = 0; j < 5; ++j) {
    EXPECT_EQ(s.planted_cycle[j], ProcessId{j * 4});
    for (std::uint32_t i = 0; i < 4; ++i) {
      EXPECT_TRUE(g.on_dark_cycle(ProcessId{j * 4 + i}));
      // Edges stay inside the block: contiguous blocks are what keep the
      // rings shard-local on the parallel simulation engine.
      EXPECT_TRUE(g.has_edge(ProcessId{j * 4 + i},
                             ProcessId{j * 4 + (i + 1) % 4}));
    }
  }
  EXPECT_FALSE(g.on_dark_cycle(ProcessId{20}));
  EXPECT_FALSE(g.on_dark_cycle(ProcessId{21}));
}

// ---- make_ring_with_tails -------------------------------------------------------

struct TailsParam {
  std::uint32_t n;
  std::uint32_t cycle_len;
  std::uint32_t extra;
  std::uint64_t seed;
};

class TailsTest : public ::testing::TestWithParam<TailsParam> {};

TEST_P(TailsTest, CycleMembersUnchangedByTails) {
  const auto [n, len, extra, seed] = GetParam();
  const Scenario s = make_ring_with_tails(n, len, extra, seed);
  const WaitForGraph g = replay(s, s.script.size());
  // Exactly the planted ring is deadlocked; tails wait on it but are not on
  // a cycle themselves.
  const auto deadlocked = g.deadlocked_vertices();
  EXPECT_EQ(deadlocked.size(), len);
  for (const ProcessId v : deadlocked) {
    EXPECT_LT(v.value(), len);
  }
}

TEST_P(TailsTest, RequestedTailsMostlyPlaced) {
  const auto [n, len, extra, seed] = GetParam();
  const Scenario s = make_ring_with_tails(n, len, extra, seed);
  const WaitForGraph g = replay(s, s.script.size());
  if (n > len) {
    EXPECT_GT(g.edge_count(), len);  // at least some tails placed
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TailsTest,
    ::testing::Values(TailsParam{10, 3, 5, 1}, TailsParam{50, 10, 30, 2},
                      TailsParam{100, 4, 80, 3}, TailsParam{20, 20, 5, 4}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_L" +
             std::to_string(info.param.cycle_len) + "_e" +
             std::to_string(info.param.extra);
    });

// ---- make_acyclic ---------------------------------------------------------------

class AcyclicTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AcyclicTest, NeverContainsCycle) {
  const Scenario s = make_acyclic(40, 120, GetParam());
  const WaitForGraph g = replay(s, s.script.size());
  EXPECT_TRUE(g.deadlocked_vertices().empty());
  EXPECT_GT(g.edge_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcyclicTest,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 12345));

TEST(MakeAcyclic, RejectsTinyGraphs) {
  EXPECT_THROW(make_acyclic(1, 1, 0), std::invalid_argument);
}

// ---- make_random_walk -------------------------------------------------------------

class RandomWalkTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWalkTest, EveryPrefixIsAxiomConsistent) {
  const Scenario s = make_random_walk(12, 300, GetParam());
  // replay() throws on any axiom violation; check several prefixes.
  for (const std::size_t cut :
       {s.script.size() / 4, s.script.size() / 2, s.script.size()}) {
    EXPECT_NO_THROW((void)replay(s, cut));
  }
}

TEST_P(RandomWalkTest, DarkCyclesArePermanent) {
  // Once a vertex is on a dark cycle it must stay on one for the rest of
  // the script -- the paper's central observation (section 2.4).
  const Scenario s = make_random_walk(10, 400, GetParam(), 0.6);
  WaitForGraph g;
  std::set<ProcessId> ever_deadlocked;
  for (const Op& op : s.script) {
    switch (op.kind) {
      case OpKind::kCreate:
        ASSERT_TRUE(g.create(op.edge.from, op.edge.to).ok());
        break;
      case OpKind::kBlacken:
        ASSERT_TRUE(g.blacken(op.edge.from, op.edge.to).ok());
        break;
      case OpKind::kWhiten:
        ASSERT_TRUE(g.whiten(op.edge.from, op.edge.to).ok());
        break;
      case OpKind::kRemove:
        ASSERT_TRUE(g.remove(op.edge.from, op.edge.to).ok());
        break;
    }
    for (const ProcessId v : ever_deadlocked) {
      EXPECT_TRUE(g.on_dark_cycle(v))
          << v << " left a dark cycle -- axiom violation";
    }
    for (const ProcessId v : g.deadlocked_vertices()) {
      ever_deadlocked.insert(v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWalkTest,
                         ::testing::Values(1, 7, 13, 42, 1234));

// ---- replay ----------------------------------------------------------------------

TEST(Replay, PrefixBeyondScriptRejected) {
  const Scenario s = make_ring(3, 3);
  EXPECT_THROW((void)replay(s, s.script.size() + 1), std::out_of_range);
}

TEST(Replay, EmptyPrefixGivesEmptyGraph) {
  const Scenario s = make_ring(3, 3);
  const WaitForGraph g = replay(s, 0);
  EXPECT_EQ(g.edge_count(), 0u);
}

}  // namespace
}  // namespace cmh::graph
