// Property tests pitting the graph oracles against brute-force
// re-implementations on random graphs.
#include <gtest/gtest.h>

#include <functional>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/wait_for_graph.h"

namespace cmh::graph {
namespace {

/// Brute force: does a dark cycle through v exist?  Enumerate with DFS over
/// dark edges tracking the path.
bool brute_on_dark_cycle(const WaitForGraph& g, ProcessId v) {
  std::set<ProcessId> visiting;
  std::function<bool(ProcessId)> dfs = [&](ProcessId u) {
    for (const ProcessId w : g.successors(u)) {
      if (!is_dark(*g.color(u, w))) continue;
      if (w == v) return true;
      if (visiting.insert(w).second) {
        if (dfs(w)) return true;
      }
    }
    return false;
  };
  return dfs(v);
}

/// Brute force: all black edges lying on some black *walk* from `from`
/// to `to` -- edge (x,y) qualifies iff x is black-reachable from `from`
/// (reflexively) and `to` is black-reachable from y (reflexively).
/// Recomputed here with plain DFS for independence from the implementation.
std::set<Edge> brute_black_walk_edges(const WaitForGraph& g, ProcessId from,
                                      ProcessId to) {
  auto reach_fwd = [&](ProcessId start) {
    std::set<ProcessId> seen{start};
    std::function<void(ProcessId)> dfs = [&](ProcessId u) {
      for (const ProcessId w : g.successors(u)) {
        if (*g.color(u, w) != EdgeColor::kBlack) continue;
        if (seen.insert(w).second) dfs(w);
      }
    };
    dfs(start);
    return seen;
  };
  const auto from_set = reach_fwd(from);
  std::set<Edge> result;
  for (const Edge& e : g.edges(EdgeColor::kBlack)) {
    if (!from_set.contains(e.from)) continue;
    const auto mid = reach_fwd(e.to);
    if (mid.contains(to)) result.insert(e);
  }
  return result;
}

class OracleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleProperty, DarkCycleMatchesBruteForce) {
  const Scenario s = make_random_walk(9, 250, GetParam(), 0.55);
  for (const std::size_t cut :
       {s.script.size() / 3, 2 * s.script.size() / 3, s.script.size()}) {
    const WaitForGraph g = replay(s, cut);
    for (const ProcessId v : g.vertices()) {
      EXPECT_EQ(g.on_dark_cycle(v), brute_on_dark_cycle(g, v))
          << v << " at cut " << cut << " seed " << GetParam();
    }
  }
}

TEST_P(OracleProperty, BlackPathEdgesMatchBruteForce) {
  const Scenario s = make_random_walk(8, 220, GetParam() * 7 + 1, 0.6);
  const WaitForGraph g = replay(s, s.script.size());
  const auto vertices = g.vertices();
  for (const ProcessId from : vertices) {
    for (const ProcessId to : vertices) {
      const auto got = g.black_path_edges_to(from, to);
      const auto expected = brute_black_walk_edges(g, from, to);
      EXPECT_EQ(std::set<Edge>(got.begin(), got.end()), expected)
          << from << "->" << to << " seed " << GetParam();
    }
  }
}

TEST_P(OracleProperty, CycleThroughIsActuallyACycle) {
  const Scenario s = make_random_walk(10, 300, GetParam() * 13 + 5, 0.6);
  const WaitForGraph g = replay(s, s.script.size());
  for (const ProcessId v : g.vertices()) {
    const auto cycle = g.dark_cycle_through(v);
    if (!cycle) continue;
    ASSERT_GE(cycle->size(), 2u);
    EXPECT_EQ((*cycle)[0], v);
    for (std::size_t i = 0; i < cycle->size(); ++i) {
      const ProcessId a = (*cycle)[i];
      const ProcessId b = (*cycle)[(i + 1) % cycle->size()];
      ASSERT_TRUE(g.has_edge(a, b)) << a << "->" << b;
      EXPECT_TRUE(is_dark(*g.color(a, b)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace cmh::graph
