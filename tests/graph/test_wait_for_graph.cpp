#include "graph/wait_for_graph.h"

#include <gtest/gtest.h>

namespace cmh::graph {
namespace {

const ProcessId p0{0};
const ProcessId p1{1};
const ProcessId p2{2};
const ProcessId p3{3};
const ProcessId p4{4};

// ---- axiom G1: creation -----------------------------------------------------

TEST(AxiomG1, CreateMakesGreyEdge) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p0, p1).ok());
  EXPECT_TRUE(g.has_edge(p0, p1));
  EXPECT_EQ(g.color(p0, p1), EdgeColor::kGrey);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(AxiomG1, DuplicateCreateRejected) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p0, p1).ok());
  const auto st = g.create(p0, p1);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(AxiomG1, SelfEdgeRejected) {
  WaitForGraph g;
  EXPECT_FALSE(g.create(p0, p0).ok());
}

TEST(AxiomG1, ReverseEdgeIsDistinct) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p0, p1).ok());
  ASSERT_TRUE(g.create(p1, p0).ok());
  EXPECT_EQ(g.edge_count(), 2u);
}

// ---- axiom G2: blackening ---------------------------------------------------

TEST(AxiomG2, GreyTurnsBlack) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p0, p1).ok());
  ASSERT_TRUE(g.blacken(p0, p1).ok());
  EXPECT_EQ(g.color(p0, p1), EdgeColor::kBlack);
}

TEST(AxiomG2, BlackenMissingEdgeRejected) {
  WaitForGraph g;
  EXPECT_FALSE(g.blacken(p0, p1).ok());
}

TEST(AxiomG2, BlackenTwiceRejected) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p0, p1).ok());
  ASSERT_TRUE(g.blacken(p0, p1).ok());
  EXPECT_FALSE(g.blacken(p0, p1).ok());
}

// ---- axiom G3: whitening ----------------------------------------------------

TEST(AxiomG3, BlackTurnsWhiteWhenTargetActive) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p0, p1).ok());
  ASSERT_TRUE(g.blacken(p0, p1).ok());
  ASSERT_TRUE(g.whiten(p0, p1).ok());
  EXPECT_EQ(g.color(p0, p1), EdgeColor::kWhite);
}

TEST(AxiomG3, BlockedTargetCannotReply) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p0, p1).ok());
  ASSERT_TRUE(g.blacken(p0, p1).ok());
  ASSERT_TRUE(g.create(p1, p2).ok());  // p1 now blocked
  EXPECT_FALSE(g.whiten(p0, p1).ok());
  // Once p1's own wait resolves, the reply becomes legal.
  ASSERT_TRUE(g.blacken(p1, p2).ok());
  ASSERT_TRUE(g.whiten(p1, p2).ok());
  ASSERT_TRUE(g.remove(p1, p2).ok());
  EXPECT_TRUE(g.whiten(p0, p1).ok());
}

TEST(AxiomG3, GreyEdgeCannotWhiten) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p0, p1).ok());
  EXPECT_FALSE(g.whiten(p0, p1).ok());
}

// ---- axiom G4: deletion -----------------------------------------------------

TEST(AxiomG4, WhiteEdgeRemovable) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p0, p1).ok());
  ASSERT_TRUE(g.blacken(p0, p1).ok());
  ASSERT_TRUE(g.whiten(p0, p1).ok());
  ASSERT_TRUE(g.remove(p0, p1).ok());
  EXPECT_FALSE(g.has_edge(p0, p1));
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(AxiomG4, DarkEdgeNotRemovable) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p0, p1).ok());
  EXPECT_FALSE(g.remove(p0, p1).ok());
  ASSERT_TRUE(g.blacken(p0, p1).ok());
  EXPECT_FALSE(g.remove(p0, p1).ok());
}

TEST(AxiomG4, EdgeCanBeRecreatedAfterRemoval) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p0, p1).ok());
  ASSERT_TRUE(g.blacken(p0, p1).ok());
  ASSERT_TRUE(g.whiten(p0, p1).ok());
  ASSERT_TRUE(g.remove(p0, p1).ok());
  ASSERT_TRUE(g.create(p0, p1).ok());
  EXPECT_EQ(g.color(p0, p1), EdgeColor::kGrey);
}

// ---- queries ----------------------------------------------------------------

TEST(Queries, SuccessorsSorted) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p0, p3).ok());
  ASSERT_TRUE(g.create(p0, p1).ok());
  ASSERT_TRUE(g.create(p0, p2).ok());
  EXPECT_EQ(g.successors(p0), (std::vector<ProcessId>{p1, p2, p3}));
  EXPECT_TRUE(g.successors(p1).empty());
}

TEST(Queries, PredecessorsWithColorFilter) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p0, p2).ok());
  ASSERT_TRUE(g.create(p1, p2).ok());
  ASSERT_TRUE(g.blacken(p1, p2).ok());
  EXPECT_EQ(g.predecessors(p2), (std::vector<ProcessId>{p0, p1}));
  EXPECT_EQ(g.predecessors(p2, EdgeColor::kBlack),
            (std::vector<ProcessId>{p1}));
  EXPECT_EQ(g.predecessors(p2, EdgeColor::kGrey),
            (std::vector<ProcessId>{p0}));
}

TEST(Queries, HasOutgoing) {
  WaitForGraph g;
  EXPECT_FALSE(g.has_outgoing(p0));
  ASSERT_TRUE(g.create(p0, p1).ok());
  EXPECT_TRUE(g.has_outgoing(p0));
  EXPECT_FALSE(g.has_outgoing(p1));
}

TEST(Queries, EdgesWithFilter) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p0, p1).ok());
  ASSERT_TRUE(g.create(p1, p2).ok());
  ASSERT_TRUE(g.blacken(p1, p2).ok());
  EXPECT_EQ(g.edges().size(), 2u);
  EXPECT_EQ(g.edges(EdgeColor::kGrey), (std::vector<Edge>{{p0, p1}}));
  EXPECT_EQ(g.edges(EdgeColor::kBlack), (std::vector<Edge>{{p1, p2}}));
  EXPECT_TRUE(g.edges(EdgeColor::kWhite).empty());
}

TEST(Queries, VerticesAreEdgeEndpoints) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p2, p4).ok());
  EXPECT_EQ(g.vertices(), (std::vector<ProcessId>{p2, p4}));
}

// ---- dark-cycle oracle --------------------------------------------------------

TEST(DarkCycle, TwoCycleDetected) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p0, p1).ok());
  ASSERT_TRUE(g.create(p1, p0).ok());
  EXPECT_TRUE(g.on_dark_cycle(p0));
  EXPECT_TRUE(g.on_dark_cycle(p1));
}

TEST(DarkCycle, MixedGreyBlackCycleIsDark) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p0, p1).ok());
  ASSERT_TRUE(g.blacken(p0, p1).ok());
  ASSERT_TRUE(g.create(p1, p2).ok());
  ASSERT_TRUE(g.create(p2, p0).ok());
  ASSERT_TRUE(g.blacken(p2, p0).ok());
  EXPECT_TRUE(g.on_dark_cycle(p0));
  EXPECT_TRUE(g.on_dark_cycle(p1));
  EXPECT_TRUE(g.on_dark_cycle(p2));
}

TEST(DarkCycle, AcyclicChainNotDeadlocked) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p0, p1).ok());
  ASSERT_TRUE(g.create(p1, p2).ok());
  ASSERT_TRUE(g.create(p2, p3).ok());
  EXPECT_FALSE(g.on_dark_cycle(p0));
  EXPECT_FALSE(g.on_dark_cycle(p3));
  EXPECT_TRUE(g.deadlocked_vertices().empty());
}

TEST(DarkCycle, WhiteEdgeBreaksDarkness) {
  // p0 -> p1 -> p0 but (p1, p0) is white: p0 already replied, the "cycle"
  // will dissolve, so it is not a deadlock.
  WaitForGraph g;
  ASSERT_TRUE(g.create(p1, p0).ok());
  ASSERT_TRUE(g.blacken(p1, p0).ok());
  ASSERT_TRUE(g.whiten(p1, p0).ok());
  ASSERT_TRUE(g.create(p0, p1).ok());
  EXPECT_FALSE(g.on_dark_cycle(p0));
  EXPECT_FALSE(g.on_dark_cycle(p1));
}

TEST(DarkCycle, VertexOffCycleWaitingOnCycleNotOnCycle) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p0, p1).ok());
  ASSERT_TRUE(g.create(p1, p0).ok());
  ASSERT_TRUE(g.create(p2, p0).ok());  // p2 waits on the cycle
  EXPECT_FALSE(g.on_dark_cycle(p2));
  EXPECT_EQ(g.deadlocked_vertices(), (std::vector<ProcessId>{p0, p1}));
}

TEST(DarkCycle, CycleThroughReturnsMembersInOrder) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p0, p1).ok());
  ASSERT_TRUE(g.create(p1, p2).ok());
  ASSERT_TRUE(g.create(p2, p0).ok());
  const auto cycle = g.dark_cycle_through(p0);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(*cycle, (std::vector<ProcessId>{p0, p1, p2}));
}

TEST(DarkCycle, ShortestOfMultipleCyclesFound) {
  WaitForGraph g;
  // Two cycles through p0: p0->p1->p0 and p0->p2->p3->p0.
  ASSERT_TRUE(g.create(p0, p1).ok());
  ASSERT_TRUE(g.create(p1, p0).ok());
  ASSERT_TRUE(g.create(p0, p2).ok());
  ASSERT_TRUE(g.create(p2, p3).ok());
  ASSERT_TRUE(g.create(p3, p0).ok());
  const auto cycle = g.dark_cycle_through(p0);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 2u);  // BFS finds the 2-cycle first
}

// ---- black-path oracle (section 5 ground truth) -----------------------------

TEST(BlackPaths, SimpleChainToTarget) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p0, p1).ok());
  ASSERT_TRUE(g.blacken(p0, p1).ok());
  ASSERT_TRUE(g.create(p1, p2).ok());
  ASSERT_TRUE(g.blacken(p1, p2).ok());
  const auto edges = g.black_path_edges_to(p0, p2);
  EXPECT_EQ(edges.size(), 2u);
  EXPECT_TRUE(edges.contains(Edge{p0, p1}));
  EXPECT_TRUE(edges.contains(Edge{p1, p2}));
}

TEST(BlackPaths, GreyEdgesExcluded) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p0, p1).ok());  // grey
  ASSERT_TRUE(g.create(p1, p2).ok());
  ASSERT_TRUE(g.blacken(p1, p2).ok());
  EXPECT_TRUE(g.black_path_edges_to(p0, p2).empty());
}

TEST(BlackPaths, CycleEdgesIncludedWhenTargetOnCycle) {
  WaitForGraph g;
  for (const auto& [a, b] :
       {std::pair{p0, p1}, std::pair{p1, p2}, std::pair{p2, p0}}) {
    ASSERT_TRUE(g.create(a, b).ok());
    ASSERT_TRUE(g.blacken(a, b).ok());
  }
  // Walks from p1 to p0 traverse the whole cycle, so every cycle edge is on
  // a permanent black path leading from p1 -- including (p0, p1), which a
  // walk reaches after passing p0.  This matches the section-5 WFGD
  // fixpoint, where messages keep circulating until every member knows all
  // cycle edges.
  const auto edges = g.black_path_edges_to(p1, p0);
  EXPECT_EQ(edges.size(), 3u);
  EXPECT_TRUE(edges.contains(Edge{p1, p2}));
  EXPECT_TRUE(edges.contains(Edge{p2, p0}));
  EXPECT_TRUE(edges.contains(Edge{p0, p1}));
}

TEST(BlackPaths, BranchingPathsAllIncluded) {
  WaitForGraph g;
  // p0 -> p1 -> p3, p0 -> p2 -> p3, all black.
  for (const auto& [a, b] : {std::pair{p0, p1}, std::pair{p1, p3},
                             std::pair{p0, p2}, std::pair{p2, p3}}) {
    ASSERT_TRUE(g.create(a, b).ok());
    ASSERT_TRUE(g.blacken(a, b).ok());
  }
  EXPECT_EQ(g.black_path_edges_to(p0, p3).size(), 4u);
}

TEST(BlackPaths, DeadEndBranchesExcluded) {
  WaitForGraph g;
  for (const auto& [a, b] : {std::pair{p0, p1}, std::pair{p1, p2},
                             std::pair{p1, p4}}) {  // p4 is a dead end
    ASSERT_TRUE(g.create(a, b).ok());
    ASSERT_TRUE(g.blacken(a, b).ok());
  }
  const auto edges = g.black_path_edges_to(p0, p2);
  EXPECT_EQ(edges.size(), 2u);
  EXPECT_FALSE(edges.contains(Edge{p1, p4}));
}

// ---- DOT export ----------------------------------------------------------------

TEST(Dot, ContainsEdgesAndColors) {
  WaitForGraph g;
  ASSERT_TRUE(g.create(p0, p1).ok());
  ASSERT_TRUE(g.create(p1, p2).ok());
  ASSERT_TRUE(g.blacken(p1, p2).ok());
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"p0\" -> \"p1\""), std::string::npos);
  EXPECT_NE(dot.find("grey"), std::string::npos);
  EXPECT_NE(dot.find("black"), std::string::npos);
}

TEST(EdgeColor, DarknessPredicate) {
  EXPECT_TRUE(is_dark(EdgeColor::kGrey));
  EXPECT_TRUE(is_dark(EdgeColor::kBlack));
  EXPECT_FALSE(is_dark(EdgeColor::kWhite));
}

}  // namespace
}  // namespace cmh::graph
