// Baseline detectors: they find planted deadlocks, attribute message costs,
// and exhibit (or avoid) the phantom-deadlock failure mode.
#include <gtest/gtest.h>

#include "baseline/centralized.h"
#include "baseline/path_pushing.h"
#include "baseline/timeout.h"
#include "graph/generators.h"
#include "runtime/sim_cluster.h"
#include "runtime/workload.h"

namespace cmh::baseline {
namespace {

using runtime::SimCluster;

core::Options manual_opts() {
  core::Options o;
  o.initiation = core::InitiationMode::kManual;
  return o;
}

// ---- centralized -----------------------------------------------------------------

TEST(Centralized, DetectsPlantedRing) {
  SimCluster cluster(16, manual_opts(), 1);
  CentralizedDetector det(cluster, SimTime::ms(5));
  det.start();
  runtime::issue_scenario(cluster, graph::make_ring(16, 6));
  cluster.simulator().run_until(SimTime::ms(50));
  det.stop();
  cluster.run();
  ASSERT_FALSE(det.detections().empty());
  EXPECT_TRUE(det.detections()[0].real);
  EXPECT_GT(det.messages_sent(), 0u);
  EXPECT_GT(det.bytes_sent(), 0u);
}

TEST(Centralized, ConsistentVariantDetectsToo) {
  SimCluster cluster(16, manual_opts(), 2);
  CentralizedDetector det(cluster, SimTime::ms(5), /*consistent=*/true);
  det.start();
  runtime::issue_scenario(cluster, graph::make_ring(16, 4));
  cluster.simulator().run_until(SimTime::ms(50));
  det.stop();
  cluster.run();
  ASSERT_FALSE(det.detections().empty());
  EXPECT_TRUE(det.detections()[0].real);
}

TEST(Centralized, SilentOnAcyclicWaits) {
  SimCluster cluster(16, manual_opts(), 3);
  CentralizedDetector det(cluster, SimTime::ms(5));
  det.start();
  runtime::issue_scenario(cluster, graph::make_acyclic(16, 30, 4));
  cluster.simulator().run_until(SimTime::ms(50));
  det.stop();
  cluster.run();
  EXPECT_TRUE(det.detections().empty());
}

TEST(Centralized, ConsistentVariantNeverPhantoms) {
  // Churny workload: waits form and dissolve constantly.
  SimCluster cluster(12, manual_opts(), 5);
  CentralizedDetector det(cluster, SimTime::ms(2), /*consistent=*/true);
  det.start();
  runtime::WorkloadConfig wl;
  wl.issue_until = SimTime::ms(60);
  runtime::RandomWorkload workload(cluster, wl, 6);
  workload.start();
  cluster.simulator().run_until(SimTime::ms(80));
  det.stop();
  cluster.run();
  EXPECT_EQ(det.phantom_detections(), 0u);
}

TEST(Centralized, ReportsSameWedgeOnce) {
  SimCluster cluster(8, manual_opts(), 7);
  CentralizedDetector det(cluster, SimTime::ms(2));
  det.start();
  runtime::issue_scenario(cluster, graph::make_ring(8, 3));
  cluster.simulator().run_until(SimTime::ms(100));  // many periods
  det.stop();
  cluster.run();
  EXPECT_EQ(det.detections().size(), 1u);
}

// ---- path pushing -----------------------------------------------------------------

TEST(PathPushing, DetectsPlantedRing) {
  SimCluster cluster(12, manual_opts(), 8);
  PathPushingDetector det(cluster, SimTime::ms(3));
  det.start();
  runtime::issue_scenario(cluster, graph::make_ring(12, 5));
  cluster.simulator().run_until(SimTime::ms(100));
  det.stop();
  cluster.run();
  ASSERT_FALSE(det.detections().empty());
  EXPECT_TRUE(det.detections()[0].real);
}

TEST(PathPushing, OrderedPushDetectsWithFewerMessages) {
  auto run = [](bool ordered) {
    SimCluster cluster(12, manual_opts(), 9);
    PathPushingDetector det(cluster, SimTime::ms(3), ordered);
    det.start();
    runtime::issue_scenario(cluster, graph::make_ring(12, 8));
    cluster.simulator().run_until(SimTime::ms(150));
    det.stop();
    cluster.run();
    return std::pair{det.detections().size(), det.bytes_sent()};
  };
  const auto [plain_found, plain_bytes] = run(false);
  const auto [ordered_found, ordered_bytes] = run(true);
  EXPECT_GT(plain_found, 0u);
  EXPECT_GT(ordered_found, 0u);
  EXPECT_LT(ordered_bytes, plain_bytes);
}

TEST(PathPushing, SilentOnAcyclicWaits) {
  SimCluster cluster(16, manual_opts(), 10);
  PathPushingDetector det(cluster, SimTime::ms(3));
  det.start();
  runtime::issue_scenario(cluster, graph::make_acyclic(16, 30, 11));
  cluster.simulator().run_until(SimTime::ms(80));
  det.stop();
  cluster.run();
  EXPECT_TRUE(det.detections().empty());
}

TEST(PathPushing, DetectionLatencyGrowsWithCycleLength) {
  auto latency = [](std::uint32_t len) {
    SimCluster cluster(len, manual_opts(), 12);
    PathPushingDetector det(cluster, SimTime::ms(2));
    det.start();
    runtime::issue_scenario(cluster, graph::make_ring(len, len));
    cluster.simulator().run_until(SimTime::sec(2));
    det.stop();
    cluster.run();
    EXPECT_FALSE(det.detections().empty()) << "L=" << len;
    return det.detections().empty() ? SimTime::zero()
                                    : det.detections()[0].at;
  };
  // Information travels one hop per round: latency scales with L.
  EXPECT_LT(latency(3), latency(24));
}

// ---- timeout ------------------------------------------------------------------------

TEST(Timeout, FlagsWedgedProcesses) {
  SimCluster cluster(6, manual_opts(), 13);
  TimeoutDetector det(cluster, SimTime::ms(10));
  det.start();
  runtime::issue_scenario(cluster, graph::make_ring(6, 3));
  cluster.simulator().run_until(SimTime::ms(60));
  det.stop();
  cluster.run();
  ASSERT_FALSE(det.detections().empty());
  // Cycle members are real detections.
  std::size_t real = 0;
  for (const auto& d : det.detections()) real += d.real ? 1 : 0;
  EXPECT_GE(real, 3u);
  EXPECT_EQ(det.messages_sent(), 0u);
}

TEST(Timeout, LongWaitChainProducesPhantoms) {
  // A long but deadlock-free chain: the head never replies within the
  // timeout because the tail serves slowly -- the timeout detector calls
  // every chain member deadlocked.  All phantom.
  SimCluster cluster(8, manual_opts(), 14);
  TimeoutDetector det(cluster, SimTime::ms(5));
  det.start();
  // 0 -> 1 -> ... -> 7; nobody replies during the window.
  for (std::uint32_t i = 0; i + 1 < 8; ++i) {
    cluster.request(ProcessId{i}, ProcessId{i + 1});
  }
  cluster.simulator().run_until(SimTime::ms(40));
  det.stop();
  // Now the chain unwinds normally -- it was never deadlocked.
  for (std::uint32_t i = 8; i-- > 1;) {
    cluster.reply(ProcessId{i}, ProcessId{i - 1});
    cluster.run();
  }
  EXPECT_GT(det.phantom_detections(), 0u);
  EXPECT_EQ(det.real_detections(), 0u);
  EXPECT_TRUE(cluster.oracle().deadlocked_vertices().empty());
}

TEST(Timeout, QuickRepliesNeverFlagged) {
  SimCluster cluster(6, manual_opts(), 15);
  TimeoutDetector det(cluster, SimTime::ms(20));
  det.start();
  cluster.request(ProcessId{0}, ProcessId{1});
  cluster.simulator().run_until(SimTime::ms(2));
  cluster.reply(ProcessId{1}, ProcessId{0});
  cluster.simulator().run_until(SimTime::ms(60));
  det.stop();
  cluster.run();
  EXPECT_TRUE(det.detections().empty());
}

}  // namespace
}  // namespace cmh::baseline
