// ThreadedCluster over real threads: in-memory channels and TCP sockets.
#include "runtime/threaded_cluster.h"

#include <gtest/gtest.h>

#include "net/inmemory_transport.h"
#include "net/tcp_transport.h"

namespace cmh::runtime {
namespace {

using namespace std::chrono_literals;

core::Options manual_opts() {
  core::Options o;
  o.initiation = core::InitiationMode::kManual;
  return o;
}

template <typename TransportT>
void ring_detection_test(std::uint32_t n) {
  TransportT transport;
  ThreadedCluster cluster(transport, n, core::Options{});
  // Build the ring; each request fires an on-request probe computation.
  for (std::uint32_t i = 0; i < n; ++i) {
    cluster.request(ProcessId{i}, ProcessId{(i + 1) % n});
  }
  const auto declarer = cluster.wait_for_detection(5000ms);
  ASSERT_TRUE(declarer.has_value());
  EXPECT_TRUE(cluster.declared(*declarer));
  EXPECT_TRUE(cluster.deadlocked(*declarer));
  cluster.stop();
}

TEST(ThreadedCluster, InMemoryRingDetected) {
  ring_detection_test<net::InMemoryTransport>(4);
}

TEST(ThreadedCluster, InMemoryLargerRingDetected) {
  ring_detection_test<net::InMemoryTransport>(16);
}

TEST(ThreadedCluster, TcpRingDetected) {
  ring_detection_test<net::TcpTransport>(4);
}

TEST(ThreadedCluster, TcpLargerRingDetected) {
  ring_detection_test<net::TcpTransport>(10);
}

TEST(ThreadedCluster, NoDetectionOnAcyclicChain) {
  net::InMemoryTransport transport;
  ThreadedCluster cluster(transport, 5, core::Options{});
  for (std::uint32_t i = 0; i + 1 < 5; ++i) {
    cluster.request(ProcessId{i}, ProcessId{i + 1});
  }
  EXPECT_EQ(cluster.wait_for_detection(300ms), std::nullopt);
  EXPECT_EQ(cluster.detection_count(), 0u);
  cluster.stop();
}

TEST(ThreadedCluster, ReplyUnblocksAndNoFalseDetection) {
  net::InMemoryTransport transport;
  ThreadedCluster cluster(transport, 2, manual_opts());
  cluster.request(ProcessId{0}, ProcessId{1});
  // Reply as soon as the request lands (retry while it is in flight).
  bool replied = false;
  for (int i = 0; i < 1000 && !replied; ++i) {
    try {
      cluster.reply(ProcessId{1}, ProcessId{0});
      replied = true;
    } catch (const core::ModelViolation&) {
      std::this_thread::sleep_for(1ms);  // request not delivered yet
    }
  }
  ASSERT_TRUE(replied);
  EXPECT_EQ(cluster.wait_for_detection(200ms), std::nullopt);
  cluster.stop();
}

TEST(ThreadedCluster, ManualInitiateDetectsWedgedRing) {
  net::InMemoryTransport transport;
  ThreadedCluster cluster(transport, 3, manual_opts());
  cluster.request(ProcessId{0}, ProcessId{1});
  cluster.request(ProcessId{1}, ProcessId{2});
  cluster.request(ProcessId{2}, ProcessId{0});
  // Let requests propagate, then initiate; retry while edges are grey.
  std::optional<ProcessId> declarer;
  for (int attempt = 0; attempt < 50 && !declarer; ++attempt) {
    std::this_thread::sleep_for(5ms);
    (void)cluster.initiate(ProcessId{0});
    declarer = cluster.wait_for_detection(100ms);
  }
  ASSERT_TRUE(declarer.has_value());
  EXPECT_EQ(*declarer, ProcessId{0});
  cluster.stop();
}

TEST(ThreadedCluster, WfgdPropagatesOverThreads) {
  net::InMemoryTransport transport;
  ThreadedCluster cluster(transport, 4, core::Options{});
  for (std::uint32_t i = 0; i < 4; ++i) {
    cluster.request(ProcessId{i}, ProcessId{(i + 1) % 4});
  }
  ASSERT_TRUE(cluster.wait_for_detection(5000ms).has_value());
  // Eventually every ring member learns all 4 cycle edges.
  bool all_complete = false;
  for (int attempt = 0; attempt < 500 && !all_complete; ++attempt) {
    std::this_thread::sleep_for(2ms);
    all_complete = true;
    for (std::uint32_t i = 0; i < 4; ++i) {
      if (cluster.wfgd_edges(ProcessId{i}).size() != 4) all_complete = false;
    }
  }
  EXPECT_TRUE(all_complete);
  cluster.stop();
}

TEST(ThreadedCluster, DelayedInitiationOverThreads) {
  core::Options o;
  o.initiation = core::InitiationMode::kDelayed;
  o.initiation_delay = SimTime::ms(20);
  net::InMemoryTransport transport;
  ThreadedCluster cluster(transport, 2, o);
  cluster.request(ProcessId{0}, ProcessId{1});
  cluster.request(ProcessId{1}, ProcessId{0});
  const auto declarer = cluster.wait_for_detection(5000ms);
  ASSERT_TRUE(declarer.has_value());
  cluster.stop();
}

TEST(ThreadedCluster, StopIsIdempotentAndJoins) {
  net::InMemoryTransport transport;
  ThreadedCluster cluster(transport, 3, core::Options{});
  cluster.request(ProcessId{0}, ProcessId{1});
  cluster.stop();
  cluster.stop();
  SUCCEED();
}

}  // namespace
}  // namespace cmh::runtime
