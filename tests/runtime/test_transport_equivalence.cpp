// The algorithm is transport-agnostic: the same scenario must produce the
// same detection verdict on the simulator, on in-memory threads, and on
// both TCP transports (epoll event-loop and blocking thread-per-connection).
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "net/blocking_tcp_transport.h"
#include "net/inmemory_transport.h"
#include "net/tcp_transport.h"
#include "runtime/sim_cluster.h"
#include "runtime/threaded_cluster.h"
#include "runtime/workload.h"

namespace cmh::runtime {
namespace {

using namespace std::chrono_literals;

struct EquivCase {
  std::uint32_t n;
  std::uint32_t cycle_len;  // 0 = acyclic scenario instead
};

class TransportEquivalence : public ::testing::TestWithParam<EquivCase> {};

bool sim_verdict(const graph::Scenario& s) {
  SimCluster cluster(s.n_processes, core::Options{}, 1);
  issue_scenario(cluster, s);
  cluster.run();
  return !cluster.detections().empty();
}

template <typename TransportT>
bool threaded_verdict(const graph::Scenario& s) {
  TransportT transport;
  ThreadedCluster cluster(transport, s.n_processes, core::Options{});
  for (const graph::Op& op : s.script) {
    if (op.kind == graph::OpKind::kCreate) {
      cluster.request(op.edge.from, op.edge.to);
    }
  }
  const bool detected = cluster.wait_for_detection(3000ms).has_value();
  cluster.stop();
  return detected;
}

TEST_P(TransportEquivalence, VerdictsAgree) {
  const auto [n, len] = GetParam();
  const graph::Scenario s = len > 0 ? graph::make_ring(n, len)
                                    : graph::make_acyclic(n, n * 2, 3);
  const bool expected = len > 0;
  EXPECT_EQ(sim_verdict(s), expected);
  EXPECT_EQ(threaded_verdict<net::InMemoryTransport>(s), expected);
  EXPECT_EQ(threaded_verdict<net::BlockingTcpTransport>(s), expected);
  EXPECT_EQ(threaded_verdict<net::TcpTransport>(s), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, TransportEquivalence,
    ::testing::Values(EquivCase{3, 3}, EquivCase{6, 4}, EquivCase{8, 0},
                      EquivCase{12, 12}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_L" +
             std::to_string(info.param.cycle_len);
    });

}  // namespace
}  // namespace cmh::runtime
