// SimCluster harness: oracle bookkeeping matches the model's instants, and
// the hooks/callbacks fire correctly.
#include "runtime/sim_cluster.h"

#include <gtest/gtest.h>

#include "runtime/workload.h"

namespace cmh::runtime {
namespace {

core::Options manual_opts() {
  core::Options o;
  o.initiation = core::InitiationMode::kManual;
  return o;
}

const ProcessId p0{0};
const ProcessId p1{1};
const ProcessId p2{2};

TEST(SimClusterOracle, EdgeColorsFollowMessageLifecycle) {
  SimCluster cluster(2, manual_opts(), 1);
  cluster.request(p0, p1);
  // Sent but not delivered: grey (G1).
  EXPECT_EQ(cluster.oracle().color(p0, p1), graph::EdgeColor::kGrey);
  cluster.run();
  // Delivered: black (G2).
  EXPECT_EQ(cluster.oracle().color(p0, p1), graph::EdgeColor::kBlack);
  cluster.reply(p1, p0);
  // Reply sent, not delivered: white (G3).
  EXPECT_EQ(cluster.oracle().color(p0, p1), graph::EdgeColor::kWhite);
  cluster.run();
  // Delivered: gone (G4).
  EXPECT_FALSE(cluster.oracle().has_edge(p0, p1));
}

TEST(SimClusterOracle, ProcessViewMatchesOracleAtQuiescence) {
  SimCluster cluster(3, manual_opts(), 2);
  cluster.request(p0, p1);
  cluster.request(p0, p2);
  cluster.request(p1, p2);
  cluster.run();
  for (std::uint32_t i = 0; i < 3; ++i) {
    const ProcessId p{i};
    const auto& proc = cluster.process(p);
    // Local out edges == oracle successors.
    const auto succ = cluster.oracle().successors(p);
    const auto& waits = proc.waits_for();
    EXPECT_EQ(std::set<ProcessId>(succ.begin(), succ.end()),
              std::set<ProcessId>(waits.begin(), waits.end()));
    // Local black in edges == oracle black predecessors.
    const auto preds =
        cluster.oracle().predecessors(p, graph::EdgeColor::kBlack);
    const auto& held = proc.held_requests();
    EXPECT_EQ(std::set<ProcessId>(preds.begin(), preds.end()),
              std::set<ProcessId>(held.begin(), held.end()));
  }
}

TEST(SimClusterOracle, ReplyByBlockedProcessRejected) {
  SimCluster cluster(3, manual_opts(), 3);
  cluster.request(p0, p1);
  cluster.run();
  cluster.request(p1, p2);  // p1 now blocked
  EXPECT_THROW(cluster.reply(p1, p0), std::logic_error);
}

TEST(SimClusterHooks, DeliveryHooksSeeEveryMessage) {
  SimCluster cluster(2, manual_opts(), 4);
  int requests = 0;
  int replies = 0;
  cluster.add_delivery_hook(
      [&](ProcessId, ProcessId, const core::Message& m) {
        if (std::holds_alternative<core::RequestMsg>(m)) ++requests;
        if (std::holds_alternative<core::ReplyMsg>(m)) ++replies;
      });
  cluster.request(p0, p1);
  cluster.run();
  cluster.reply(p1, p0);
  cluster.run();
  EXPECT_EQ(requests, 1);
  EXPECT_EQ(replies, 1);
}

TEST(SimClusterHooks, MultipleHooksAllFire) {
  SimCluster cluster(2, manual_opts(), 5);
  int a = 0;
  int b = 0;
  cluster.add_delivery_hook(
      [&](ProcessId, ProcessId, const core::Message&) { ++a; });
  cluster.add_delivery_hook(
      [&](ProcessId, ProcessId, const core::Message&) { ++b; });
  cluster.request(p0, p1);
  cluster.run();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST(SimClusterDetection, CallbackSeesOracleAtDeclarationInstant) {
  SimCluster cluster(2, core::Options{}, 6);
  bool checked = false;
  cluster.set_detection_callback([&](const DeadlockEvent& e) {
    checked = true;
    EXPECT_TRUE(cluster.oracle().on_dark_cycle(e.process));
    EXPECT_EQ(e.at, cluster.simulator().now());
  });
  cluster.request(p0, p1);
  cluster.request(p1, p0);
  cluster.run();
  EXPECT_TRUE(checked);
}

TEST(SimClusterDetection, RunUntilDetectionStopsEarly) {
  SimCluster cluster(2, core::Options{}, 7);
  cluster.request(p0, p1);
  cluster.request(p1, p0);
  ASSERT_TRUE(cluster.run_until_detection());
  EXPECT_EQ(cluster.detections().size(), 1u);
  // More events may remain (e.g. WFGD); run drains them.
  cluster.run();
  EXPECT_TRUE(cluster.simulator().idle());
}

TEST(SimClusterStats, TotalsAggregateAcrossProcesses) {
  SimCluster cluster(3, core::Options{}, 8);
  cluster.request(p0, p1);
  cluster.request(p1, p2);
  cluster.request(p2, p0);
  cluster.run();
  const auto total = cluster.total_stats();
  EXPECT_EQ(total.requests_sent, 3u);
  EXPECT_GT(total.probes_sent, 0u);
  // Every ring member initiated on-request; concurrent computations may
  // each succeed (the paper allows several initiators, section 3.2).
  EXPECT_GE(total.deadlocks_declared, 1u);
  EXPECT_LE(total.deadlocks_declared, 3u);
}

// ---- workload driver -----------------------------------------------------------------

TEST(RandomWorkloadTest, OrderedRequestsNeverDeadlock) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    SimCluster cluster(12, manual_opts(), seed);
    WorkloadConfig wl;
    wl.ordered_requests = true;
    wl.issue_until = SimTime::ms(30);
    RandomWorkload workload(cluster, wl, seed);
    workload.start();
    cluster.run();
    EXPECT_FALSE(workload.first_deadlock_at().has_value()) << seed;
    EXPECT_TRUE(cluster.oracle().deadlocked_vertices().empty()) << seed;
    // Everything unwinds: no process left blocked.
    for (std::uint32_t i = 0; i < 12; ++i) {
      EXPECT_FALSE(cluster.process(ProcessId{i}).blocked()) << i;
    }
  }
}

TEST(RandomWorkloadTest, FirstDeadlockTimestampIsExact) {
  SimCluster cluster(8, manual_opts(), 42);
  WorkloadConfig wl;
  wl.mean_interarrival = SimTime::us(100);
  wl.issue_until = SimTime::ms(50);
  RandomWorkload workload(cluster, wl, 43);
  workload.start();
  cluster.run();
  if (workload.first_deadlock_at()) {
    // If the workload says a cycle formed, it must still exist (permanence).
    EXPECT_FALSE(cluster.oracle().deadlocked_vertices().empty());
  } else {
    EXPECT_TRUE(cluster.oracle().deadlocked_vertices().empty());
  }
}

TEST(RandomWorkloadTest, RequestsIssuedCounted) {
  SimCluster cluster(8, manual_opts(), 9);
  WorkloadConfig wl;
  wl.issue_until = SimTime::ms(10);
  RandomWorkload workload(cluster, wl, 10);
  workload.start();
  cluster.run();
  EXPECT_EQ(workload.requests_issued(), cluster.total_stats().requests_sent);
}

TEST(IssueScenario, RejectsScriptsWithReplies) {
  SimCluster cluster(4, manual_opts(), 11);
  graph::Scenario s = graph::make_ring(4, 4);
  s.script.push_back(
      {graph::OpKind::kWhiten, graph::Edge{ProcessId{0}, ProcessId{1}}});
  EXPECT_THROW(issue_scenario(cluster, s), std::invalid_argument);
}

}  // namespace
}  // namespace cmh::runtime
