#include "common/serialize.h"

#include <gtest/gtest.h>

namespace cmh {
namespace {

TEST(Serialize, U8RoundTrip) {
  Writer w;
  w.u8(0);
  w.u8(255);
  Reader r(w.bytes());
  std::uint8_t a = 1;
  std::uint8_t b = 1;
  ASSERT_TRUE(r.u8(a).ok());
  ASSERT_TRUE(r.u8(b).ok());
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 255);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, U32RoundTrip) {
  Writer w;
  w.u32(0);
  w.u32(0xdeadbeef);
  w.u32(0xffffffff);
  Reader r(w.bytes());
  std::uint32_t v = 0;
  ASSERT_TRUE(r.u32(v).ok());
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(r.u32(v).ok());
  EXPECT_EQ(v, 0xdeadbeefu);
  ASSERT_TRUE(r.u32(v).ok());
  EXPECT_EQ(v, 0xffffffffu);
}

TEST(Serialize, U64RoundTrip) {
  Writer w;
  w.u64(0x0123456789abcdefULL);
  Reader r(w.bytes());
  std::uint64_t v = 0;
  ASSERT_TRUE(r.u64(v).ok());
  EXPECT_EQ(v, 0x0123456789abcdefULL);
}

TEST(Serialize, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  ASSERT_EQ(w.bytes().size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(Serialize, StringRoundTrip) {
  Writer w;
  w.str("");
  w.str("hello world");
  Reader r(w.bytes());
  std::string a = "x";
  std::string b;
  ASSERT_TRUE(r.str(a).ok());
  ASSERT_TRUE(r.str(b).ok());
  EXPECT_EQ(a, "");
  EXPECT_EQ(b, "hello world");
}

TEST(Serialize, IdRoundTrip) {
  Writer w;
  w.id(ProcessId{77});
  w.id(SiteId{3});
  Reader r(w.bytes());
  ProcessId p;
  SiteId s;
  ASSERT_TRUE(r.id(p).ok());
  ASSERT_TRUE(r.id(s).ok());
  EXPECT_EQ(p, ProcessId{77});
  EXPECT_EQ(s, SiteId{3});
}

TEST(Serialize, AgentRoundTrip) {
  Writer w;
  w.agent(AgentId{TransactionId{5}, SiteId{9}});
  Reader r(w.bytes());
  AgentId a;
  ASSERT_TRUE(r.agent(a).ok());
  EXPECT_EQ(a, (AgentId{TransactionId{5}, SiteId{9}}));
}

TEST(Serialize, ProbeTagRoundTrip) {
  Writer w;
  w.probe_tag(ProbeTag{ProcessId{2}, 0xffffffffffULL});
  Reader r(w.bytes());
  ProbeTag t;
  ASSERT_TRUE(r.probe_tag(t).ok());
  EXPECT_EQ(t, (ProbeTag{ProcessId{2}, 0xffffffffffULL}));
}

TEST(Serialize, TruncatedU32Fails) {
  const Bytes data{1, 2, 3};
  Reader r(data);
  std::uint32_t v = 0;
  EXPECT_FALSE(r.u32(v).ok());
}

TEST(Serialize, TruncatedU64Fails) {
  const Bytes data{1, 2, 3, 4, 5, 6, 7};
  Reader r(data);
  std::uint64_t v = 0;
  EXPECT_FALSE(r.u64(v).ok());
}

TEST(Serialize, TruncatedStringFails) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow
  w.u8('x');
  Reader r(w.bytes());
  std::string s;
  EXPECT_FALSE(r.str(s).ok());
}

TEST(Serialize, EmptyReaderReportsDone) {
  const Bytes empty;
  Reader r(empty);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.remaining(), 0u);
  std::uint8_t v = 0;
  EXPECT_FALSE(r.u8(v).ok());
}

TEST(Serialize, MixedSequenceRoundTrip) {
  Writer w;
  w.u8(9);
  w.str("tag");
  w.u64(123456789);
  w.id(ResourceId{44});
  Reader r(w.bytes());
  std::uint8_t a = 0;
  std::string s;
  std::uint64_t v = 0;
  ResourceId res;
  ASSERT_TRUE(r.u8(a).ok());
  ASSERT_TRUE(r.str(s).ok());
  ASSERT_TRUE(r.u64(v).ok());
  ASSERT_TRUE(r.id(res).ok());
  EXPECT_EQ(a, 9);
  EXPECT_EQ(s, "tag");
  EXPECT_EQ(v, 123456789u);
  EXPECT_EQ(res, ResourceId{44});
  EXPECT_TRUE(r.done());
}

TEST(Serialize, TakeMovesBuffer) {
  Writer w;
  w.u32(5);
  Bytes b = std::move(w).take();
  EXPECT_EQ(b.size(), 4u);
}

}  // namespace
}  // namespace cmh
