// FlatSet: the sorted small-vector set behind the per-process edge sets.
// Validated against std::set as the reference model, including randomized
// mixed insert/erase sequences.
#include "common/flat_set.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"

namespace cmh {
namespace {

TEST(FlatSet, StartsEmpty) {
  FlatSet<int, 4> s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.begin(), s.end());
  EXPECT_FALSE(s.contains(1));
}

TEST(FlatSet, InsertKeepsSortedOrderAndDedupes) {
  FlatSet<int, 4> s;
  EXPECT_TRUE(s.insert(5));
  EXPECT_TRUE(s.insert(1));
  EXPECT_TRUE(s.insert(3));
  EXPECT_FALSE(s.insert(3));  // duplicate
  const std::vector<int> got(s.begin(), s.end());
  EXPECT_EQ(got, (std::vector<int>{1, 3, 5}));
}

TEST(FlatSet, GrowsPastInlineCapacity) {
  FlatSet<int, 2> s;
  for (int i = 9; i >= 0; --i) EXPECT_TRUE(s.insert(i));
  EXPECT_EQ(s.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(s.contains(i));
  int expected = 0;
  for (const int v : s) EXPECT_EQ(v, expected++);
}

TEST(FlatSet, EraseShiftsAndReports) {
  FlatSet<int, 4> s{1, 2, 3};
  EXPECT_TRUE(s.erase(2));
  EXPECT_FALSE(s.erase(2));
  EXPECT_FALSE(s.erase(7));
  const std::vector<int> got(s.begin(), s.end());
  EXPECT_EQ(got, (std::vector<int>{1, 3}));
}

TEST(FlatSet, EqualityIsElementwise) {
  FlatSet<int, 4> a{3, 1};
  FlatSet<int, 4> b{1, 3};
  FlatSet<int, 4> c{1, 2};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(FlatSet, CopyAndMovePreserveContents) {
  FlatSet<int, 2> original;
  for (int i = 0; i < 8; ++i) original.insert(i);  // forces heap storage
  FlatSet<int, 2> copy(original);
  EXPECT_EQ(copy, original);
  copy.insert(99);
  EXPECT_FALSE(copy == original);  // deep copy, not aliased

  FlatSet<int, 2> moved(std::move(copy));
  EXPECT_TRUE(moved.contains(99));
  EXPECT_EQ(moved.size(), 9u);

  FlatSet<int, 2> assigned;
  assigned = original;
  EXPECT_EQ(assigned, original);
  assigned = std::move(moved);
  EXPECT_TRUE(assigned.contains(99));
}

TEST(FlatSet, RangeInsert) {
  const std::vector<int> values{4, 4, 2, 9, 2};
  FlatSet<int, 4> s;
  s.insert(values.begin(), values.end());
  const std::vector<int> got(s.begin(), s.end());
  EXPECT_EQ(got, (std::vector<int>{2, 4, 9}));
}

TEST(FlatSet, ClearKeepsCapacityUsable) {
  FlatSet<int, 2> s;
  for (int i = 0; i < 20; ++i) s.insert(i);
  s.clear();
  EXPECT_TRUE(s.empty());
  s.insert(42);
  EXPECT_TRUE(s.contains(42));
  EXPECT_EQ(s.size(), 1u);
}

TEST(FlatSet, WorksWithStrongIds) {
  FlatSet<ProcessId, 8> s;
  s.insert(ProcessId{7});
  s.insert(ProcessId{2});
  EXPECT_TRUE(s.contains(ProcessId{7}));
  EXPECT_FALSE(s.contains(ProcessId{3}));
  EXPECT_EQ(s.begin()->value(), 2u);
}

TEST(FlatSet, RandomizedAgainstStdSet) {
  Rng rng(0xFEEDu);
  FlatSet<std::uint32_t, 8> flat;
  std::set<std::uint32_t> reference;
  for (int step = 0; step < 2000; ++step) {
    const std::uint32_t v = static_cast<std::uint32_t>(rng.below(64));
    if (rng.below(3) == 0) {
      EXPECT_EQ(flat.erase(v), reference.erase(v) > 0);
    } else {
      EXPECT_EQ(flat.insert(v), reference.insert(v).second);
    }
    ASSERT_EQ(flat.size(), reference.size());
  }
  EXPECT_TRUE(std::equal(flat.begin(), flat.end(), reference.begin(),
                         reference.end()));
}

}  // namespace
}  // namespace cmh
