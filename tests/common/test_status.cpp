#include "common/status.h"

#include <gtest/gtest.h>

namespace cmh {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s{StatusCode::kNotFound, "no such edge"};
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such edge");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: no such edge");
}

TEST(Status, AllCodesHaveNames) {
  for (const auto code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kUnavailable, StatusCode::kDeadlineExceeded,
        StatusCode::kAborted, StatusCode::kInternal}) {
    EXPECT_STRNE(to_string(code), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  const Result<int> r{42};
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  const Result<int> r{Status{StatusCode::kInternal, "boom"}};
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(Result, ValueOnErrorThrows) {
  const Result<int> r{Status{StatusCode::kInternal, "boom"}};
  EXPECT_THROW((void)r.value(), BadResultAccess);
}

TEST(Result, OkStatusRejected) {
  EXPECT_THROW((Result<int>{Status::Ok()}), std::logic_error);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r{std::string("payload")};
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(Result, ArrowOperator) {
  const Result<std::string> r{std::string("abc")};
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace cmh
