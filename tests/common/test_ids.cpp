#include "common/ids.h"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace cmh {
namespace {

TEST(StrongId, DefaultIsZero) {
  EXPECT_EQ(ProcessId{}.value(), 0u);
  EXPECT_EQ(SiteId{}.value(), 0u);
}

TEST(StrongId, ValueRoundTrip) {
  EXPECT_EQ(ProcessId{42}.value(), 42u);
  EXPECT_EQ(TransactionId{7}.value(), 7u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(ProcessId{1}, ProcessId{2});
  EXPECT_EQ(ProcessId{3}, ProcessId{3});
  EXPECT_NE(ProcessId{3}, ProcessId{4});
  EXPECT_GT(SiteId{9}, SiteId{2});
}

TEST(StrongId, StreamingUsesPrefix) {
  std::ostringstream os;
  os << ProcessId{5} << ' ' << TransactionId{6} << ' ' << SiteId{7} << ' '
     << ResourceId{8};
  EXPECT_EQ(os.str(), "p5 T6 S7 r8");
}

TEST(StrongId, ToString) {
  EXPECT_EQ(ProcessId{12}.to_string(), "p12");
  EXPECT_EQ(ResourceId{0}.to_string(), "r0");
}

TEST(StrongId, Hashable) {
  std::unordered_set<ProcessId> set;
  set.insert(ProcessId{1});
  set.insert(ProcessId{2});
  set.insert(ProcessId{1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(ProcessId{2}));
  EXPECT_FALSE(set.contains(ProcessId{3}));
}

TEST(StrongId, DistinctTagTypesDoNotMix) {
  // Compile-time property: ProcessId and SiteId are different types.
  static_assert(!std::is_same_v<ProcessId, SiteId>);
  static_assert(!std::is_same_v<TransactionId, ResourceId>);
}

TEST(AgentId, OrderingAndEquality) {
  const AgentId a{TransactionId{1}, SiteId{2}};
  const AgentId b{TransactionId{1}, SiteId{3}};
  const AgentId c{TransactionId{2}, SiteId{0}};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (AgentId{TransactionId{1}, SiteId{2}}));
}

TEST(AgentId, Streaming) {
  std::ostringstream os;
  os << AgentId{TransactionId{3}, SiteId{1}};
  EXPECT_EQ(os.str(), "(T3,S1)");
}

TEST(AgentId, Hashable) {
  std::unordered_set<AgentId> set;
  set.insert({TransactionId{1}, SiteId{1}});
  set.insert({TransactionId{1}, SiteId{2}});
  set.insert({TransactionId{1}, SiteId{1}});
  EXPECT_EQ(set.size(), 2u);
}

TEST(ProbeTag, OrderingBySequence) {
  const ProbeTag a{ProcessId{1}, 1};
  const ProbeTag b{ProcessId{1}, 2};
  const ProbeTag c{ProcessId{2}, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);  // initiator dominates
}

TEST(ProbeTag, Streaming) {
  std::ostringstream os;
  os << ProbeTag{ProcessId{4}, 17};
  EXPECT_EQ(os.str(), "(p4,17)");
}

TEST(ProbeTag, Hashable) {
  std::unordered_set<ProbeTag> set;
  set.insert({ProcessId{1}, 1});
  set.insert({ProcessId{1}, 2});
  set.insert({ProcessId{1}, 1});
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace cmh
