#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace cmh {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(29);
  Rng child = parent.fork();
  // Child stream differs from continuing the parent stream.
  Rng parent2(29);
  (void)parent2();  // consume the value fork() consumed
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child() == parent2()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace cmh
