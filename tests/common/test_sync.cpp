#include "common/sync.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace cmh {
namespace {

using namespace std::chrono_literals;

// Probes whether `mu` is free right now.  The try_lock/unlock pair *is* the
// probe, so both the raw-sync lint and the thread-safety analysis are waved
// off -- the capability is provably dropped again before returning.
bool lock_available(Mutex& mu) CMH_NO_THREAD_SAFETY_ANALYSIS {
  if (!mu.try_lock()) return false;  // lint:allow(raw-sync)
  mu.unlock();                       // lint:allow(raw-sync)
  return true;
}

TEST(Sync, MutexLockHoldsForScopeThenReleases) {
  Mutex mu;
  {
    const MutexLock lock(mu);
    EXPECT_FALSE(lock_available(mu));
  }
  EXPECT_TRUE(lock_available(mu));
}

// The guarded state lives in structs below because the annotations only
// apply to data members, not function-local variables.
TEST(Sync, GuardedCounterIsRaceFree) {
  struct State {
    Mutex mu;
    int counter CMH_GUARDED_BY(mu){0};
  } s;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const MutexLock lock(s.mu);
        ++s.counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  const MutexLock lock(s.mu);
  EXPECT_EQ(s.counter, kThreads * kPerThread);
}

TEST(Sync, CondVarPredicateWaitSeesNotify) {
  struct State {
    Mutex mu;
    CondVar cv;
    bool ready CMH_GUARDED_BY(mu){false};
  } s;
  std::thread producer([&] {
    std::this_thread::sleep_for(5ms);
    const MutexLock lock(s.mu);
    s.ready = true;
    s.cv.notify_one();
  });
  {
    const MutexLock lock(s.mu);
    s.cv.wait(s.mu, [&] {
      s.mu.assert_held();  // held by CondVar::wait's contract
      return s.ready;
    });
    EXPECT_TRUE(s.ready);
  }
  producer.join();
}

TEST(Sync, WaitForTimesOutWhenPredicateStaysFalse) {
  Mutex mu;
  CondVar cv;
  const MutexLock lock(mu);
  const auto before = std::chrono::steady_clock::now();
  const bool result = cv.wait_for(mu, 10ms, [&] {
    mu.assert_held();
    return false;
  });
  EXPECT_FALSE(result);
  EXPECT_GE(std::chrono::steady_clock::now() - before, 10ms);
}

TEST(Sync, WaitForReturnsImmediatelyOnTruePredicate) {
  Mutex mu;
  CondVar cv;
  const MutexLock lock(mu);
  EXPECT_TRUE(cv.wait_for(mu, 0ms, [&] {
    mu.assert_held();
    return true;
  }));
}

TEST(Sync, WaitUntilHonoursDeadlineAcrossSpuriousWakeups) {
  struct State {
    Mutex mu;
    CondVar cv;
    int stage CMH_GUARDED_BY(mu){0};
  } s;
  // The producer bumps `stage` twice; only stage 2 satisfies the predicate,
  // so the waiter must loop through an intermediate (spurious-like) wakeup.
  std::thread producer([&] {
    for (int step = 1; step <= 2; ++step) {
      std::this_thread::sleep_for(2ms);
      const MutexLock lock(s.mu);
      s.stage = step;
      s.cv.notify_all();
    }
  });
  {
    const MutexLock lock(s.mu);
    const bool result =
        s.cv.wait_until(s.mu, std::chrono::steady_clock::now() + 5s, [&] {
          s.mu.assert_held();
          return s.stage == 2;
        });
    EXPECT_TRUE(result);
    EXPECT_EQ(s.stage, 2);
  }
  producer.join();
}

}  // namespace
}  // namespace cmh
