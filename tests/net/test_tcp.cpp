#include "net/tcp_transport.h"

#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace cmh::net {
namespace {

using namespace std::chrono_literals;

class Collector {
 public:
  Transport::Handler handler() {
    return [this](NodeId from, const Bytes& payload) {
      const MutexLock lock(mutex_);
      items_.emplace_back(from, payload);
      cv_.notify_all();
    };
  }

  bool wait_for(std::size_t n, std::chrono::milliseconds max = 5000ms) {
    const MutexLock lock(mutex_);
    return cv_.wait_for(mutex_, max, [&] {
      mutex_.assert_held();  // held by CondVar::wait's contract
      return items_.size() >= n;
    });
  }

  std::vector<std::pair<NodeId, Bytes>> items() {
    const MutexLock lock(mutex_);
    return items_;
  }

 private:
  Mutex mutex_;
  CondVar cv_;
  std::vector<std::pair<NodeId, Bytes>> items_ CMH_GUARDED_BY(mutex_);
};

TEST(TcpTransport, AssignsDistinctPorts) {
  TcpTransport t;
  t.add_node({});
  t.add_node({});
  t.start();
  EXPECT_NE(t.port(0), 0);
  EXPECT_NE(t.port(1), 0);
  EXPECT_NE(t.port(0), t.port(1));
  t.stop();
}

TEST(TcpTransport, DeliversMessageWithSenderIdentity) {
  TcpTransport t;
  Collector c;
  const NodeId a = t.add_node({});
  const NodeId b = t.add_node(c.handler());
  t.start();
  t.send(a, b, Bytes{7, 8, 9});
  ASSERT_TRUE(c.wait_for(1));
  EXPECT_EQ(c.items()[0].first, a);
  EXPECT_EQ(c.items()[0].second, (Bytes{7, 8, 9}));
  t.stop();
}

TEST(TcpTransport, EmptyPayloadDelivered) {
  TcpTransport t;
  Collector c;
  const NodeId a = t.add_node({});
  const NodeId b = t.add_node(c.handler());
  t.start();
  t.send(a, b, Bytes{});
  ASSERT_TRUE(c.wait_for(1));
  EXPECT_TRUE(c.items()[0].second.empty());
  t.stop();
}

TEST(TcpTransport, LargeFrameRoundTrip) {
  TcpTransport t;
  Collector c;
  const NodeId a = t.add_node({});
  const NodeId b = t.add_node(c.handler());
  t.start();
  Bytes big(1 << 20);  // 1 MiB
  std::iota(big.begin(), big.end(), 0);
  t.send(a, b, big);
  ASSERT_TRUE(c.wait_for(1));
  EXPECT_EQ(c.items()[0].second, big);
  t.stop();
}

TEST(TcpTransport, PerChannelFifo) {
  TcpTransport t;
  Collector c;
  const NodeId a = t.add_node({});
  const NodeId b = t.add_node(c.handler());
  t.start();
  for (std::uint8_t i = 0; i < 100; ++i) t.send(a, b, Bytes{i});
  ASSERT_TRUE(c.wait_for(100));
  const auto items = c.items();
  for (std::uint8_t i = 0; i < 100; ++i) {
    EXPECT_EQ(items[i].second.at(0), i);
  }
  t.stop();
}

TEST(TcpTransport, BidirectionalTraffic) {
  TcpTransport t;
  Collector ca;
  Collector cb;
  const NodeId a = t.add_node(ca.handler());
  const NodeId b = t.add_node(cb.handler());
  t.start();
  for (int i = 0; i < 10; ++i) {
    t.send(a, b, Bytes{1});
    t.send(b, a, Bytes{2});
  }
  ASSERT_TRUE(ca.wait_for(10));
  ASSERT_TRUE(cb.wait_for(10));
  for (const auto& [from, payload] : ca.items()) EXPECT_EQ(from, b);
  for (const auto& [from, payload] : cb.items()) EXPECT_EQ(from, a);
  t.stop();
}

TEST(TcpTransport, ManyNodesAllPairs) {
  constexpr std::uint32_t kNodes = 5;
  TcpTransport t;
  std::vector<std::unique_ptr<Collector>> collectors;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    collectors.push_back(std::make_unique<Collector>());
    t.add_node(collectors.back()->handler());
  }
  t.start();
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    for (std::uint32_t j = 0; j < kNodes; ++j) {
      if (i != j) t.send(i, j, Bytes{static_cast<std::uint8_t>(i)});
    }
  }
  for (std::uint32_t j = 0; j < kNodes; ++j) {
    ASSERT_TRUE(collectors[j]->wait_for(kNodes - 1)) << "node " << j;
  }
  t.stop();
}

TEST(TcpTransport, ConcurrentSendersOnSameChannelDoNotCorruptFrames) {
  TcpTransport t;
  Collector c;
  const NodeId a = t.add_node({});
  const NodeId b = t.add_node(c.handler());
  t.start();
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int k = 0; k < 4; ++k) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        t.send(a, b, Bytes(17, 0xab));  // fixed-size recognizable frames
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(c.wait_for(4 * kPerThread));
  for (const auto& [from, payload] : c.items()) {
    EXPECT_EQ(payload.size(), 17u);
    EXPECT_EQ(payload[0], 0xab);
  }
  t.stop();
}

TEST(TcpTransport, StopIdempotent) {
  TcpTransport t;
  t.add_node({});
  t.start();
  t.stop();
  t.stop();
  SUCCEED();
}

TEST(TcpTransport, AddNodeAfterStartRejected) {
  TcpTransport t;
  t.add_node({});
  t.start();
  EXPECT_THROW(t.add_node({}), std::logic_error);
  t.stop();
}

// Handlers are read by the deliverer threads without a lock, which is only
// sound while the handler set is frozen -- swapping one mid-flight was a
// data race the thread-safety annotation pass surfaced.
TEST(TcpTransport, SetHandlerAfterStartRejected) {
  TcpTransport t;
  const NodeId a = t.add_node({});
  t.set_handler(a, {});  // fine before start
  t.start();
  EXPECT_THROW(t.set_handler(a, {}), std::logic_error);
  t.stop();
}

TEST(TcpTransport, SendBeforeStartRejected) {
  TcpTransport t;
  const NodeId a = t.add_node({});
  const NodeId b = t.add_node({});
  EXPECT_THROW(t.send(a, b, Bytes{1}), std::logic_error);
}

TEST(TcpTransport, RestartAfterStopRejected) {
  TcpTransport t;
  t.add_node({});
  t.start();
  t.stop();
  EXPECT_THROW(t.start(), std::logic_error);
}

TEST(TcpTransport, OversizedFrameRejected) {
  TcpTransport t;
  const NodeId a = t.add_node({});
  const NodeId b = t.add_node({});
  t.start();
  const Bytes huge(static_cast<std::size_t>(kMaxFrameBytes) + 1);
  EXPECT_THROW(t.send(a, b, huge), std::length_error);
  t.stop();
}

// A dead peer must cost the sender nothing but a counter: frames to it are
// dropped (synchronously inside the backoff window, asynchronously when a
// dial fails), redials are rate-limited, and unrelated channels are
// untouched.
TEST(TcpTransport, DeadPeerDropsFramesWithCappedRedials) {
  TcpTransportConfig config;
  config.reconnect_backoff_initial = std::chrono::milliseconds(50);
  config.reconnect_backoff_max = std::chrono::milliseconds(200);
  TcpTransport t(config);
  Collector c;
  const NodeId a = t.add_node({});
  const NodeId b = t.add_node({});
  const NodeId ok = t.add_node(c.handler());
  t.start();
  t.close_listener(b);

  constexpr std::uint64_t kFrames = 12;
  for (std::uint64_t i = 0; i < kFrames; ++i) t.send(a, b, Bytes{1});
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (t.dropped_frames(a, b) < kFrames &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(t.dropped_frames(a, b), kFrames);
  const TransportIoStats s = t.io_stats();
  EXPECT_GE(s.frames_dropped, kFrames);
  EXPECT_GE(s.connect_attempts, 1u);
  // Backoff gates redials: nowhere near one dial per dropped frame.
  EXPECT_LT(s.connect_attempts, kFrames);

  // The healthy channel from the same source is unaffected.
  t.send(a, ok, Bytes{2});
  ASSERT_TRUE(c.wait_for(1));
  EXPECT_EQ(t.dropped_frames(a, ok), 0u);
  t.stop();
}

// The enqueue-and-wake design means a burst outruns the flusher and many
// frames ride in each sendmsg(): strictly fewer write syscalls than frames,
// and batched reads on the receive side.
TEST(TcpTransport, BurstsCoalesceFramesIntoFewerSyscalls) {
  TcpTransportConfig config;
  config.event_loops = 1;  // exercise the single-loop configuration
  TcpTransport t(config);
  Collector c;
  const NodeId a = t.add_node({});
  const NodeId b = t.add_node(c.handler());
  t.start();
  constexpr std::size_t kFrames = 5000;
  const Bytes payload(32, 0xcd);
  for (std::size_t i = 0; i < kFrames; ++i) t.send(a, b, payload);
  ASSERT_TRUE(c.wait_for(kFrames));
  const TransportIoStats s = t.io_stats();
  EXPECT_GE(s.frames_enqueued, kFrames);
  EXPECT_GE(s.frames_sent, kFrames);  // +1 handshake frame
  EXPECT_LT(s.write_syscalls, s.frames_sent);
  EXPECT_LT(s.read_syscalls, s.frames_delivered);
  EXPECT_EQ(s.frames_dropped, 0u);
  t.stop();
}

}  // namespace
}  // namespace cmh::net
