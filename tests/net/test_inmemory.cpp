#include "net/inmemory_transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace cmh::net {
namespace {

using namespace std::chrono_literals;

/// Collects deliveries with a waitable count.
class Collector {
 public:
  Transport::Handler handler() {
    return [this](NodeId from, const Bytes& payload) {
      const MutexLock lock(mutex_);
      items_.emplace_back(from, payload);
      cv_.notify_all();
    };
  }

  bool wait_for(std::size_t n, std::chrono::milliseconds max = 2000ms) {
    const MutexLock lock(mutex_);
    return cv_.wait_for(mutex_, max, [&] {
      mutex_.assert_held();  // held by CondVar::wait's contract
      return items_.size() >= n;
    });
  }

  std::vector<std::pair<NodeId, Bytes>> items() {
    const MutexLock lock(mutex_);
    return items_;
  }

 private:
  Mutex mutex_;
  CondVar cv_;
  std::vector<std::pair<NodeId, Bytes>> items_ CMH_GUARDED_BY(mutex_);
};

TEST(InMemoryTransport, DeliversMessage) {
  InMemoryTransport t;
  Collector c;
  const NodeId a = t.add_node({});
  const NodeId b = t.add_node(c.handler());
  t.start();
  t.send(a, b, Bytes{1, 2, 3});
  ASSERT_TRUE(c.wait_for(1));
  const auto items = c.items();
  EXPECT_EQ(items[0].first, a);
  EXPECT_EQ(items[0].second, (Bytes{1, 2, 3}));
  t.stop();
}

TEST(InMemoryTransport, PerChannelFifo) {
  InMemoryTransport t;
  Collector c;
  const NodeId a = t.add_node({});
  const NodeId b = t.add_node(c.handler());
  t.start();
  for (std::uint8_t i = 0; i < 100; ++i) t.send(a, b, Bytes{i});
  ASSERT_TRUE(c.wait_for(100));
  const auto items = c.items();
  for (std::uint8_t i = 0; i < 100; ++i) {
    EXPECT_EQ(items[i].second.at(0), i);
  }
  t.stop();
}

TEST(InMemoryTransport, ConcurrentSendersAllDelivered) {
  InMemoryTransport t;
  Collector c;
  const NodeId s1 = t.add_node({});
  const NodeId s2 = t.add_node({});
  const NodeId s3 = t.add_node({});
  const NodeId dst = t.add_node(c.handler());
  t.start();
  constexpr int kPerSender = 200;
  std::vector<std::thread> threads;
  for (const NodeId src : {s1, s2, s3}) {
    threads.emplace_back([&, src] {
      for (int i = 0; i < kPerSender; ++i) {
        t.send(src, dst, Bytes{static_cast<std::uint8_t>(i & 0xff)});
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(c.wait_for(3 * kPerSender));
  EXPECT_EQ(c.items().size(), 3u * kPerSender);
  t.stop();
}

TEST(InMemoryTransport, HandlerSerializedPerNode) {
  InMemoryTransport t;
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  std::atomic<int> handled{0};
  const NodeId a = t.add_node({});
  const NodeId b = t.add_node([&](NodeId, const Bytes&) {
    const int now = ++concurrent;
    int expected = max_concurrent.load();
    while (now > expected &&
           !max_concurrent.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(1ms);
    --concurrent;
    ++handled;
  });
  t.start();
  for (int i = 0; i < 20; ++i) t.send(a, b, Bytes{0});
  while (handled.load() < 20) std::this_thread::sleep_for(1ms);
  EXPECT_EQ(max_concurrent.load(), 1);
  t.stop();
}

TEST(InMemoryTransport, StopDrainsQueuedMessages) {
  InMemoryTransport t;
  std::atomic<int> count{0};
  const NodeId a = t.add_node({});
  const NodeId b = t.add_node([&](NodeId, const Bytes&) { ++count; });
  t.start();
  for (int i = 0; i < 50; ++i) t.send(a, b, Bytes{0});
  t.stop();
  EXPECT_EQ(count.load(), 50);
  (void)b;
}

TEST(InMemoryTransport, StopIdempotent) {
  InMemoryTransport t;
  t.add_node({});
  t.start();
  t.stop();
  t.stop();  // must not hang or crash
  SUCCEED();
}

TEST(InMemoryTransport, AddNodeAfterStartRejected) {
  InMemoryTransport t;
  t.add_node({});
  t.start();
  EXPECT_THROW(t.add_node({}), std::logic_error);
  t.stop();
}

// Handlers are read by the delivery threads without a lock, which is only
// sound while the handler set is frozen -- swapping one mid-flight was a
// data race the thread-safety annotation pass surfaced.
TEST(InMemoryTransport, SetHandlerAfterStartRejected) {
  InMemoryTransport t;
  const NodeId a = t.add_node({});
  t.set_handler(a, {});  // fine before start
  t.start();
  EXPECT_THROW(t.set_handler(a, {}), std::logic_error);
  t.stop();
}

TEST(InMemoryTransport, SendToUnknownNodeThrows) {
  InMemoryTransport t;
  const NodeId a = t.add_node({});
  t.start();
  EXPECT_THROW(t.send(a, 42, Bytes{}), std::out_of_range);
  t.stop();
}

TEST(InMemoryTransport, DrainWaitsForEmptyMailboxes) {
  InMemoryTransport t;
  std::atomic<int> count{0};
  const NodeId a = t.add_node({});
  const NodeId b = t.add_node([&](NodeId, const Bytes&) {
    std::this_thread::sleep_for(1ms);
    ++count;
  });
  t.start();
  for (int i = 0; i < 10; ++i) t.send(a, b, Bytes{0});
  t.drain();
  EXPECT_EQ(count.load(), 10);
  t.stop();
}

TEST(InMemoryTransport, SelfSendDelivered) {
  InMemoryTransport t;
  Collector c;
  const NodeId a = t.add_node(c.handler());
  t.start();
  t.send(a, a, Bytes{9});
  ASSERT_TRUE(c.wait_for(1));
  EXPECT_EQ(c.items()[0].first, a);
  t.stop();
}

}  // namespace
}  // namespace cmh::net
