// Transport conformance suite: every threaded transport must honor the
// paper's communication model (reliable, per-channel FIFO, finite delay)
// plus the interface contracts the runtime layer leans on -- zero-length
// payloads, large frames, per-node handler serialization (atomic steps),
// and a stop() that is safe under concurrent traffic.  The same test body
// runs against all three implementations via a typed fixture, so a new
// transport cannot pass review without passing the model.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "net/blocking_tcp_transport.h"
#include "net/inmemory_transport.h"
#include "net/tcp_transport.h"

namespace cmh::net {
namespace {

using namespace std::chrono_literals;

class Collector {
 public:
  Transport::Handler handler() {
    return [this](NodeId from, const Bytes& payload) {
      const MutexLock lock(mutex_);
      items_.emplace_back(from, payload);
      cv_.notify_all();
    };
  }

  bool wait_for(std::size_t n, std::chrono::milliseconds max = 10000ms) {
    const MutexLock lock(mutex_);
    return cv_.wait_for(mutex_, max, [&] {
      mutex_.assert_held();  // held by CondVar::wait's contract
      return items_.size() >= n;
    });
  }

  std::vector<std::pair<NodeId, Bytes>> items() {
    const MutexLock lock(mutex_);
    return items_;
  }

 private:
  Mutex mutex_;
  CondVar cv_;
  std::vector<std::pair<NodeId, Bytes>> items_ CMH_GUARDED_BY(mutex_);
};

template <typename TransportT>
class TransportConformance : public ::testing::Test {};

struct TransportNames {
  template <typename T>
  static std::string GetName(int) {
    if (std::is_same_v<T, InMemoryTransport>) return "InMemory";
    if (std::is_same_v<T, BlockingTcpTransport>) return "BlockingTcp";
    if (std::is_same_v<T, TcpTransport>) return "EpollTcp";
    return "Unknown";
  }
};

using TransportTypes =
    ::testing::Types<InMemoryTransport, BlockingTcpTransport, TcpTransport>;
TYPED_TEST_SUITE(TransportConformance, TransportTypes, TransportNames);

// Per-channel FIFO with concurrent senders: interleaving across threads is
// unspecified, but each thread's own frames must arrive as an increasing
// subsequence (every send returns before that thread's next begins).
TYPED_TEST(TransportConformance, PerChannelFifoUnderConcurrentSenders) {
  constexpr int kThreads = 4;
  constexpr std::uint32_t kPerThread = 250;
  TypeParam t;
  Collector c;
  const NodeId a = t.add_node({});
  const NodeId b = t.add_node(c.handler());
  t.start();

  std::vector<std::thread> senders;
  for (int k = 0; k < kThreads; ++k) {
    senders.emplace_back([&, k] {
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        Bytes payload(5);
        payload[0] = static_cast<std::uint8_t>(k);
        std::memcpy(payload.data() + 1, &i, sizeof(i));
        t.send(a, b, payload);
      }
    });
  }
  for (auto& th : senders) th.join();
  ASSERT_TRUE(c.wait_for(kThreads * kPerThread));

  std::map<int, std::uint32_t> next_seq;
  for (const auto& [from, payload] : c.items()) {
    EXPECT_EQ(from, a);
    ASSERT_EQ(payload.size(), 5u);
    const int thread = payload[0];
    std::uint32_t seq = 0;
    std::memcpy(&seq, payload.data() + 1, sizeof(seq));
    EXPECT_EQ(seq, next_seq[thread]) << "thread " << thread;
    next_seq[thread] = seq + 1;
  }
  for (int k = 0; k < kThreads; ++k) EXPECT_EQ(next_seq[k], kPerThread);
  t.stop();
}

// Zero-length payloads are legal frames and keep their FIFO slot.
TYPED_TEST(TransportConformance, ZeroLengthPayloadsKeepTheirSlot) {
  TypeParam t;
  Collector c;
  const NodeId a = t.add_node({});
  const NodeId b = t.add_node(c.handler());
  t.start();
  constexpr int kFrames = 20;
  for (int i = 0; i < kFrames; ++i) {
    if (i % 2 == 0) {
      t.send(a, b, Bytes{});
    } else {
      t.send(a, b, Bytes{static_cast<std::uint8_t>(i)});
    }
  }
  ASSERT_TRUE(c.wait_for(kFrames));
  const auto items = c.items();
  for (int i = 0; i < kFrames; ++i) {
    if (i % 2 == 0) {
      EXPECT_TRUE(items[i].second.empty()) << "frame " << i;
    } else {
      ASSERT_EQ(items[i].second.size(), 1u) << "frame " << i;
      EXPECT_EQ(items[i].second[0], static_cast<std::uint8_t>(i));
    }
  }
  t.stop();
}

// Multi-megabyte frames (a sizeable fraction of kMaxFrameBytes) round-trip
// bit-exactly, including one queued burst of them on a single channel.
TYPED_TEST(TransportConformance, LargeFramesRoundTrip) {
  TypeParam t;
  Collector c;
  const NodeId a = t.add_node({});
  const NodeId b = t.add_node(c.handler());
  t.start();
  constexpr std::size_t kSize = 8u << 20;  // 8 MiB
  std::vector<Bytes> sent;
  for (std::size_t k = 0; k < 3; ++k) {
    Bytes big(kSize + k);  // distinct sizes catch framing off-by-ones
    for (std::size_t i = 0; i < big.size(); ++i) {
      big[i] = static_cast<std::uint8_t>(i * 31 + k);
    }
    t.send(a, b, big);
    sent.push_back(std::move(big));
  }
  ASSERT_TRUE(c.wait_for(sent.size()));
  const auto items = c.items();
  for (std::size_t k = 0; k < sent.size(); ++k) {
    EXPECT_EQ(items[k].second, sent[k]) << "frame " << k;
  }
  t.stop();
}

// stop() must be safe while senders are still blasting: no crash, no hang,
// no delivery after stop() returns.  Senders are bounded (not an infinite
// loop) because InMemoryTransport::stop() drains the mailbox -- unbounded
// production would keep it non-empty forever.
TYPED_TEST(TransportConformance, StopDuringHeavyTraffic) {
  constexpr std::uint64_t kPerSender = 20000;
  TypeParam t;
  std::atomic<std::uint64_t> delivered{0};
  const NodeId a = t.add_node({});
  const NodeId b = t.add_node(
      [&](NodeId, const Bytes&) { delivered.fetch_add(1); });
  t.start();

  std::vector<std::thread> senders;
  for (int k = 0; k < 4; ++k) {
    senders.emplace_back([&] {
      const Bytes payload(64, 0x5a);
      for (std::uint64_t i = 0; i < kPerSender; ++i) t.send(a, b, payload);
    });
  }
  // Pull the plug under load: far more frames remain in flight than have
  // been delivered, and the senders are still running.
  while (delivered.load() < 1000) std::this_thread::yield();
  t.stop();
  const std::uint64_t at_stop = delivered.load();
  for (auto& th : senders) th.join();  // sends after stop() must be benign
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(delivered.load(), at_stop) << "delivery after stop() returned";
}

// The paper's atomic-step requirement: one node's handler is never invoked
// concurrently with itself, even with many nodes sending to it at once.
TYPED_TEST(TransportConformance, HandlerNeverConcurrentWithItself) {
  constexpr std::uint32_t kSenders = 4;
  constexpr int kPerSender = 200;
  TypeParam t;
  std::atomic<int> in_handler{0};
  std::atomic<int> overlaps{0};
  std::atomic<int> delivered{0};
  const NodeId sink = t.add_node([&](NodeId, const Bytes&) {
    if (in_handler.fetch_add(1) != 0) overlaps.fetch_add(1);
    std::this_thread::yield();  // widen the window an overlap would need
    in_handler.fetch_sub(1);
    delivered.fetch_add(1);
  });
  std::vector<NodeId> sources;
  for (std::uint32_t k = 0; k < kSenders; ++k) sources.push_back(t.add_node({}));
  t.start();

  std::vector<std::thread> senders;
  for (const NodeId src : sources) {
    senders.emplace_back([&, src] {
      for (int i = 0; i < kPerSender; ++i) t.send(src, sink, Bytes{1});
    });
  }
  for (auto& th : senders) th.join();
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (delivered.load() < static_cast<int>(kSenders) * kPerSender &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(delivered.load(), static_cast<int>(kSenders) * kPerSender);
  EXPECT_EQ(overlaps.load(), 0);
  t.stop();
}

}  // namespace
}  // namespace cmh::net
