#include "check/invariant_auditor.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "core/basic_process.h"
#include "core/messages.h"

namespace cmh::check {

namespace {

[[nodiscard]] std::string set_to_string(const std::vector<ProcessId>& v) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) os << ',';
    os << v[i];
  }
  os << '}';
  return os.str();
}

}  // namespace

std::string Violation::to_string() const {
  std::ostringstream os;
  os << "invariant violation [" << check::to_string(axiom) << "] event#"
     << event_seq << " channel (" << from << "->" << to << ") t=" << at << ": "
     << detail;
  return os.str();
}

std::string format_report(const std::vector<Violation>& vs) {
  std::string out;
  for (const Violation& v : vs) {
    out += v.to_string();
    out += '\n';
  }
  return out;
}

InvariantAuditor::InvariantAuditor(AuditorConfig config) : config_(config) {}

void InvariantAuditor::record(Axiom axiom, ProcessId from, ProcessId to,
                              SimTime at, std::string detail) {
  Violation v{axiom, event_seq_, from, to, at, std::move(detail)};
  violations_.push_back(v);  // retained even in abort mode: report() stays
                             // usable from the catch site
  if (config_.abort_on_violation) throw InvariantViolationError(std::move(v));
}

void InvariantAuditor::on_send(ProcessId from, ProcessId to, BytesView payload,
                               SimTime at) {
  ++event_seq_;
  Channel& ch = channels_[{from, to}];
  ch.in_flight.emplace_back(payload.begin(), payload.end());
  ++ch.sent;

  auto decoded = core::decode(payload);
  if (!decoded.ok()) {
    record(Axiom::kP2, from, to, at,
           "undecodable frame sent: " + decoded.status().to_string());
    return;
  }
  if (std::holds_alternative<core::RequestMsg>(*decoded)) {
    if (const auto st = wfg_.create(from, to); !st.ok()) {
      record(Axiom::kG1, from, to, at,
             "request sent but edge cannot be created: " + st.to_string());
    }
  } else if (std::holds_alternative<core::ReplyMsg>(*decoded)) {
    // A reply from `from` to `to` whitens edge (to, from); the shadow graph
    // enforces both G3 preconditions (edge black, replier active).
    if (const auto st = wfg_.whiten(to, from); !st.ok()) {
      record(Axiom::kG3, from, to, at,
             "reply sent but edge cannot whiten: " + st.to_string());
    }
  } else {
    // Detection traffic (P1): probes ride the sender's outgoing wait-for
    // edges; WFGD sets travel backwards along the sender's incoming black
    // edges.  Neither may touch the graph.
    if (std::holds_alternative<core::ProbeMsg>(*decoded)) {
      if (!wfg_.has_edge(from, to)) {
        record(Axiom::kP1, from, to, at,
               "probe sent along a wait-for edge that does not exist");
      }
    } else if (wfg_.color(to, from) != graph::EdgeColor::kBlack) {
      record(Axiom::kP1, from, to, at,
             "WFGD set sent to a vertex that is not a black predecessor");
    }
  }
}

void InvariantAuditor::on_deliver(ProcessId from, ProcessId to,
                                  BytesView payload, SimTime at) {
  ++event_seq_;
  Channel& ch = channels_[{from, to}];
  if (ch.in_flight.empty()) {
    record(Axiom::kP2, from, to, at,
           "delivered a frame that was never sent on this channel");
  } else {
    const Bytes& head = ch.in_flight.front();
    if (head.size() != payload.size() ||
        !std::equal(head.begin(), head.end(), payload.begin())) {
      record(Axiom::kP2, from, to, at,
             "delivered frame is not the oldest undelivered frame (FIFO "
             "reorder or corruption)");
    }
    ch.in_flight.pop_front();
    ++ch.delivered;
  }

  auto decoded = core::decode(payload);
  if (!decoded.ok()) return;  // already reported at send if it came from us
  if (std::holds_alternative<core::RequestMsg>(*decoded)) {
    if (const auto st = wfg_.blacken(from, to); !st.ok()) {
      record(Axiom::kG2, from, to, at,
             "request delivered but edge cannot blacken: " + st.to_string());
    }
  } else if (std::holds_alternative<core::ReplyMsg>(*decoded)) {
    // Reply from `from` delivered to `to` removes edge (to, from).
    if (const auto st = wfg_.remove(to, from); !st.ok()) {
      record(Axiom::kG4, from, to, at,
             "reply delivered but edge cannot be removed: " + st.to_string());
    }
  }
}

void InvariantAuditor::check_local_view(const core::BasicProcess& process,
                                        SimTime at) {
  const ProcessId p = process.id();
  const auto succ = wfg_.successors(p);
  const auto& waits = process.waits_for();
  if (!std::equal(succ.begin(), succ.end(), waits.begin(), waits.end())) {
    record(Axiom::kP3, p, p, at,
           "local out-edge view " +
               set_to_string({waits.begin(), waits.end()}) +
               " != derived successors " + set_to_string(succ));
    return;
  }
  const auto preds = wfg_.predecessors(p, graph::EdgeColor::kBlack);
  const auto& held = process.held_requests();
  if (!std::equal(preds.begin(), preds.end(), held.begin(), held.end())) {
    record(Axiom::kP3, p, p, at,
           "local black in-edge view " +
               set_to_string({held.begin(), held.end()}) +
               " != derived black predecessors " + set_to_string(preds));
  }
}

void InvariantAuditor::on_declare(ProcessId who, SimTime at) {
  ++event_seq_;
  declared_.insert(who);
  if (!wfg_.on_dark_cycle(who)) {
    record(Axiom::kQRP2, who, who, at,
           "vertex declared deadlock but lies on no dark cycle (false "
           "deadlock)");
  }
}

void InvariantAuditor::finalize(SimTime at) {
  for (const auto& [key, ch] : channels_) {
    if (!ch.in_flight.empty()) {
      record(Axiom::kP4, key.first, key.second, at,
             std::to_string(ch.in_flight.size()) +
                 " frame(s) sent but never delivered (sent=" +
                 std::to_string(ch.sent) +
                 ", delivered=" + std::to_string(ch.delivered) + ")");
    }
  }
  if (!config_.check_qrp1) return;

  // QRP1: no dark cycle may consist solely of vertices that never declared.
  // Restrict the dark subgraph to undeclared vertices and look for any
  // cycle; one found = a deadlock nobody reported.
  std::unordered_map<ProcessId, std::vector<ProcessId>> adj;
  for (const graph::Edge& e : wfg_.edges()) {
    const auto color = wfg_.color(e.from, e.to);
    if (!color || !graph::is_dark(*color)) continue;
    if (declared_.contains(e.from) || declared_.contains(e.to)) continue;
    adj[e.from].push_back(e.to);
  }
  // Iterative coloring DFS: grey = on stack, black = done.
  std::unordered_map<ProcessId, int> state;  // 0 unseen, 1 on-stack, 2 done
  for (const auto& [root, unused] : adj) {
    if (state[root] != 0) continue;
    std::vector<std::pair<ProcessId, std::size_t>> stack{{root, 0}};
    state[root] = 1;
    while (!stack.empty()) {
      auto& [v, idx] = stack.back();
      const auto it = adj.find(v);
      if (it == adj.end() || idx >= it->second.size()) {
        state[v] = 2;
        stack.pop_back();
        continue;
      }
      const ProcessId next = it->second[idx++];
      if (state[next] == 1) {
        record(Axiom::kQRP1, next, next, at,
               "dark cycle through " + next.to_string() +
                   " contains no declared vertex (missed deadlock)");
        return;
      }
      if (state[next] == 0) {
        state[next] = 1;
        stack.emplace_back(next, 0);
      }
    }
  }
}

}  // namespace cmh::check
