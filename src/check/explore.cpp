#include "check/explore.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace cmh::check {

namespace {

// Sleep sets are small sorted vectors of Transition::key() values.
using SleepSet = std::vector<std::uint64_t>;

[[nodiscard]] bool contains(const SleepSet& s, std::uint64_t key) {
  return std::binary_search(s.begin(), s.end(), key);
}

[[nodiscard]] bool subset(const SleepSet& a, const SleepSet& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

void insert_sorted(SleepSet& s, std::uint64_t key) {
  const auto it = std::lower_bound(s.begin(), s.end(), key);
  if (it == s.end() || *it != key) s.insert(it, key);
}

[[nodiscard]] std::uint32_t agent_of(std::uint64_t key) {
  const auto kind = static_cast<Transition::Kind>(key >> 62);
  const auto a = static_cast<std::uint32_t>((key >> 31) & 0x7FFFFFFFu);
  const auto b = static_cast<std::uint32_t>(key & 0x7FFFFFFFu);
  return kind == Transition::Kind::kDeliver ? b : a;
}

struct Dfs {
  System& sys;
  ExploreConfig cfg;
  ExploreResult res;
  std::vector<Transition> path;
  // describe() is only meaningful in a transition's pre-state (a script
  // step's label is the op about to run), so labels are recorded at
  // execution time, not reconstructed post-mortem.
  std::vector<std::string> path_desc;
  // fingerprint -> sleep sets it was explored with.  A revisit is pruned
  // only if some stored sleep set is a subset of the current one (the
  // stored visit explored at least as many transitions as we would).
  std::unordered_map<std::uint64_t, std::vector<SleepSet>> visited;

  void replay() {
    sys.reset();
    for (const Transition& t : path) sys.execute(t);
  }

  void fail_now() {
    res.violation = sys.violations().front();
    res.trace = path_desc;
  }

  // Explores the current state; returns true to abort the whole search
  // (first violation found).
  bool visit(SleepSet sleep) {
    if (!sys.violations().empty()) {
      fail_now();
      return true;
    }
    auto& stored = visited[sys.fingerprint()];
    for (const SleepSet& s : stored) {
      if (subset(s, sleep)) return false;
    }
    if (res.states_visited >= cfg.max_states) {
      res.complete = false;
      return false;
    }
    stored.push_back(sleep);
    ++res.states_visited;

    const std::vector<Transition> ts = sys.enabled();
    if (ts.empty()) {
      sys.check_final();
      if (!sys.violations().empty()) {
        fail_now();
        return true;
      }
      return false;
    }
    if (path.size() >= cfg.max_depth) {
      res.complete = false;
      return false;
    }

    // `asleep` accumulates: the inherited sleep set plus every sibling
    // already fully explored from this state.
    SleepSet asleep = std::move(sleep);
    for (const Transition& t : ts) {
      if (cfg.sleep_sets && contains(asleep, t.key())) {
        ++res.sleep_pruned;
        continue;
      }
      SleepSet child;
      if (cfg.sleep_sets) {
        // Dependent (same-agent) transitions wake up in the child.
        for (const std::uint64_t key : asleep) {
          if (agent_of(key) != t.agent()) child.push_back(key);
        }
      }
      path.push_back(t);
      path_desc.push_back(sys.describe(t));
      sys.execute(t);
      ++res.transitions_executed;
      if (visit(std::move(child))) return true;
      path.pop_back();
      path_desc.pop_back();
      replay();
      if (cfg.sleep_sets) insert_sorted(asleep, t.key());
    }
    return false;
  }
};

}  // namespace

ExploreResult explore(System& system, ExploreConfig config) {
  Dfs dfs{system, config, {}, {}, {}, {}};
  system.reset();
  dfs.visit({});
  return std::move(dfs.res);
}

}  // namespace cmh::check
