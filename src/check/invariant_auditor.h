// InvariantAuditor -- an always-on runtime monitor for the paper's axioms.
//
// The auditor is fed the raw message traffic of a run (every send and every
// delivery, at the instant it happens) and *re-derives* the colored wait-for
// graph from that history alone:
//   request sent       -> create grey edge   (G1)
//   request delivered  -> blacken            (G2)
//   reply sent         -> whiten             (G3)
//   reply delivered    -> remove             (G4)
// Any transition the shadow graph rejects is a violation of the matching
// graph axiom.  Because the derivation is independent of both the algorithm
// state and SimCluster's own oracle, it catches regressions in either: a
// protocol bug and an oracle bug disagree with the message history in the
// same observable way.
//
// On top of the graph axioms the auditor checks the process axioms:
//   P1  probes/WFGD messages travel only along edges the sender has (and by
//       construction never mutate the shadow graph),
//   P2  per-channel FIFO delivery (each delivered frame must be the oldest
//       undelivered frame on its channel, byte-for-byte),
//   P3  optional projection check: a process's local view (waits_for /
//       held_requests) equals the shadow graph's projection after every
//       delivery it handles,
//   P4  at quiescence no channel still holds sent-but-undelivered frames,
// and the probe-computation properties:
//   QRP2  at every declaration instant the declaring vertex lies on a dark
//         cycle of the shadow graph,
//   QRP1  at quiescence there is no dark cycle consisting solely of vertices
//         that never declared (only meaningful when the initiation policy
//         guarantees a computation per edge creation, i.e. anything but
//         kManual -- gate with AuditorConfig::check_qrp1).
//
// The auditor is transport-agnostic: SimCluster attaches it through the
// simulator's SimObserver hook, and the exhaustive interleaving checker
// (explore.h) feeds it directly.  It is a debug/verification tool -- the
// bookkeeping copies every in-flight frame -- so Release builds leave it off
// unless SimClusterConfig::audit asks for it.
#pragma once

#include <deque>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "check/axioms.h"
#include "common/serialize.h"
#include "graph/wait_for_graph.h"

namespace cmh::core {
class BasicProcess;
}

namespace cmh::check {

struct AuditorConfig {
  /// Throw InvariantViolationError at the first violation (actionable for
  /// interactive runs); false accumulates into violations()/report(), which
  /// is what the exhaustive checker and CI log collection want.
  bool abort_on_violation{true};
  /// Enable the end-of-run QRP1 (no missed dark cycle) oracle.  Only sound
  /// when every edge creation initiates a probe computation; harnesses
  /// running InitiationMode::kManual must turn it off.
  bool check_qrp1{true};
};

class InvariantAuditor {
 public:
  explicit InvariantAuditor(AuditorConfig config = {});

  // ---- event feed (call at the true instants of the run) ------------------

  /// A frame was handed to the transport.  Applies G1/G3 transitions and the
  /// P1 edge-existence check; records the frame for FIFO/P4 tracking.
  void on_send(ProcessId from, ProcessId to, BytesView payload, SimTime at);

  /// A frame was handed to the receiver.  Applies G2/G4 transitions and the
  /// P2 FIFO check.  Call *before* the receiving process handles the frame,
  /// so the shadow graph transitions at the same instant the model says the
  /// edge changes color.
  void on_deliver(ProcessId from, ProcessId to, BytesView payload, SimTime at);

  /// P3 projection: call after `process` finished handling a delivery (its
  /// local view must equal the shadow graph's projection between events).
  void check_local_view(const core::BasicProcess& process, SimTime at);

  /// A vertex declared "I am deadlocked" (step A1).  Applies the QRP2 check
  /// at this exact instant.
  void on_declare(ProcessId who, SimTime at);

  /// End-of-run checks: P4 (no lost frames) and, if configured, QRP1.
  /// Call when the run is quiescent (transport drained).
  void finalize(SimTime at);

  // ---- results ------------------------------------------------------------

  [[nodiscard]] const graph::WaitForGraph& derived() const { return wfg_; }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::string report() const {
    return format_report(violations_);
  }
  /// Observed events so far (sends + deliveries + declarations); the
  /// event_seq of Violation indexes this stream.
  [[nodiscard]] std::uint64_t events_observed() const { return event_seq_; }
  [[nodiscard]] const std::set<ProcessId>& declared() const {
    return declared_;
  }

 private:
  struct Channel {
    /// Sent-but-undelivered frames, oldest first (byte copies: the P2 check
    /// compares the delivered frame against the recorded head).
    std::deque<Bytes> in_flight;
    std::uint64_t sent{0};
    std::uint64_t delivered{0};
  };

  void record(Axiom axiom, ProcessId from, ProcessId to, SimTime at,
              std::string detail);

  AuditorConfig config_;
  graph::WaitForGraph wfg_;
  std::map<std::pair<ProcessId, ProcessId>, Channel> channels_;
  std::set<ProcessId> declared_;
  std::vector<Violation> violations_;
  std::uint64_t event_seq_{0};
};

}  // namespace cmh::check
