#include "check/basic_system.h"

#include <algorithm>
#include <stdexcept>

#include "core/messages.h"

namespace cmh::check {

BasicSystem::BasicSystem(BasicScenario scenario)
    : scenario_(std::move(scenario)) {
  if (scenario_.scripts.size() > scenario_.n) {
    throw std::invalid_argument("BasicSystem: more scripts than processes");
  }
  scenario_.scripts.resize(scenario_.n);
  reset();
}

void BasicSystem::reset() {
  auditor_ = std::make_unique<InvariantAuditor>(AuditorConfig{
      // Accumulate: the explorer polls violations() and stops itself, which
      // keeps the replay machinery exception-free.
      .abort_on_violation = false,
      .check_qrp1 =
          scenario_.options.initiation != core::InitiationMode::kManual});
  channels_.clear();
  script_pos_.assign(scenario_.n, 0);
  steps_ = 0;
  reordered_ = false;
  processes_.clear();
  processes_.reserve(scenario_.n);
  for (std::uint32_t i = 0; i < scenario_.n; ++i) {
    const ProcessId id{i};
    auto process = std::make_unique<core::BasicProcess>(
        id,
        [this, id](ProcessId to, BytesView payload) {
          send_frame(id, to, payload);
        },
        scenario_.options);
    process->set_deadlock_callback([this, id](const ProbeTag&) {
      auditor_->on_declare(id, now());
    });
    processes_.push_back(std::move(process));
  }
}

void BasicSystem::send_frame(ProcessId from, ProcessId to, BytesView payload) {
  if (scenario_.faults.swallow_probes_from == from && !payload.empty() &&
      payload[0] == core::wire::kProbe) {
    return;  // vanishes before any bookkeeping -- not even the auditor knows
  }
  auditor_->on_send(from, to, payload, now());
  if (scenario_.faults.drop_replies_from == from && !payload.empty() &&
      payload[0] == core::wire::kReply) {
    return;  // lost in transit; the auditor's P4 oracle will notice
  }
  auto& ch = channels_[{from, to}];
  ch.emplace_back(payload.begin(), payload.end());
  if (!reordered_ && scenario_.faults.reorder_channel &&
      scenario_.faults.reorder_channel->first == from &&
      scenario_.faults.reorder_channel->second == to && ch.size() == 2) {
    std::swap(ch[0], ch[1]);
    reordered_ = true;
  }
}

bool BasicSystem::script_op_enabled(std::uint32_t p) const {
  const auto& script = scenario_.scripts[p];
  if (script_pos_[p] >= script.size()) return false;
  const ScriptOp& op = script[script_pos_[p]];
  const core::BasicProcess& process = *processes_[p];
  switch (op.kind) {
    case ScriptOp::Kind::kRequest:
      // One outstanding request per peer (G1); churn scripts wait for the
      // previous edge to clear.
      return !process.waits_for().contains(op.peer);
    case ScriptOp::Kind::kReply:
      // G3: only an active process holding the request may reply.
      return process.held_requests().contains(op.peer) && !process.blocked();
    case ScriptOp::Kind::kInject:
      return true;
  }
  return false;
}

std::vector<Transition> BasicSystem::enabled() {
  std::vector<Transition> ts;
  for (const auto& [key, ch] : channels_) {
    if (!ch.empty()) {
      ts.push_back(Transition{Transition::Kind::kDeliver, key.first.value(),
                              key.second.value()});
    }
  }
  for (std::uint32_t p = 0; p < scenario_.n; ++p) {
    if (script_op_enabled(p)) {
      ts.push_back(Transition{Transition::Kind::kScript, p, p});
    }
  }
  return ts;
}

void BasicSystem::execute(const Transition& t) {
  ++steps_;
  if (t.kind == Transition::Kind::kDeliver) {
    const ProcessId from{t.a};
    const ProcessId to{t.b};
    auto& ch = channels_.at({from, to});
    const Bytes frame = std::move(ch.front());
    ch.pop_front();
    auditor_->on_deliver(from, to, frame, now());
    const auto st = processes_[t.b]->on_message(from, frame);
    if (!st.ok()) {
      throw std::logic_error("BasicSystem: on_message: " + st.to_string());
    }
    auditor_->check_local_view(*processes_[t.b], now());
    return;
  }
  const ScriptOp& op = scenario_.scripts[t.a][script_pos_[t.a]++];
  switch (op.kind) {
    case ScriptOp::Kind::kRequest:
      processes_[t.a]->send_request(op.peer);
      break;
    case ScriptOp::Kind::kReply:
      processes_[t.a]->send_reply(op.peer);
      break;
    case ScriptOp::Kind::kInject:
      send_frame(ProcessId{t.a}, op.peer, op.payload);
      break;
  }
}

std::uint64_t BasicSystem::fingerprint() {
  std::uint64_t h = 0x243F6A8885A308D3ULL;  // pi, nothing-up-my-sleeve
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (std::uint32_t p = 0; p < scenario_.n; ++p) {
    mix(script_pos_[p]);
    processes_[p]->mix_state_hash(h);
  }
  for (const auto& [key, ch] : channels_) {
    if (ch.empty()) continue;
    mix(key.first.value());
    mix(key.second.value());
    for (const Bytes& frame : ch) {
      for (const std::uint8_t byte : frame) mix(byte);
      mix(0xF1);
    }
    mix(0xF2);
  }
  for (const ProcessId p : auditor_->declared()) mix(p.value());
  mix(static_cast<std::uint64_t>(reordered_));
  return h;
}

void BasicSystem::check_final() { auditor_->finalize(now()); }

std::string BasicSystem::describe(const Transition& t) const {
  if (t.kind == Transition::Kind::kDeliver) {
    return "deliver " + ProcessId{t.a}.to_string() + "->" +
           ProcessId{t.b}.to_string();
  }
  // Called in the pre-state (see explore.cpp): script_pos_ names the op
  // about to execute.
  const std::size_t pos = script_pos_[t.a];
  const auto& script = scenario_.scripts[t.a];
  std::string op = "script " + ProcessId{t.a}.to_string();
  if (pos >= script.size()) return op;
  const ScriptOp& next = script[pos];
  switch (next.kind) {
    case ScriptOp::Kind::kRequest:
      return op + " request->" + next.peer.to_string();
    case ScriptOp::Kind::kReply:
      return op + " reply->" + next.peer.to_string();
    case ScriptOp::Kind::kInject:
      return op + " inject->" + next.peer.to_string();
  }
  return op;
}

}  // namespace cmh::check
