// Exhaustive interleaving checker -- a DFS model checker over delivery and
// script orders of small configurations.
//
// The single golden trace a simulator run produces cannot exercise the
// grey/white race windows the paper reasons about; this explorer can.  A
// System exposes its enabled transitions (message deliveries, workload script
// steps), executes them on demand and fingerprints its state; the explorer
// enumerates every reachable schedule depth-first, using
//   * replay-based backtracking (reset + re-execute the path prefix; no
//     state snapshots, so systems only need reset() + execute()),
//   * 64-bit state fingerprints to cut revisits, and
//   * sleep-set partial-order reduction (Godefroid) to skip schedules that
//     only permute independent transitions.
//
// Soundness notes (the argument DESIGN.md section 7.1 spells out):
//   * Two transitions are independent iff they execute on different agents:
//     a delivery mutates only the receiver's state, the consumed channel's
//     head and tails of the receiver's out-channels; a script step mutates
//     only its process and that process's out-channel tails.  FIFO head
//     consumption and tail appends commute, so differently-agented
//     transitions commute and cannot enable/disable one another's agent.
//   * Sleep sets never remove *states* from the exploration, only redundant
//     in-edges; every reachable state is still visited, so per-state
//     invariants (the auditor runs inside execute()) lose nothing.  A
//     fingerprint-cached state is re-explored unless a strictly weaker
//     (subset) sleep set already covered it.
//   * Fingerprints are hash-compacted (64-bit): a collision could silently
//     merge two distinct states.  With <= 2^20 states per scenario the
//     collision odds are ~2^-24 per run -- acceptable for a test oracle and
//     the standard trade of stateful exploration.
// Termination: scenarios have finite scripts, probes are forwarded at most
// once per computation per edge, and WFGD sets grow monotonically with a
// never-send-twice gate, so the reachable state space is finite.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "check/axioms.h"

namespace cmh::check {

/// One schedulable step.  `a`/`b` identify the step within the current
/// state: deliveries name the (src, dst) channel (always its FIFO head);
/// script steps name the acting process in `a` (b == a).
struct Transition {
  enum class Kind : std::uint8_t { kDeliver, kScript };

  Kind kind{Kind::kDeliver};
  std::uint32_t a{0};
  std::uint32_t b{0};

  /// The one agent whose local state this transition mutates -- the receiver
  /// for deliveries, the acting process for script steps.  Transitions with
  /// different agents are independent (see header comment).
  [[nodiscard]] std::uint32_t agent() const {
    return kind == Kind::kDeliver ? b : a;
  }

  /// Dense encoding used for sleep sets and trace storage.
  [[nodiscard]] std::uint64_t key() const {
    return (static_cast<std::uint64_t>(kind) << 62) |
           (static_cast<std::uint64_t>(a) << 31) | b;
  }

  friend constexpr auto operator<=>(const Transition&,
                                    const Transition&) = default;
};

/// What the explorer drives.  Implementations must make reset() restore the
/// exact initial state (including any embedded auditor) and must report
/// enabled() in a deterministic order.
class System {
 public:
  virtual ~System() = default;

  virtual void reset() = 0;
  [[nodiscard]] virtual std::vector<Transition> enabled() = 0;
  virtual void execute(const Transition& t) = 0;
  /// Fingerprint of the current global state (see hash-compaction caveat).
  [[nodiscard]] virtual std::uint64_t fingerprint() = 0;
  /// Quiescence oracles (P4, QRP1); called at every deadlocked-or-done leaf.
  virtual void check_final() = 0;
  /// Violations recorded so far on the current path (accumulate mode).
  [[nodiscard]] virtual const std::vector<Violation>& violations() const = 0;
  [[nodiscard]] virtual std::string describe(const Transition& t) const = 0;
};

struct ExploreConfig {
  /// Abandon (incomplete, not failed) beyond this many distinct states.
  std::uint64_t max_states{1u << 20};
  /// Hard cap on path length; hitting it marks the result incomplete.
  std::size_t max_depth{4096};
  /// Disable sleep-set pruning (debugging aid: full interleaving product).
  bool sleep_sets{true};
};

struct ExploreResult {
  std::uint64_t states_visited{0};
  std::uint64_t transitions_executed{0};
  std::uint64_t sleep_pruned{0};
  /// First violation found, if any; exploration stops at it.
  std::optional<Violation> violation;
  /// Human-readable schedule reaching the violation (one step per line).
  std::vector<std::string> trace;
  /// True iff the full (pruned) state space was explored without caps.
  bool complete{true};

  [[nodiscard]] bool ok() const { return !violation.has_value(); }
};

/// Runs the DFS.  The system is left in the last-explored state; callers
/// that want it pristine should reset() afterwards.
[[nodiscard]] ExploreResult explore(System& system, ExploreConfig config = {});

}  // namespace cmh::check
