// DDB-model harness for the exhaustive interleaving checker.
//
// Hosts N ddb::Controller instances over explicit per-site-pair FIFO deques,
// driven by per-site scripts of lock/finish steps (each transaction is homed
// at its script's site and acts sequentially: the next step becomes
// schedulable only once every earlier lock was granted).  Detection runs
// with kOnBlock initiation -- fully synchronous, so no timers exist and
// delivery order is the only nondeterminism.
//
// Checked properties (reported in the shared Axiom vocabulary):
//   QRP2  a controller declares `victim` only while the victim is truly
//         deadlocked per the transaction-level oracle (intra-controller wait
//         edges from every lock manager, plus the waits implied by in-flight
//         grey requests -- the same construction as ddb::Cluster's oracle,
//         recomputed here from harness bookkeeping),
//   QRP1  at quiescence, if any transaction is oracle-deadlocked, some
//         deadlocked transaction was declared.  (The paper promises one
//         declaration per cycle -- the last closer's computation -- not one
//         per member; "some declared" equals that guarantee for the
//         single-cycle canonical scenarios.)
// Scenarios run with abort_victim = false so a detected deadlock stays
// observable instead of being resolved mid-exploration.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "check/explore.h"
#include "ddb/controller.h"

namespace cmh::check {

struct DdbOp {
  enum class Kind : std::uint8_t { kLock, kFinish };

  Kind kind{Kind::kLock};
  TransactionId txn{};
  ResourceId resource{};  // kLock only
  ddb::LockMode mode{ddb::LockMode::kWrite};

  static DdbOp lock(TransactionId txn, ResourceId resource,
                    ddb::LockMode mode = ddb::LockMode::kWrite) {
    return {Kind::kLock, txn, resource, mode};
  }
  static DdbOp finish(TransactionId txn) {
    return {Kind::kFinish, txn, ResourceId{}, ddb::LockMode::kWrite};
  }
};

struct DdbScenario {
  std::string name;
  std::uint32_t n_sites{0};
  /// resource_owner[r.value()] = managing site of resource r.
  std::vector<SiteId> resource_owner;
  /// scripts[s] = ordered steps issued at site s; each step's transaction is
  /// homed at s.
  std::vector<std::vector<DdbOp>> scripts;
  ddb::DdbOptions options{.initiation = ddb::DdbInitiation::kOnBlock,
                          .abort_victim = false};
};

class DdbSystem final : public System {
 public:
  explicit DdbSystem(DdbScenario scenario);

  void reset() override;
  [[nodiscard]] std::vector<Transition> enabled() override;
  void execute(const Transition& t) override;
  [[nodiscard]] std::uint64_t fingerprint() override;
  void check_final() override;
  [[nodiscard]] const std::vector<Violation>& violations() const override {
    return violations_;
  }
  [[nodiscard]] std::string describe(const Transition& t) const override;

  /// Transactions some controller declared deadlocked (exploration-path
  /// local, like all state here).
  [[nodiscard]] const std::set<TransactionId>& declared() const {
    return declared_;
  }

 private:
  [[nodiscard]] SimTime now() const { return SimTime::us(steps_); }
  [[nodiscard]] bool script_op_enabled(std::uint32_t s) const;
  [[nodiscard]] std::vector<TransactionId> oracle_deadlocked() const;
  void record(Axiom axiom, TransactionId txn, std::string detail);

  DdbScenario scenario_;
  std::vector<std::unique_ptr<ddb::Controller>> controllers_;
  std::map<std::pair<SiteId, SiteId>, std::deque<Bytes>> channels_;
  std::vector<std::size_t> script_pos_;
  std::int64_t steps_{0};
  std::uint64_t event_seq_{0};

  // Harness-side transaction bookkeeping for the oracle (what ddb::Cluster
  // tracks in txns_): requested resources with modes, granted set, home.
  struct TxnState {
    SiteId home{};
    std::map<ResourceId, ddb::LockMode> requested;
    std::set<ResourceId> granted;
    bool finished{false};
  };
  std::unordered_map<TransactionId, TxnState> txns_;
  /// Transactions with an issued-but-ungranted lock (their agent is blocked
  /// and may not issue further steps).
  std::set<TransactionId> awaiting_grant_;
  std::set<TransactionId> declared_;
  std::vector<Violation> violations_;
};

}  // namespace cmh::check
