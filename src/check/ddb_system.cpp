#include "check/ddb_system.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>

namespace cmh::check {

DdbSystem::DdbSystem(DdbScenario scenario) : scenario_(std::move(scenario)) {
  if (scenario_.scripts.size() > scenario_.n_sites) {
    throw std::invalid_argument("DdbSystem: more scripts than sites");
  }
  scenario_.scripts.resize(scenario_.n_sites);
  if (scenario_.options.initiation == ddb::DdbInitiation::kDelayed) {
    throw std::invalid_argument(
        "DdbSystem: kDelayed needs timers; exploration is timer-free (use "
        "kOnBlock or kManual)");
  }
  reset();
}

void DdbSystem::reset() {
  channels_.clear();
  script_pos_.assign(scenario_.n_sites, 0);
  steps_ = 0;
  event_seq_ = 0;
  txns_.clear();
  awaiting_grant_.clear();
  declared_.clear();
  violations_.clear();
  controllers_.clear();
  controllers_.reserve(scenario_.n_sites);
  for (std::uint32_t s = 0; s < scenario_.n_sites; ++s) {
    const SiteId site{s};
    auto controller = std::make_unique<ddb::Controller>(
        site, scenario_.n_sites,
        [this, site](SiteId to, BytesView payload) {
          ++event_seq_;
          channels_[{site, to}].emplace_back(payload.begin(), payload.end());
        },
        [this](ResourceId r) { return scenario_.resource_owner.at(r.value()); },
        scenario_.options,
        [](SimTime, std::function<void()>) {
          throw std::logic_error(
              "DdbSystem: a controller scheduled a timer in a timer-free "
              "exploration");
        });
    controller->set_grant_callback([this](TransactionId txn, ResourceId r) {
      txns_.at(txn).granted.insert(r);
      awaiting_grant_.erase(txn);
    });
    controller->set_deadlock_callback(
        [this](TransactionId victim, const ddb::DdbProbeTag&) {
          declared_.insert(victim);
          const auto oracle = oracle_deadlocked();
          if (std::find(oracle.begin(), oracle.end(), victim) ==
              oracle.end()) {
            record(Axiom::kQRP2, victim,
                   "controller declared " + victim.to_string() +
                       " deadlocked, but the transaction-wait oracle has it "
                       "on no cycle (false deadlock)");
          }
        });
    controllers_.push_back(std::move(controller));
  }
}

void DdbSystem::record(Axiom axiom, TransactionId txn, std::string detail) {
  // Channel endpoints are meaningless for transaction-level findings; stash
  // the transaction id in both slots of the shared Violation shape.
  violations_.push_back(Violation{axiom, event_seq_,
                                  ProcessId{txn.value()},
                                  ProcessId{txn.value()}, now(),
                                  std::move(detail)});
}

bool DdbSystem::script_op_enabled(std::uint32_t s) const {
  const auto& script = scenario_.scripts[s];
  if (script_pos_[s] >= script.size()) return false;
  const DdbOp& op = script[script_pos_[s]];
  // The transaction's agent acts sequentially: no new step while a lock of
  // its is outstanding, and none ever again once it was declared deadlocked
  // (a deadlocked agent never proceeds).
  if (awaiting_grant_.contains(op.txn) || declared_.contains(op.txn)) {
    return false;
  }
  const auto it = txns_.find(op.txn);
  if (it != txns_.end() && it->second.finished) return false;
  return true;
}

std::vector<Transition> DdbSystem::enabled() {
  std::vector<Transition> ts;
  for (const auto& [key, ch] : channels_) {
    if (!ch.empty()) {
      ts.push_back(Transition{Transition::Kind::kDeliver, key.first.value(),
                              key.second.value()});
    }
  }
  for (std::uint32_t s = 0; s < scenario_.n_sites; ++s) {
    if (script_op_enabled(s)) {
      ts.push_back(Transition{Transition::Kind::kScript, s, s});
    }
  }
  return ts;
}

void DdbSystem::execute(const Transition& t) {
  ++steps_;
  ++event_seq_;
  if (t.kind == Transition::Kind::kDeliver) {
    const SiteId from{t.a};
    const SiteId to{t.b};
    auto& ch = channels_.at({from, to});
    const Bytes frame = std::move(ch.front());
    ch.pop_front();
    const auto st = controllers_[t.b]->on_message(from, frame);
    if (!st.ok()) {
      throw std::logic_error("DdbSystem: on_message: " + st.to_string());
    }
    return;
  }
  const DdbOp& op = scenario_.scripts[t.a][script_pos_[t.a]++];
  ddb::Controller& home = *controllers_[t.a];
  if (op.kind == DdbOp::Kind::kLock) {
    TxnState& txn = txns_[op.txn];
    txn.home = SiteId{t.a};
    txn.requested[op.resource] = op.mode;
    if (home.lock(op.txn, op.resource, op.mode)) {
      txn.granted.insert(op.resource);
    } else {
      awaiting_grant_.insert(op.txn);
    }
  } else {
    txns_[op.txn].finished = true;
    home.finish(op.txn);
  }
}

std::vector<TransactionId> DdbSystem::oracle_deadlocked() const {
  // Same construction as ddb::Cluster::oracle_deadlocked(): every site's
  // intra-controller wait edges, plus the waits implied by in-flight (grey)
  // requests -- a request issued but not yet queued at the owner will wait
  // on the owner's current conflicting holders/waiters, and grey edges are
  // dark (they make cycles permanent too).
  std::unordered_map<TransactionId, std::vector<TransactionId>> adj;
  std::set<TransactionId> nodes;
  for (const auto& c : controllers_) {
    for (const auto& [w, b] : c->intra_edges()) {
      adj[w].push_back(b);
      nodes.insert(w);
      nodes.insert(b);
    }
  }
  for (const auto& [txn, state] : txns_) {
    if (state.finished) continue;
    for (const auto& [resource, mode] : state.requested) {
      if (state.granted.contains(resource)) continue;
      const auto& owner =
          *controllers_.at(scenario_.resource_owner.at(resource.value()).value());
      if (owner.locks().waiting(resource, txn)) continue;  // already queued
      if (owner.locks().holds(resource, txn)) continue;    // grant in flight
      for (const TransactionId blocker :
           owner.locks().blockers(resource, txn, mode)) {
        adj[txn].push_back(blocker);
        nodes.insert(txn);
        nodes.insert(blocker);
      }
    }
  }
  std::vector<TransactionId> result;
  for (const TransactionId t : nodes) {
    std::set<TransactionId> seen;
    std::deque<TransactionId> frontier{t};
    bool cycle = false;
    while (!frontier.empty() && !cycle) {
      const TransactionId u = frontier.front();
      frontier.pop_front();
      const auto it = adj.find(u);
      if (it == adj.end()) continue;
      for (const TransactionId v : it->second) {
        if (v == t) {
          cycle = true;
          break;
        }
        if (seen.insert(v).second) frontier.push_back(v);
      }
    }
    if (cycle) result.push_back(t);
  }
  return result;
}

std::uint64_t DdbSystem::fingerprint() {
  std::uint64_t h = 0x13198A2E03707344ULL;  // pi again, distinct seed
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (std::uint32_t s = 0; s < scenario_.n_sites; ++s) {
    mix(script_pos_[s]);
    controllers_[s]->mix_state_hash(h);
  }
  for (const auto& [key, ch] : channels_) {
    if (ch.empty()) continue;
    mix(key.first.value());
    mix(key.second.value());
    for (const Bytes& frame : ch) {
      for (const std::uint8_t byte : frame) mix(byte);
      mix(0xF1);
    }
    mix(0xF2);
  }
  std::vector<TransactionId> ids;
  ids.reserve(txns_.size());
  for (const auto& [txn, unused] : txns_) ids.push_back(txn);
  std::sort(ids.begin(), ids.end());
  for (const TransactionId t : ids) {
    const TxnState& state = txns_.at(t);
    mix(t.value());
    mix(state.home.value());
    for (const auto& [r, mode] : state.requested) {
      mix(r.value());
      mix(static_cast<std::uint64_t>(mode));
      mix(state.granted.contains(r));
    }
    mix(state.finished);
    mix(0xF3);
  }
  for (const TransactionId t : awaiting_grant_) mix(t.value());
  mix(0xF4);
  for (const TransactionId t : declared_) mix(t.value());
  return h;
}

void DdbSystem::check_final() {
  // Quiescence (leaves have empty channels by construction): some
  // deadlocked transaction must have been declared.  The paper guarantees
  // one declaration per cycle -- the computation of the *last* process to
  // close it -- not one per member: a transaction that blocked early
  // initiates before the cycle exists and that computation legitimately
  // dies.  The canonical scenarios hold a single cycle, so "some declared"
  // is exactly the per-cycle guarantee there.
  const auto oracle = oracle_deadlocked();
  if (oracle.empty()) return;
  for (const TransactionId t : oracle) {
    if (declared_.contains(t)) return;
  }
  record(Axiom::kQRP1, oracle.front(),
         std::to_string(oracle.size()) +
             " transaction(s) are deadlocked per the transaction-wait oracle "
             "but no controller declared any of them (missed deadlock)");
}

std::string DdbSystem::describe(const Transition& t) const {
  if (t.kind == Transition::Kind::kDeliver) {
    return "deliver " + SiteId{t.a}.to_string() + "->" +
           SiteId{t.b}.to_string();
  }
  // Pre-state call (see explore.cpp): script_pos_ names the op about to run.
  const std::size_t pos = script_pos_[t.a];
  const auto& script = scenario_.scripts[t.a];
  std::string prefix = "script " + SiteId{t.a}.to_string();
  if (pos >= script.size()) return prefix;
  const DdbOp& op = script[pos];
  std::ostringstream os;
  os << prefix << ' ';
  if (op.kind == DdbOp::Kind::kLock) {
    os << "lock " << op.txn << ' ' << op.resource << ' '
       << ddb::to_string(op.mode);
  } else {
    os << "finish " << op.txn;
  }
  return os.str();
}

}  // namespace cmh::check
