// Vocabulary of the correctness-tooling subsystem: the paper's invariants as
// named, reportable facts.
//
// The paper states its guarantees as axioms over the colored wait-for graph
// (G1-G4), over what processes may know and send (P1-P4), and as end-to-end
// properties of the probe computation (QRP1/QRP2).  Everything in src/check
// reports violations in this vocabulary so a CI failure names the exact
// axiom that broke, not just "assertion failed".
//
// Operational readings used by the auditor (see invariant_auditor.h for the
// derivation):
//   G1  edge created grey by a request send; must not already exist
//   G2  edge blackens when the request is delivered; must be grey
//   G3  edge whitens when the reply is sent; must be black and the replier
//       must be active (no outgoing edges)
//   G4  edge removed when the reply is delivered; must be white
//   P1  detection traffic (probes, WFGD sets) never changes the wait-for
//       graph and travels only along edges the sender actually has
//   P2  per-channel FIFO: messages are delivered in the order sent
//   P3  a process's local knowledge equals the projection of the global
//       graph it is allowed to see (its outgoing edges, its incoming black
//       edges) -- nothing more, nothing less
//   P4  every message sent is eventually delivered (checked at quiescence)
//   QRP1  no missed deadlock: at quiescence, every dark cycle contains at
//         least one vertex that declared
//   QRP2  no false deadlock: a vertex declares only while it lies on a dark
//         cycle
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace cmh::check {

enum class Axiom : std::uint8_t {
  kG1,
  kG2,
  kG3,
  kG4,
  kP1,
  kP2,
  kP3,
  kP4,
  kQRP1,
  kQRP2,
};

[[nodiscard]] constexpr const char* to_string(Axiom a) {
  switch (a) {
    case Axiom::kG1: return "G1";
    case Axiom::kG2: return "G2";
    case Axiom::kG3: return "G3";
    case Axiom::kG4: return "G4";
    case Axiom::kP1: return "P1";
    case Axiom::kP2: return "P2";
    case Axiom::kP3: return "P3";
    case Axiom::kP4: return "P4";
    case Axiom::kQRP1: return "QRP1";
    case Axiom::kQRP2: return "QRP2";
  }
  return "?";
}

/// One detected invariant violation.  Structured (not a bare assert) so CI
/// logs carry everything needed to reproduce: which axiom, at which observed
/// event, on which channel, at what virtual time.
struct Violation {
  Axiom axiom{Axiom::kG1};
  /// Index of the observed event (send/deliver/declare, in observation
  /// order) at which the violation was detected; equal to the auditor's
  /// events_observed() at detection time.  End-of-run checks (P4, QRP1)
  /// report the final count.
  std::uint64_t event_seq{0};
  /// Channel (sender, receiver) of the offending message; for vertex-level
  /// findings (P3, QRP1, QRP2) both endpoints name the vertex.
  ProcessId from{};
  ProcessId to{};
  SimTime at{SimTime::zero()};
  std::string detail;

  [[nodiscard]] std::string to_string() const;
};

/// Formats violations one per line (empty string when the list is empty).
[[nodiscard]] std::string format_report(const std::vector<Violation>& vs);

/// Thrown by abort-on-violation mode.  Carries the structured violation so
/// harnesses can still classify the failure programmatically.
class InvariantViolationError : public std::logic_error {
 public:
  explicit InvariantViolationError(Violation v)
      : std::logic_error(v.to_string()), violation_(std::move(v)) {}

  [[nodiscard]] const Violation& violation() const { return violation_; }

 private:
  Violation violation_;
};

}  // namespace cmh::check
