// Basic-model harness for the exhaustive interleaving checker.
//
// Hosts N BasicProcess instances over explicit per-channel FIFO deques that
// the explorer drains in any order, with the InvariantAuditor (accumulate
// mode) embedded so every schedule is checked against G1-G4/P1-P4 and
// QRP1/QRP2.  Workload comes from per-process scripts: each process executes
// its ops in order, an op becoming schedulable when the model allows it
// (a request needs the edge absent, a reply needs the request held and the
// replier active).  Scripts may also inject raw frames -- the seeded-bug
// tests use this to forge probes and illegal requests/replies -- and a
// FaultPlan can drop or reorder transport frames to break P4/P2.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "check/explore.h"
#include "check/invariant_auditor.h"
#include "core/basic_process.h"

namespace cmh::check {

struct ScriptOp {
  enum class Kind : std::uint8_t { kRequest, kReply, kInject };

  Kind kind{Kind::kRequest};
  ProcessId peer{};
  /// kInject only: raw frame pushed onto channel (self, peer) as if sent.
  Bytes payload{};

  static ScriptOp request(ProcessId to) { return {Kind::kRequest, to, {}}; }
  static ScriptOp reply(ProcessId to) { return {Kind::kReply, to, {}}; }
  static ScriptOp inject(ProcessId to, Bytes frame) {
    return {Kind::kInject, to, std::move(frame)};
  }
};

/// Transport faults for the seeded-bug tests.
struct FaultPlan {
  /// Drop every reply frame this process sends: the auditor records the
  /// send, the channel never carries it (lost message -> P4 at quiescence).
  std::optional<ProcessId> drop_replies_from;
  /// Swap the two oldest frames of this channel the first time it holds two
  /// (FIFO break -> P2 at delivery).
  std::optional<std::pair<ProcessId, ProcessId>> reorder_channel;
  /// Swallow every probe frame this process sends *before* the auditor sees
  /// it -- a detector whose probes vanish without trace.  Deadlocks it
  /// should have found go undeclared -> QRP1 at quiescence (P4 stays quiet:
  /// as far as the message history shows, nothing was ever sent).
  std::optional<ProcessId> swallow_probes_from;
};

struct BasicScenario {
  std::string name;
  std::uint32_t n{0};
  core::Options options{};
  /// scripts[i] = ordered ops of process i (may be shorter than n entries).
  std::vector<std::vector<ScriptOp>> scripts;
  FaultPlan faults{};
};

class BasicSystem final : public System {
 public:
  explicit BasicSystem(BasicScenario scenario);

  void reset() override;
  [[nodiscard]] std::vector<Transition> enabled() override;
  void execute(const Transition& t) override;
  [[nodiscard]] std::uint64_t fingerprint() override;
  void check_final() override;
  [[nodiscard]] const std::vector<Violation>& violations() const override {
    return auditor_->violations();
  }
  [[nodiscard]] std::string describe(const Transition& t) const override;

  [[nodiscard]] const InvariantAuditor& auditor() const { return *auditor_; }

 private:
  [[nodiscard]] SimTime now() const { return SimTime::us(steps_); }
  void send_frame(ProcessId from, ProcessId to, BytesView payload);
  [[nodiscard]] bool script_op_enabled(std::uint32_t p) const;

  BasicScenario scenario_;
  std::unique_ptr<InvariantAuditor> auditor_;
  std::vector<std::unique_ptr<core::BasicProcess>> processes_;
  std::map<std::pair<ProcessId, ProcessId>, std::deque<Bytes>> channels_;
  std::vector<std::size_t> script_pos_;
  std::int64_t steps_{0};
  bool reordered_{false};
};

}  // namespace cmh::check
