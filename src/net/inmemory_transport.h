// Multithreaded in-process transport.
//
// Each node owns a FIFO mailbox drained by a dedicated delivery thread, so
// handlers for one node run strictly sequentially (the paper's atomic-step
// requirement) while different nodes run genuinely concurrently.  Per-channel
// FIFO holds because a sender enqueues into the destination mailbox in
// program order under the mailbox lock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/transport.h"

namespace cmh::net {

class InMemoryTransport final : public Transport {
 public:
  InMemoryTransport() = default;
  ~InMemoryTransport() override { stop(); }

  InMemoryTransport(const InMemoryTransport&) = delete;
  InMemoryTransport& operator=(const InMemoryTransport&) = delete;

  NodeId add_node(Handler handler) override;
  void set_handler(NodeId node, Handler handler) override;
  void send(NodeId from, NodeId to, BytesView payload) override;
  void start() override;
  void stop() override;

  /// Blocks until every mailbox is empty and every delivery thread is idle.
  /// Note: a handler may send new messages, so callers typically loop on an
  /// application-level condition; this is a best-effort quiesce for tests.
  void drain();

 private:
  struct Mail {
    NodeId from;
    Bytes payload;
  };
  struct Node {
    Handler handler;
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Mail> queue;
    bool busy{false};  // a message is being handled right now
    std::thread worker;
  };

  void worker_loop(Node& node);

  std::mutex nodes_mutex_;
  std::vector<std::unique_ptr<Node>> nodes_;
  bool started_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace cmh::net
