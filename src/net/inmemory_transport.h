// Multithreaded in-process transport.
//
// Each node owns a FIFO mailbox drained by a dedicated delivery thread, so
// handlers for one node run strictly sequentially (the paper's atomic-step
// requirement) while different nodes run genuinely concurrently.  Per-channel
// FIFO holds because a sender enqueues into the destination mailbox in
// program order under the mailbox lock.
//
// Capability model (DESIGN.md section 7.2): the node registry is guarded by
// nodes_mutex_ and frozen at start(); each node's mailbox state is guarded
// by that node's own mutex.  The two are never nested in the same direction
// twice: registry lookups copy a Node* out before touching per-node state.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "net/transport.h"

namespace cmh::net {

class InMemoryTransport final : public Transport {
 public:
  InMemoryTransport() = default;
  ~InMemoryTransport() override { stop(); }

  InMemoryTransport(const InMemoryTransport&) = delete;
  InMemoryTransport& operator=(const InMemoryTransport&) = delete;

  NodeId add_node(Handler handler) override;
  /// Rejected after start(): the delivery threads read node handlers without
  /// a lock, which is only sound while the handler set is frozen.
  void set_handler(NodeId node, Handler handler) override;
  void send(NodeId from, NodeId to, BytesView payload) override;
  void start() override;
  void stop() override;

  /// Blocks until every mailbox is empty and every delivery thread is idle.
  /// Note: a handler may send new messages, so callers typically loop on an
  /// application-level condition; this is a best-effort quiesce for tests.
  void drain();

 private:
  struct Mail {
    NodeId from;
    Bytes payload;
  };
  struct Node {
    // Written only before start() (add_node/set_handler enforce it), read
    // by the worker thread afterwards: the thread creation in start()
    // publishes it, so no lock is needed once the set is frozen.
    Handler handler;
    Mutex mutex;
    CondVar cv;
    std::deque<Mail> queue CMH_GUARDED_BY(mutex);
    bool busy CMH_GUARDED_BY(mutex){false};  // a message is in its handler
    std::thread worker;
  };

  void worker_loop(Node& node);

  /// Registry snapshot for the phases that must not hold nodes_mutex_ while
  /// touching per-node locks (stop joins workers that may be inside send(),
  /// which takes nodes_mutex_).
  [[nodiscard]] std::vector<Node*> snapshot_nodes() CMH_EXCLUDES(nodes_mutex_);

  Mutex nodes_mutex_;
  std::vector<std::unique_ptr<Node>> nodes_ CMH_GUARDED_BY(nodes_mutex_);
  bool started_ CMH_GUARDED_BY(nodes_mutex_){false};
  std::atomic<bool> stopping_{false};
};

}  // namespace cmh::net
