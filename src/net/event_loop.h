// Epoll event loop: the reactor under the TCP transport.
//
// One EventLoop owns one epoll instance and one thread.  File descriptors
// are wrapped in Pollable objects; readiness events and every registry
// mutation (add / re-arm / destroy) happen exclusively on the loop thread,
// so Pollable state needs no locking at all.  Other threads talk to the
// loop only through post(), which enqueues a closure and wakes the loop
// via an eventfd.
//
// Lifetime of a Pollable is airtight against stale events: destroy()
// removes the fd from epoll and closes it, but the object itself is parked
// in a graveyard that is cleared only at the top of the next iteration --
// an event fetched into the same epoll_wait batch as the destroy still
// finds a live object and sees its `closed` flag.
//
// Capability model (DESIGN.md section 7.2): tasks_mutex_ guards the posted
// task queue (the only cross-thread state); everything else is loop-thread
// confined and documented with CMH_GUARDED_BY_PROTOCOL.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace cmh::net {

class EventLoop;

/// A file descriptor plus its readiness handler.  Owned by the loop's
/// registry; every member is touched only on the loop thread.
class Pollable {
 public:
  virtual ~Pollable() = default;

  Pollable(const Pollable&) = delete;
  Pollable& operator=(const Pollable&) = delete;

  /// Readiness callback (loop thread).  `events` is the raw epoll bit set.
  virtual void on_events(std::uint32_t events) = 0;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool closed() const { return closed_; }

 protected:
  explicit Pollable(int fd) : fd_(fd) {}

 private:
  friend class EventLoop;
  int fd_;
  bool closed_{false};  // loop thread only
};

class EventLoop {
 public:
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawns the loop thread.  Call once.
  void start();

  /// Requests exit, wakes the loop and joins it.  Every fd still in the
  /// registry is closed on the loop thread before it exits.  Idempotent;
  /// safe without start().  The object stays valid afterwards so that
  /// racing post() calls land on a dead-but-alive loop (they are dropped).
  void stop();

  /// Runs `task` on the loop thread (any thread may call).  Returns false
  /// when the loop is stopping and the task was discarded.  Tasks still
  /// queued when the loop exits are run after the registry is closed (they
  /// observe closed pollables), so a poster blocking on a task's completion
  /// never hangs.
  bool post(std::function<void()> task);

  /// True when the caller is the loop thread.
  [[nodiscard]] bool on_loop_thread() const;

  // ---- loop-thread-only registry operations -------------------------------

  /// Registers `p` with the given epoll interest set and takes ownership.
  void add(std::shared_ptr<Pollable> p, std::uint32_t events);

  /// Replaces the epoll interest set of a registered pollable.
  void set_events(Pollable& p, std::uint32_t events);

  /// Deregisters, closes the fd and marks `p` closed.  The object is kept
  /// alive until the next iteration so stale events in the current batch
  /// cannot touch freed memory.
  void destroy(Pollable& p);

 private:
  void run();
  void drain_wake() const;

  int epoll_fd_{-1};
  int wake_fd_{-1};
  std::thread thread_;
  std::atomic<bool> stopping_{false};

  Mutex tasks_mutex_;
  std::vector<std::function<void()>> tasks_ CMH_GUARDED_BY(tasks_mutex_);
  bool wake_pending_ CMH_GUARDED_BY(tasks_mutex_){false};

  CMH_GUARDED_BY_PROTOCOL("loop thread only")
  std::vector<std::shared_ptr<Pollable>> registry_;
  CMH_GUARDED_BY_PROTOCOL("loop thread only")
  std::vector<std::shared_ptr<Pollable>> graveyard_;
};

}  // namespace cmh::net
