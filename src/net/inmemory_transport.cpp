#include "net/inmemory_transport.h"

#include <stdexcept>

namespace cmh::net {

NodeId InMemoryTransport::add_node(Handler handler) {
  const MutexLock lock(nodes_mutex_);
  if (started_) {
    throw std::logic_error("InMemoryTransport: add_node after start()");
  }
  auto node = std::make_unique<Node>();
  node->handler = std::move(handler);
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void InMemoryTransport::set_handler(NodeId node, Handler handler) {
  const MutexLock lock(nodes_mutex_);
  if (started_) {
    // The worker threads read handlers without a lock (frozen-after-start
    // protocol); replacing one mid-flight would race with delivery.
    throw std::logic_error("InMemoryTransport: set_handler after start()");
  }
  nodes_.at(node)->handler = std::move(handler);
}

std::vector<InMemoryTransport::Node*> InMemoryTransport::snapshot_nodes() {
  const MutexLock lock(nodes_mutex_);
  std::vector<Node*> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) out.push_back(node.get());
  return out;
}

void InMemoryTransport::send(NodeId from, NodeId to, BytesView payload) {
  Node* node = nullptr;
  {
    const MutexLock lock(nodes_mutex_);
    node = nodes_.at(to).get();
  }
  {
    const MutexLock lock(node->mutex);
    node->queue.push_back(Mail{from, Bytes(payload.begin(), payload.end())});
  }
  node->cv.notify_one();
}

void InMemoryTransport::start() {
  const MutexLock lock(nodes_mutex_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  for (auto& node : nodes_) {
    node->worker = std::thread([this, n = node.get()] { worker_loop(*n); });
  }
}

void InMemoryTransport::stop() {
  {
    const MutexLock lock(nodes_mutex_);
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  // Per-node work below runs on a registry snapshot: joining workers while
  // holding nodes_mutex_ would deadlock against handlers calling send().
  const std::vector<Node*> nodes = snapshot_nodes();
  for (Node* node : nodes) {
    // Take the node mutex before notifying so a worker between its
    // predicate check and wait() cannot miss the wakeup.
    { const MutexLock lock(node->mutex); }
    node->cv.notify_all();
  }
  for (Node* node : nodes) {
    if (node->worker.joinable()) node->worker.join();
  }
  const MutexLock lock(nodes_mutex_);
  started_ = false;
}

void InMemoryTransport::worker_loop(Node& node) {
  for (;;) {
    Mail mail;
    {
      const MutexLock lock(node.mutex);
      node.cv.wait(node.mutex, [&] {
        // Held by CondVar::wait's contract; the analysis cannot see through
        // the predicate lambda boundary.
        node.mutex.assert_held();
        return stopping_.load() || !node.queue.empty();
      });
      if (node.queue.empty()) return;  // stopping and drained
      mail = std::move(node.queue.front());
      node.queue.pop_front();
      node.busy = true;
    }
    if (node.handler) node.handler(mail.from, mail.payload);
    {
      const MutexLock lock(node.mutex);
      node.busy = false;
    }
    node.cv.notify_all();
  }
}

void InMemoryTransport::drain() {
  for (Node* node : snapshot_nodes()) {
    const MutexLock lock(node->mutex);
    node->cv.wait(node->mutex, [&] {
      node->mutex.assert_held();  // held by CondVar::wait's contract
      return node->queue.empty() && !node->busy;
    });
  }
}

}  // namespace cmh::net
