#include "net/inmemory_transport.h"

#include <stdexcept>

namespace cmh::net {

NodeId InMemoryTransport::add_node(Handler handler) {
  std::scoped_lock lock(nodes_mutex_);
  if (started_) {
    throw std::logic_error("InMemoryTransport: add_node after start()");
  }
  auto node = std::make_unique<Node>();
  node->handler = std::move(handler);
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void InMemoryTransport::set_handler(NodeId node, Handler handler) {
  std::scoped_lock lock(nodes_mutex_);
  nodes_.at(node)->handler = std::move(handler);
}

void InMemoryTransport::send(NodeId from, NodeId to, BytesView payload) {
  Node* node = nullptr;
  {
    std::scoped_lock lock(nodes_mutex_);
    node = nodes_.at(to).get();
  }
  {
    std::scoped_lock lock(node->mutex);
    node->queue.push_back(Mail{from, Bytes(payload.begin(), payload.end())});
  }
  node->cv.notify_one();
}

void InMemoryTransport::start() {
  std::scoped_lock lock(nodes_mutex_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  for (auto& node : nodes_) {
    node->worker = std::thread([this, n = node.get()] { worker_loop(*n); });
  }
}

void InMemoryTransport::stop() {
  {
    std::scoped_lock lock(nodes_mutex_);
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  for (auto& node : nodes_) {
    // Take the node mutex before notifying so a worker between its
    // predicate check and wait() cannot miss the wakeup.
    { std::scoped_lock lock(node->mutex); }
    node->cv.notify_all();
  }
  for (auto& node : nodes_) {
    if (node->worker.joinable()) node->worker.join();
  }
  std::scoped_lock lock(nodes_mutex_);
  started_ = false;
}

void InMemoryTransport::worker_loop(Node& node) {
  for (;;) {
    Mail mail;
    {
      std::unique_lock lock(node.mutex);
      node.cv.wait(lock, [&] { return stopping_ || !node.queue.empty(); });
      if (node.queue.empty()) return;  // stopping and drained
      mail = std::move(node.queue.front());
      node.queue.pop_front();
      node.busy = true;
    }
    if (node.handler) node.handler(mail.from, mail.payload);
    {
      std::scoped_lock lock(node.mutex);
      node.busy = false;
    }
    node.cv.notify_all();
  }
}

void InMemoryTransport::drain() {
  for (auto& node : nodes_) {
    std::unique_lock lock(node->mutex);
    node->cv.wait(lock, [&] { return node->queue.empty() && !node->busy; });
  }
}

}  // namespace cmh::net
