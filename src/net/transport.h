// Transport abstraction.
//
// Algorithm code never talks to a socket or a simulator directly; it sends
// byte payloads to node ids through this interface.  Three implementations
// exist:
//   * SimTransport       -- deterministic discrete-event simulation
//   * InMemoryTransport  -- real threads, lock-protected FIFO queues
//   * TcpTransport       -- localhost TCP sockets, length-prefixed frames
// All three guarantee the paper's communication model: reliable, in-order
// (per channel), finite-delay delivery.
#pragma once

#include <cstdint>
#include <functional>

#include "common/serialize.h"

namespace cmh::net {

using NodeId = std::uint32_t;

/// Framing bound shared by the socket transports: a length prefix larger
/// than this is treated as stream corruption and the connection is dropped.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;  // 64 MiB

/// Monotonic I/O counters kept by the socket transports (relaxed atomics;
/// a snapshot is consistent only in the quiescent state).  `frames_sent`
/// versus `write_syscalls` is the coalescing ratio the event-loop transport
/// optimizes: under load one sendmsg() carries many queued frames.
struct TransportIoStats {
  std::uint64_t frames_enqueued{0};   ///< accepted by send()
  std::uint64_t frames_sent{0};       ///< fully handed to the kernel
  std::uint64_t frames_dropped{0};    ///< lost to connect failure / backoff
  std::uint64_t frames_delivered{0};  ///< handler invocations completed
  std::uint64_t write_syscalls{0};    ///< sendmsg()/writev() calls
  std::uint64_t read_syscalls{0};     ///< recv()/read() calls
  std::uint64_t bytes_sent{0};        ///< payload + prefix bytes written
  std::uint64_t connect_attempts{0};  ///< outbound dials (incl. retries)
};

class Transport {
 public:
  /// Invoked once per delivered message.  For threaded transports the
  /// handler runs on a delivery thread; one handler is never invoked
  /// concurrently with itself for the same node (per-node serialization),
  /// which realizes the paper's atomic-step requirement (note under A0-A2).
  using Handler = std::function<void(NodeId from, const Bytes& payload)>;

  virtual ~Transport() = default;

  /// Registers a node; ids are dense from 0 in registration order.
  virtual NodeId add_node(Handler handler) = 0;

  /// Replaces a node's handler (must not race with delivery; call before
  /// start() or from within the node's own handler context).
  virtual void set_handler(NodeId node, Handler handler) = 0;

  /// Sends payload from `from` to `to`.  Never blocks on the receiver.
  /// The view is only valid for the duration of the call; transports that
  /// defer delivery copy it (into pooled or queued storage).
  virtual void send(NodeId from, NodeId to, BytesView payload) = 0;

  /// Begins delivery (no-op for transports that deliver eagerly).
  virtual void start() {}

  /// Stops delivery and joins internal threads.  Idempotent.
  virtual void stop() {}
};

}  // namespace cmh::net
