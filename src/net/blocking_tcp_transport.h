// Thread-per-connection localhost TCP transport (the pre-event-loop design).
//
// Kept as the baseline the epoll TcpTransport is benchmarked against
// (bench_t6_transports, bench_net): one acceptor + one reader thread per
// connection, blocking sockets, and socket writes performed on the caller
// thread under the channel lock.  Framing is the same wire format as
// TcpTransport -- 4-byte big-endian length prefix, handshake frame first --
// and the prefix and payload of each frame go out in a single sendmsg()
// (two iovecs), so the comparison measures the architecture, not a
// two-syscalls-per-frame handicap.
//
// Capability model (DESIGN.md section 7.2): the node registry is guarded by
// nodes_mutex_ and frozen at start(); each node carries three independent
// capabilities -- readers_mutex (acceptor-side thread list), out_mutex
// (sender-side connection cache) and mail_mutex (delivery mailbox).  No two
// node-level mutexes are ever nested; registry lookups copy what they need
// out from under nodes_mutex_ before taking a node-level lock, which is what
// rules out the historic stop()/send() lock-order inversion by construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "net/transport.h"

namespace cmh::net {

class BlockingTcpTransport final : public Transport {
 public:
  /// Ports are allocated by the OS (bind to port 0); peers learn each
  /// other's ports through the shared registry inside this object, which
  /// stands in for out-of-band configuration in a real deployment.
  BlockingTcpTransport() = default;
  ~BlockingTcpTransport() override { stop(); }

  BlockingTcpTransport(const BlockingTcpTransport&) = delete;
  BlockingTcpTransport& operator=(const BlockingTcpTransport&) = delete;

  NodeId add_node(Handler handler) override;
  /// Rejected after start(): the deliverer threads read node handlers
  /// without a lock, which is only sound while the handler set is frozen.
  void set_handler(NodeId node, Handler handler) override;
  void send(NodeId from, NodeId to, BytesView payload) override;
  void start() override;
  void stop() override;

  /// Port the given node listens on (valid after start()).
  [[nodiscard]] std::uint16_t port(NodeId node) const;

  /// Aggregate I/O counters (relaxed snapshot).
  [[nodiscard]] TransportIoStats io_stats() const;

 private:
  struct Node {
    // handler/id/port are written only before the worker threads exist
    // (add_node / start(), pre-publication) and are immutable afterwards;
    // the thread creation in start() publishes them to the workers.
    Handler handler;
    NodeId id{0};
    std::uint16_t port{0};
    // Atomic: stop() closes it while the acceptor thread is reading it.
    std::atomic<int> listen_fd{-1};
    std::thread acceptor;

    Mutex readers_mutex;
    std::vector<std::thread> readers CMH_GUARDED_BY(readers_mutex);

    // Outbound connections, keyed by destination node.
    Mutex out_mutex;
    std::vector<int> out_fds CMH_GUARDED_BY(out_mutex);  // -1 = none

    // Inbound delivery mailbox (serializes handler execution).
    Mutex mail_mutex;
    CondVar mail_cv;
    std::deque<std::pair<NodeId, Bytes>> mailbox CMH_GUARDED_BY(mail_mutex);
    std::thread deliverer;
  };

  void acceptor_loop(Node& node);
  void reader_loop(Node& node, int fd);
  void deliverer_loop(Node& node);
  bool send_frame(int fd, BytesView payload);
  bool recv_frame(int fd, Bytes& payload);
  int connect_to(NodeId src_id, std::uint16_t dst_port);

  /// Registry snapshot for the phases that must not hold nodes_mutex_ while
  /// taking node-level locks or joining threads (handlers may be inside
  /// send(), which takes nodes_mutex_).
  [[nodiscard]] std::vector<Node*> snapshot_nodes() const
      CMH_EXCLUDES(nodes_mutex_);

  mutable Mutex nodes_mutex_;
  std::vector<std::unique_ptr<Node>> nodes_ CMH_GUARDED_BY(nodes_mutex_);
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  // Relaxed I/O counters (see TransportIoStats).
  std::atomic<std::uint64_t> frames_enqueued_{0};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_dropped_{0};
  std::atomic<std::uint64_t> frames_delivered_{0};
  std::atomic<std::uint64_t> write_syscalls_{0};
  std::atomic<std::uint64_t> read_syscalls_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> connect_attempts_{0};
};

}  // namespace cmh::net
