#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <stdexcept>
#include <utility>

namespace cmh::net {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::runtime_error("EventLoop: epoll_create1() failed");
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw std::runtime_error("EventLoop: eventfd() failed");
  }
  // The wake fd is the one registration with a null data pointer; the loop
  // special-cases it instead of carrying a Pollable for it.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

EventLoop::~EventLoop() {
  stop();
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void EventLoop::start() { thread_ = std::thread([this] { run(); }); }

void EventLoop::stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  if (thread_.joinable()) thread_.join();
}

bool EventLoop::post(std::function<void()> task) {
  bool wake = false;
  {
    const MutexLock lock(tasks_mutex_);
    if (stopping_) return false;  // loop is (or is about to be) gone; drop
    tasks_.push_back(std::move(task));
    if (!wake_pending_) {
      wake_pending_ = true;
      wake = true;
    }
  }
  if (wake) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
  return true;
}

bool EventLoop::on_loop_thread() const {
  return thread_.get_id() == std::this_thread::get_id();
}

void EventLoop::add(std::shared_ptr<Pollable> p, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = p.get();
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, p->fd_, &ev) != 0) {
    ::close(p->fd_);
    p->closed_ = true;
    return;
  }
  registry_.push_back(std::move(p));
}

void EventLoop::set_events(Pollable& p, std::uint32_t events) {
  if (p.closed_) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = &p;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, p.fd_, &ev);
}

void EventLoop::destroy(Pollable& p) {
  if (p.closed_) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, p.fd_, nullptr);
  ::close(p.fd_);
  p.closed_ = true;
  for (auto it = registry_.begin(); it != registry_.end(); ++it) {
    if (it->get() == &p) {
      graveyard_.push_back(std::move(*it));
      registry_.erase(it);
      break;
    }
  }
}

void EventLoop::drain_wake() const {
  std::uint64_t count = 0;
  [[maybe_unused]] const ssize_t n =
      ::read(wake_fd_, &count, sizeof(count));  // nonblocking; resets to 0
}

void EventLoop::run() {
  std::vector<epoll_event> events(128);
  std::vector<std::function<void()>> tasks;
  while (!stopping_.load(std::memory_order_acquire)) {
    // Anything destroyed during the previous batch has now outlived every
    // event fetched alongside it; release for real.
    graveyard_.clear();

    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), /*timeout=*/-1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself is broken; nothing sane left to do
    }
    for (int i = 0; i < n; ++i) {
      void* ptr = events[static_cast<std::size_t>(i)].data.ptr;
      if (ptr == nullptr) {
        drain_wake();
        continue;
      }
      auto* pollable = static_cast<Pollable*>(ptr);
      if (pollable->closed_) continue;  // destroyed earlier in this batch
      pollable->on_events(events[static_cast<std::size_t>(i)].events);
    }

    {
      const MutexLock lock(tasks_mutex_);
      tasks.swap(tasks_);
      wake_pending_ = false;
    }
    for (auto& task : tasks) task();
    tasks.clear();

    if (n == static_cast<int>(events.size())) events.resize(events.size() * 2);
  }
  // Loop-thread teardown: close every fd we still own.  Handlers never run
  // again; the transport joins us before touching any shared state.
  graveyard_.clear();
  for (auto& p : registry_) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, p->fd_, nullptr);
    ::close(p->fd_);
    p->closed_ = true;
  }
  registry_.clear();
  // Tasks that were accepted by post() but not yet run still execute (they
  // observe the closed registry) so a poster blocking on one cannot hang.
  {
    const MutexLock lock(tasks_mutex_);
    tasks.swap(tasks_);
  }
  for (auto& task : tasks) task();
}

}  // namespace cmh::net
