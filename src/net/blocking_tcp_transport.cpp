#include "net/blocking_tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "common/logging.h"

namespace cmh::net {

namespace {

// Reads exactly `len` bytes; returns false on error/EOF.  Each successful
// ::read is tallied into `syscalls` for the coalescing comparison.
bool read_all(int fd, void* buf, std::size_t len,
              std::atomic<std::uint64_t>& syscalls) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    syscalls.fetch_add(1, std::memory_order_relaxed);
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

// One frame, one vectored write: the 4-byte prefix and the payload share a
// single sendmsg() (partial writes advance through both iovecs).
// MSG_NOSIGNAL: a peer that disconnected mid-frame must surface as EPIPE on
// this call, not as a process-killing SIGPIPE.
bool BlockingTcpTransport::send_frame(int fd, BytesView payload) {
  std::uint8_t prefix[4];
  const auto len = static_cast<std::uint32_t>(payload.size());
  prefix[0] = static_cast<std::uint8_t>(len >> 24);
  prefix[1] = static_cast<std::uint8_t>(len >> 16);
  prefix[2] = static_cast<std::uint8_t>(len >> 8);
  prefix[3] = static_cast<std::uint8_t>(len);

  const std::size_t total = sizeof(prefix) + payload.size();
  std::size_t done = 0;
  while (done < total) {
    iovec iov[2];
    std::size_t cnt = 0;
    if (done < sizeof(prefix)) {
      iov[cnt].iov_base = prefix + done;
      iov[cnt].iov_len = sizeof(prefix) - done;
      ++cnt;
      if (!payload.empty()) {
        // iovec's iov_base is non-const by API shape; sendmsg only reads it.
        iov[cnt].iov_base = const_cast<std::uint8_t*>(payload.data());
        iov[cnt].iov_len = payload.size();
        ++cnt;
      }
    } else {
      const std::size_t off = done - sizeof(prefix);
      iov[cnt].iov_base = const_cast<std::uint8_t*>(payload.data()) + off;
      iov[cnt].iov_len = payload.size() - off;
      ++cnt;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = cnt;
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    write_syscalls_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
    done += static_cast<std::size_t>(n);
  }
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool BlockingTcpTransport::recv_frame(int fd, Bytes& payload) {
  std::uint32_t len = 0;
  if (!read_all(fd, &len, sizeof(len), read_syscalls_)) return false;
  len = ntohl(len);
  if (len > kMaxFrameBytes) return false;  // stream corruption
  payload.resize(len);
  return len == 0 || read_all(fd, payload.data(), len, read_syscalls_);
}

// Dials the destination's listener and performs the identity handshake.
// Pure function of (src_id, dst_port): the caller resolves both under
// nodes_mutex_, so this helper needs no capability at all.
int BlockingTcpTransport::connect_to(NodeId src_id, std::uint16_t dst_port) {
  connect_attempts_.fetch_add(1, std::memory_order_relaxed);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(dst_port);
  // lint:allow(no-reinterpret-cast) -- the sockaddr cast the BSD API demands
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  Bytes hello(sizeof(NodeId));
  std::memcpy(hello.data(), &src_id, sizeof(src_id));
  if (!send_frame(fd, hello)) {
    ::close(fd);
    return -1;
  }
  return fd;
}

NodeId BlockingTcpTransport::add_node(Handler handler) {
  const MutexLock lock(nodes_mutex_);
  if (started_) {
    throw std::logic_error("BlockingTcpTransport: add_node after start()");
  }
  auto node = std::make_unique<Node>();
  node->handler = std::move(handler);
  node->id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void BlockingTcpTransport::set_handler(NodeId node, Handler handler) {
  const MutexLock lock(nodes_mutex_);
  if (started_) {
    // The deliverer threads read handlers without a lock (frozen-after-start
    // protocol); replacing one mid-flight would race with delivery.
    throw std::logic_error("BlockingTcpTransport: set_handler after start()");
  }
  nodes_.at(node)->handler = std::move(handler);
}

std::uint16_t BlockingTcpTransport::port(NodeId node) const {
  const MutexLock lock(nodes_mutex_);
  return nodes_.at(node)->port;
}

std::vector<BlockingTcpTransport::Node*> BlockingTcpTransport::snapshot_nodes()
    const {
  const MutexLock lock(nodes_mutex_);
  std::vector<Node*> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) out.push_back(node.get());
  return out;
}

void BlockingTcpTransport::start() {
  const MutexLock lock(nodes_mutex_);
  if (started_) return;
  stopping_ = false;

  for (auto& node : nodes_) {
    {
      const MutexLock out_lock(node->out_mutex);
      node->out_fds.assign(nodes_.size(), -1);
    }

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("BlockingTcpTransport: socket() failed");
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // let the OS pick
    // lint:allow(no-reinterpret-cast) -- the sockaddr cast the BSD API demands
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      throw std::runtime_error("BlockingTcpTransport: bind() failed");
    }
    if (::listen(fd, 64) != 0) {
      ::close(fd);
      throw std::runtime_error("BlockingTcpTransport: listen() failed");
    }
    socklen_t len = sizeof(addr);
    // lint:allow(no-reinterpret-cast) -- the sockaddr cast the BSD API demands
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    node->listen_fd = fd;
    node->port = ntohs(addr.sin_port);
  }

  for (auto& node : nodes_) {
    node->acceptor = std::thread([this, n = node.get()] { acceptor_loop(*n); });
    node->deliverer =
        std::thread([this, n = node.get()] { deliverer_loop(*n); });
  }
  started_ = true;
}

void BlockingTcpTransport::stop() {
  if (!started_.exchange(false)) return;
  stopping_ = true;

  // Everything below runs on a registry snapshot: nodes_mutex_ must not be
  // held while node-level locks are taken (send() orders nodes_mutex_ before
  // out_mutex, so nesting them here would be the historic lock-order
  // inversion TSan flagged) nor while joining threads whose handlers may be
  // inside send().
  const std::vector<Node*> nodes = snapshot_nodes();

  // Close sockets: the listening sockets unblock the acceptors, the data
  // sockets unblock the readers.
  for (Node* node : nodes) {
    const int listen_fd = node->listen_fd.exchange(-1);
    if (listen_fd >= 0) {
      ::shutdown(listen_fd, SHUT_RDWR);
      ::close(listen_fd);
    }
    const MutexLock out_lock(node->out_mutex);
    for (int& fd : node->out_fds) {
      if (fd >= 0) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
        fd = -1;
      }
    }
  }
  for (Node* node : nodes) {
    if (node->acceptor.joinable()) node->acceptor.join();
    const MutexLock readers_lock(node->readers_mutex);
    for (auto& t : node->readers) {
      if (t.joinable()) t.join();
    }
    node->readers.clear();
  }
  for (Node* node : nodes) {
    // Take the mail mutex before notifying so a deliverer between its
    // predicate check and wait() cannot miss the wakeup.
    { const MutexLock lock(node->mail_mutex); }
    node->mail_cv.notify_all();
    if (node->deliverer.joinable()) node->deliverer.join();
  }
}

void BlockingTcpTransport::acceptor_loop(Node& node) {
  for (;;) {
    const int listen_fd = node.listen_fd.load();
    if (listen_fd < 0) return;  // stop() already closed the listener
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed during stop()
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const MutexLock lock(node.readers_mutex);
    node.readers.emplace_back([this, &node, fd] { reader_loop(node, fd); });
  }
}

void BlockingTcpTransport::reader_loop(Node& node, int fd) {
  // Handshake: first frame is the sender's node id.
  Bytes hello;
  NodeId from = 0;
  if (!recv_frame(fd, hello) || hello.size() != sizeof(NodeId)) {
    ::close(fd);
    return;
  }
  std::memcpy(&from, hello.data(), sizeof(from));

  Bytes payload;
  while (recv_frame(fd, payload)) {
    {
      const MutexLock lock(node.mail_mutex);
      node.mailbox.emplace_back(from, std::move(payload));
      payload = Bytes{};
    }
    node.mail_cv.notify_one();
  }
  ::close(fd);
}

void BlockingTcpTransport::deliverer_loop(Node& node) {
  for (;;) {
    std::pair<NodeId, Bytes> mail;
    {
      const MutexLock lock(node.mail_mutex);
      node.mail_cv.wait(node.mail_mutex, [&] {
        // Held by CondVar::wait's contract; the analysis cannot see through
        // the predicate lambda boundary.
        node.mail_mutex.assert_held();
        return stopping_.load() || !node.mailbox.empty();
      });
      if (node.mailbox.empty()) return;
      mail = std::move(node.mailbox.front());
      node.mailbox.pop_front();
    }
    if (node.handler) node.handler(mail.first, mail.second);
    frames_delivered_.fetch_add(1, std::memory_order_relaxed);
  }
}

void BlockingTcpTransport::send(NodeId from, NodeId to, BytesView payload) {
  if (stopping_) return;  // shutting down; drops are acceptable
  Node* src = nullptr;
  std::uint16_t dst_port = 0;
  {
    const MutexLock lock(nodes_mutex_);
    src = nodes_.at(from).get();
    if (to >= nodes_.size()) {
      throw std::out_of_range("BlockingTcpTransport::send: unknown destination");
    }
    // Resolve the destination port here, under the registry lock, so the
    // dial below never reads the registry while holding out_mutex (that
    // nesting is the lock-order inversion stop() used to have).
    dst_port = nodes_[to]->port;
  }
  frames_enqueued_.fetch_add(1, std::memory_order_relaxed);
  // Per-destination connection established lazily; the out_mutex also
  // serializes concurrent senders on the same channel, preserving frame
  // atomicity and FIFO.
  const MutexLock lock(src->out_mutex);
  if (stopping_) return;
  int& fd = src->out_fds.at(to);
  if (fd < 0) fd = connect_to(src->id, dst_port);
  if (fd < 0) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    CMH_LOG(kWarn, "tcp") << "connect to node " << to << " failed";
    return;
  }
  if (!send_frame(fd, payload)) {
    ::close(fd);
    fd = -1;
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    CMH_LOG(kWarn, "tcp") << "send to node " << to << " failed";
  }
}

TransportIoStats BlockingTcpTransport::io_stats() const {
  TransportIoStats s;
  s.frames_enqueued = frames_enqueued_.load(std::memory_order_relaxed);
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.frames_dropped = frames_dropped_.load(std::memory_order_relaxed);
  s.frames_delivered = frames_delivered_.load(std::memory_order_relaxed);
  s.write_syscalls = write_syscalls_.load(std::memory_order_relaxed);
  s.read_syscalls = read_syscalls_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.connect_attempts = connect_attempts_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace cmh::net
