// Localhost TCP transport on an epoll event-loop pool.
//
// Every node runs a listening socket on 127.0.0.1.  The first frame on a
// connection is a handshake carrying the sender's node id; subsequent
// frames are 4-byte-big-endian length-prefixed payloads.  One outbound
// connection is established lazily per (src,dst) channel; TCP's byte-stream
// ordering plus the channel's queue lock give per-channel FIFO.
//
// The hot path is syscall-frugal by design:
//   * send() is enqueue-and-wake: the caller pushes a pre-framed buffer
//     onto the channel's write queue and (only when no flush is already
//     pending) wakes the channel's event loop through an eventfd.  The
//     caller thread never touches the socket.
//   * The loop flushes with one sendmsg() carrying the length prefixes AND
//     payloads of up to `max_coalesced_frames` queued frames -- under load
//     the measured syscalls-per-frame drops well below one.
//   * The receive side reads into a per-connection ring buffer (one recv()
//     per readiness, many frames) and slices complete frames out of it
//     without a per-frame resize().
//
// Connects are non-blocking and complete on the loop; a failed dial puts
// the channel into capped exponential backoff, and frames sent while the
// peer is unreachable are counted per channel (dropped_frames()) instead
// of blocking the caller.
//
// Delivered messages still funnel through a per-destination mailbox thread
// so handlers stay sequential per node (the paper's atomic-step
// requirement).  The thread-per-connection implementation this replaced
// survives as BlockingTcpTransport for comparison benchmarks.
//
// Capability model (DESIGN.md section 7.2): the node registry is guarded
// by nodes_mutex_ and frozen at start() (node_index_ is the lock-free
// post-start snapshot, published by started_); each channel's connection
// state and write queue are guarded by that channel's own mutex; each
// node's mailbox by its mail_mutex.  Socket lifecycle (connect completion,
// teardown, epoll arming) happens only on the owning loop thread, so a
// sender holding the channel mutex never races fd ownership.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "net/event_loop.h"
#include "net/transport.h"

namespace cmh::net {

struct TcpTransportConfig {
  /// Event-loop threads to run; 0 means min(4, hardware_concurrency).
  unsigned event_loops = 0;
  /// Upper bound on frames folded into a single sendmsg() (also clamped to
  /// the OS IOV_MAX).
  std::uint32_t max_coalesced_frames = 64;
  /// First retry delay after a failed connect; doubles per failure.
  std::chrono::milliseconds reconnect_backoff_initial{5};
  /// Ceiling for the exponential backoff.
  std::chrono::milliseconds reconnect_backoff_max{1000};
  /// Readable space requested from the ring buffer per recv() call.
  std::size_t recv_chunk = 64 * 1024;
};

class TcpTransport final : public Transport {
 public:
  /// Ports are allocated by the OS (bind to port 0); peers learn each
  /// other's ports through the shared registry inside this object, which
  /// stands in for out-of-band configuration in a real deployment.
  TcpTransport() = default;
  explicit TcpTransport(const TcpTransportConfig& config) : config_(config) {}
  ~TcpTransport() override { stop(); }

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  NodeId add_node(Handler handler) override;
  /// Rejected after start(): deliverer and loop threads read node state
  /// without a lock, which is only sound while the node set is frozen.
  void set_handler(NodeId node, Handler handler) override;
  /// Enqueue-and-wake; never performs socket I/O on the caller thread.
  /// Throws std::logic_error before start().
  void send(NodeId from, NodeId to, BytesView payload) override;
  void start() override;
  void stop() override;

  /// Port the given node listens on (valid after start()).
  [[nodiscard]] std::uint16_t port(NodeId node) const;

  /// Aggregate I/O counters (relaxed snapshot).
  [[nodiscard]] TransportIoStats io_stats() const;

  /// Frames dropped on the (from,to) channel because the peer was
  /// unreachable (failed dial or backoff window).  Valid after start().
  [[nodiscard]] std::uint64_t dropped_frames(NodeId from, NodeId to) const;

  /// Fault injection for tests: closes `node`'s listening socket so every
  /// later dial to it fails (simulates a crashed peer).  Blocks until the
  /// owning loop has executed the close.  No-op before start().
  void close_listener(NodeId node);

 private:
  struct Node;
  struct Channel;
  struct ListenConn;
  struct InboundConn;
  struct OutboundConn;

  enum class ChannelState : std::uint8_t {
    kIdle,        // never dialed
    kConnecting,  // non-blocking connect in flight on the loop
    kUp,          // established; flushes allowed
    kBackoff,     // last dial failed; retry gated by next_retry
  };

  /// Outbound (src -> dst) connection state.  The queue holds pre-framed
  /// buffers (4-byte prefix + payload, one Bytes each).
  struct Channel {
    Mutex mutex;
    ChannelState state CMH_GUARDED_BY(mutex){ChannelState::kIdle};
    std::deque<Bytes> queue CMH_GUARDED_BY(mutex);
    std::size_t front_offset CMH_GUARDED_BY(mutex){0};
    /// True while a flush task is posted or EPOLLOUT is armed -- senders
    /// skip the wake when set, which is what makes bursts coalesce.
    bool flush_scheduled CMH_GUARDED_BY(mutex){false};
    int fd CMH_GUARDED_BY(mutex){-1};
    /// Loop-owned; only the loop thread dereferences it.
    OutboundConn* conn CMH_GUARDED_BY(mutex){nullptr};
    std::chrono::steady_clock::time_point next_retry CMH_GUARDED_BY(mutex){};
    std::chrono::milliseconds backoff CMH_GUARDED_BY(mutex){0};

    std::atomic<std::uint64_t> dropped{0};

    // Fixed at start(), immutable afterwards.
    EventLoop* loop{nullptr};
    NodeId src{0};
    NodeId dst{0};
    std::uint16_t dst_port{0};
  };

  struct Node {
    // handler/id/port/listen_fd/loop/channels are written only before the
    // worker threads exist (add_node / start(), pre-publication) and are
    // immutable afterwards; publication happens via started_.
    Handler handler;
    NodeId id{0};
    std::uint16_t port{0};
    int listen_fd{-1};
    EventLoop* loop{nullptr};
    std::vector<std::unique_ptr<Channel>> channels;
    /// Set during loop-side registration; dereferenced only on the loop
    /// thread (close_listener's task).
    CMH_GUARDED_BY_PROTOCOL("loop thread only")
    ListenConn* listener{nullptr};

    // Inbound delivery mailbox (serializes handler execution).
    Mutex mail_mutex;
    CondVar mail_cv;
    std::deque<std::pair<NodeId, Bytes>> mailbox CMH_GUARDED_BY(mail_mutex);
    std::thread deliverer;
  };

  void deliverer_loop(Node& node);

  // Loop-thread-only channel lifecycle (each takes ch.mutex internally).
  void connect_channel(Channel& ch);
  void flush_channel(Channel& ch);
  void flush_channel_locked(Channel& ch) CMH_REQUIRES(ch.mutex);
  void fail_channel_locked(Channel& ch) CMH_REQUIRES(ch.mutex);
  void deliver_batch(Node& node, NodeId from,
                     std::vector<Bytes>&& payloads);

  TcpTransportConfig config_{};

  mutable Mutex nodes_mutex_;
  std::vector<std::unique_ptr<Node>> nodes_ CMH_GUARDED_BY(nodes_mutex_);

  /// Lock-free registry snapshot for the post-start hot path; built in
  /// start() and published by started_.store(release).
  CMH_GUARDED_BY_PROTOCOL("frozen at start(); published by started_")
  std::vector<Node*> node_index_;

  /// Loops are created in start() and stopped (joined) in stop(), but the
  /// objects live until destruction so a send() racing stop() posts to a
  /// dead-but-alive loop instead of freed memory.
  CMH_GUARDED_BY_PROTOCOL("created in start() pre-publication")
  std::vector<std::unique_ptr<EventLoop>> loops_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  // Relaxed I/O counters (see TransportIoStats).
  std::atomic<std::uint64_t> frames_enqueued_{0};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_dropped_{0};
  std::atomic<std::uint64_t> frames_delivered_{0};
  std::atomic<std::uint64_t> write_syscalls_{0};
  std::atomic<std::uint64_t> read_syscalls_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> connect_attempts_{0};
};

}  // namespace cmh::net
