// Localhost TCP transport.
//
// Every node runs a listening socket on 127.0.0.1.  The first connection
// frame is a handshake carrying the sender's node id; subsequent frames are
// length-prefixed payloads.  One outbound connection is established lazily
// per (src,dst) pair; TCP's byte-stream ordering gives per-channel FIFO.
// Delivered messages are funnelled through a per-destination mailbox thread
// so handlers stay sequential per node (atomic-step requirement).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/transport.h"

namespace cmh::net {

class TcpTransport final : public Transport {
 public:
  /// Ports are allocated by the OS (bind to port 0); peers learn each
  /// other's ports through the shared registry inside this object, which
  /// stands in for out-of-band configuration in a real deployment.
  TcpTransport() = default;
  ~TcpTransport() override { stop(); }

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  NodeId add_node(Handler handler) override;
  void set_handler(NodeId node, Handler handler) override;
  void send(NodeId from, NodeId to, BytesView payload) override;
  void start() override;
  void stop() override;

  /// Port the given node listens on (valid after start()).
  [[nodiscard]] std::uint16_t port(NodeId node) const;

 private:
  struct Node {
    Handler handler;
    NodeId id{0};
    // Atomic: stop() closes it while the acceptor thread is reading it.
    std::atomic<int> listen_fd{-1};
    std::uint16_t port{0};
    std::thread acceptor;
    std::vector<std::thread> readers;
    std::mutex readers_mutex;

    // Outbound connections, keyed by destination node.
    std::mutex out_mutex;
    std::vector<int> out_fds;  // index = destination node, -1 = none

    // Inbound delivery mailbox (serializes handler execution).
    std::mutex mail_mutex;
    std::condition_variable mail_cv;
    std::deque<std::pair<NodeId, Bytes>> mailbox;
    std::thread deliverer;
  };

  void acceptor_loop(Node& node);
  void reader_loop(Node& node, int fd);
  void deliverer_loop(Node& node);
  int connect_to(Node& src, NodeId dst);

  mutable std::mutex nodes_mutex_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace cmh::net
