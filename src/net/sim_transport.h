// Adapts the discrete-event simulator to the Transport interface so the
// same harness code can run deterministically or on real threads/sockets.
//
// Works unchanged on the sharded engine: Transport::send is already
// (from, to, payload), exactly the signature the simulator needs to route
// by shard, and handlers registered here run under the same ownership rule
// as plain simulator handlers (sends on behalf of own-shard nodes only
// during parallel runs).
#pragma once

#include "net/transport.h"
#include "sim/simulator.h"

namespace cmh::net {

class SimTransport final : public Transport {
 public:
  explicit SimTransport(sim::Simulator& simulator) : sim_(simulator) {}

  NodeId add_node(Handler handler) override {
    return sim_.add_node(std::move(handler));
  }

  void set_handler(NodeId node, Handler handler) override {
    sim_.set_handler(node, std::move(handler));
  }

  void send(NodeId from, NodeId to, BytesView payload) override {
    sim_.send(from, to, payload);
  }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const sim::Simulator& simulator() const { return sim_; }

 private:
  sim::Simulator& sim_;
};

}  // namespace cmh::net
