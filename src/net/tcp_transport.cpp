#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/logging.h"

namespace cmh::net {

namespace {

/// Stack iovec array bound for one sendmsg(); max_coalesced_frames is
/// clamped to this.
constexpr std::size_t kIovCap = 64;

/// Pre-frames a payload: 4-byte big-endian length prefix + bytes, one
/// contiguous buffer so a single iovec carries the whole frame.
Bytes make_frame(BytesView payload) {
  Bytes frame(4 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  frame[0] = static_cast<std::uint8_t>(len >> 24);
  frame[1] = static_cast<std::uint8_t>(len >> 16);
  frame[2] = static_cast<std::uint8_t>(len >> 8);
  frame[3] = static_cast<std::uint8_t>(len);
  if (!payload.empty()) {
    std::memcpy(frame.data() + 4, payload.data(), payload.size());
  }
  return frame;
}

/// Handshake frame: the sender's node id as a 4-byte payload (host order,
/// same wire format as the original transport).
Bytes make_hello(NodeId id) {
  Bytes payload(sizeof(NodeId));
  std::memcpy(payload.data(), &id, sizeof(id));
  return make_frame(payload);
}

/// Grow-only ring buffer for the receive path: one recv() lands many
/// frames, complete frames are sliced out in place, and the storage is
/// compacted (not reallocated) when the read head moves past data.  No
/// per-frame resize() anywhere.
class RecvBuffer {
 public:
  /// Contiguous writable space of at least `min` bytes (compacts, then
  /// grows geometrically if needed).
  std::uint8_t* writable(std::size_t min) {
    if (buf_.size() - tail_ < min) {
      if (head_ > 0) {
        std::memmove(buf_.data(), buf_.data() + head_, tail_ - head_);
        tail_ -= head_;
        head_ = 0;
      }
      if (buf_.size() - tail_ < min) {
        buf_.resize(std::max(buf_.size() * 2, tail_ + min));
      }
    }
    return buf_.data() + tail_;
  }

  [[nodiscard]] std::size_t writable_size() const { return buf_.size() - tail_; }
  void commit(std::size_t n) { tail_ += n; }
  [[nodiscard]] std::size_t buffered() const { return tail_ - head_; }

  /// Extracts the next complete frame's payload as a view into the buffer
  /// (valid until the next writable() call).  Returns false when no
  /// complete frame is buffered -- or the stream is corrupt (see corrupt()).
  bool next_frame(BytesView& payload) {
    if (buffered() < 4) return false;
    const std::uint8_t* p = buf_.data() + head_;
    const std::uint32_t len = (static_cast<std::uint32_t>(p[0]) << 24) |
                              (static_cast<std::uint32_t>(p[1]) << 16) |
                              (static_cast<std::uint32_t>(p[2]) << 8) |
                              static_cast<std::uint32_t>(p[3]);
    if (len > kMaxFrameBytes) {
      corrupt_ = true;
      return false;
    }
    if (buffered() < 4 + static_cast<std::size_t>(len)) return false;
    payload = BytesView{buf_.data() + head_ + 4, len};
    head_ += 4 + len;
    return true;
  }

  [[nodiscard]] bool corrupt() const { return corrupt_; }

 private:
  Bytes buf_ = Bytes(4096);
  std::size_t head_{0};
  std::size_t tail_{0};
  bool corrupt_{false};
};

}  // namespace

// ---- pollables --------------------------------------------------------------

/// Accepts inbound connections for one node and hands each to an
/// InboundConn on the same loop.
struct TcpTransport::ListenConn final : Pollable {
  ListenConn(TcpTransport& transport, Node& node, int fd)
      : Pollable(fd), t(transport), node(node) {}

  void on_events(std::uint32_t) override;

  TcpTransport& t;
  Node& node;
};

/// One accepted connection: ring-buffered reads, handshake, then frames
/// into the node's mailbox.  All state is loop-thread confined.
struct TcpTransport::InboundConn final : Pollable {
  InboundConn(TcpTransport& transport, Node& node, int fd)
      : Pollable(fd), t(transport), node(node) {}

  void on_events(std::uint32_t events) override;
  /// Slices complete frames out of the ring buffer; false on protocol
  /// corruption (oversized length prefix, malformed handshake).
  bool parse();

  TcpTransport& t;
  Node& node;
  RecvBuffer buf;
  bool got_hello{false};
  NodeId peer{0};
};

/// The socket behind one outbound channel.  Owned by the loop's registry;
/// the channel's mutex covers all shared state, and every fd-lifecycle
/// operation happens on the loop thread.
struct TcpTransport::OutboundConn final : Pollable {
  OutboundConn(TcpTransport& transport, Channel& channel, int fd)
      : Pollable(fd), t(transport), ch(channel) {}

  void on_events(std::uint32_t events) override;

  TcpTransport& t;
  Channel& ch;
  bool want_write{false};  // EPOLLOUT armed (loop thread only)
};

void TcpTransport::ListenConn::on_events(std::uint32_t) {
  for (;;) {
    const int cfd = ::accept4(fd(), nullptr, nullptr,
                              SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or transient error; level-trigger re-arms
    }
    int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    node.loop->add(std::make_shared<InboundConn>(t, node, cfd), EPOLLIN);
  }
}

void TcpTransport::InboundConn::on_events(std::uint32_t) {
  // Level-triggered: read until the socket is drained (short read / EAGAIN)
  // so one readiness event never leaves buffered frames behind.
  for (;;) {
    std::uint8_t* dst = buf.writable(t.config_.recv_chunk);
    const std::size_t cap = buf.writable_size();
    const ssize_t n = ::recv(fd(), dst, cap, 0);
    if (n > 0) {
      t.read_syscalls_.fetch_add(1, std::memory_order_relaxed);
      buf.commit(static_cast<std::size_t>(n));
      if (!parse()) {
        node.loop->destroy(*this);
        return;
      }
      if (static_cast<std::size_t>(n) < cap) return;  // drained
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    node.loop->destroy(*this);  // EOF or hard error
    return;
  }
}

bool TcpTransport::InboundConn::parse() {
  BytesView frame;
  std::vector<Bytes> batch;
  while (buf.next_frame(frame)) {
    if (!got_hello) {
      if (frame.size() != sizeof(NodeId)) return false;
      std::memcpy(&peer, frame.data(), sizeof(peer));
      got_hello = true;
      continue;
    }
    batch.emplace_back(frame.begin(), frame.end());
  }
  if (buf.corrupt()) return false;
  if (!batch.empty()) t.deliver_batch(node, peer, std::move(batch));
  return true;
}

void TcpTransport::OutboundConn::on_events(std::uint32_t events) {
  if (events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
    // Our protocol never sends data back on an outbound connection, so
    // inbound readiness is either junk to drain or a close/reset.
    bool dead = (events & (EPOLLHUP | EPOLLERR)) != 0;
    std::uint8_t sink[256];
    for (;;) {
      const ssize_t n = ::recv(fd(), sink, sizeof(sink), 0);
      if (n > 0) continue;  // protocol junk; ignore
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      dead = true;  // EOF or hard error
      break;
    }
    if (dead) {
      const MutexLock lock(ch.mutex);
      // `this` may be stale if the channel already reconnected.
      if (ch.conn == this) t.fail_channel_locked(ch);  // destroys this conn
      return;
    }
  }
  if (events & EPOLLOUT) {
    const MutexLock lock(ch.mutex);
    if (ch.conn != this) return;  // stale event from a previous dial
    if (ch.state == ChannelState::kConnecting) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd(), SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        t.fail_channel_locked(ch);  // destroys this conn
        return;
      }
      ch.state = ChannelState::kUp;
      ch.backoff = {};
      // The handshake precedes everything queued while the dial was in
      // flight; teardown always clears the queue, so the front is ours.
      ch.queue.push_front(make_hello(ch.src));
    }
    if (ch.state == ChannelState::kUp) t.flush_channel_locked(ch);
  }
}

// ---- registry ---------------------------------------------------------------

NodeId TcpTransport::add_node(Handler handler) {
  const MutexLock lock(nodes_mutex_);
  if (started_) {
    throw std::logic_error("TcpTransport: add_node after start()");
  }
  auto node = std::make_unique<Node>();
  node->handler = std::move(handler);
  node->id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void TcpTransport::set_handler(NodeId node, Handler handler) {
  const MutexLock lock(nodes_mutex_);
  if (started_) {
    // Deliverer threads read handlers without a lock (frozen-after-start
    // protocol); replacing one mid-flight would race with delivery.
    throw std::logic_error("TcpTransport: set_handler after start()");
  }
  nodes_.at(node)->handler = std::move(handler);
}

std::uint16_t TcpTransport::port(NodeId node) const {
  const MutexLock lock(nodes_mutex_);
  return nodes_.at(node)->port;
}

// ---- lifecycle --------------------------------------------------------------

void TcpTransport::start() {
  const MutexLock lock(nodes_mutex_);
  if (started_) return;
  if (stopping_) {
    // The loops were joined and every channel poisoned; rebuilding them in
    // place is not worth the complexity -- construct a fresh transport.
    throw std::logic_error("TcpTransport: restart after stop() unsupported");
  }

  for (auto& node : nodes_) {
    const int fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) throw std::runtime_error("TcpTransport: socket() failed");
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // let the OS pick
    // lint:allow(no-reinterpret-cast) -- the sockaddr cast the BSD API demands
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      throw std::runtime_error("TcpTransport: bind() failed");
    }
    if (::listen(fd, 128) != 0) {
      ::close(fd);
      throw std::runtime_error("TcpTransport: listen() failed");
    }
    socklen_t len = sizeof(addr);
    // lint:allow(no-reinterpret-cast) -- the sockaddr cast the BSD API demands
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    node->listen_fd = fd;
    node->port = ntohs(addr.sin_port);
  }

  unsigned n_loops = config_.event_loops;
  if (n_loops == 0) {
    n_loops = std::min(4u, std::max(1u, std::thread::hardware_concurrency()));
  }
  for (unsigned i = 0; i < n_loops; ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
    loops_.back()->start();
  }

  const auto n = static_cast<std::uint32_t>(nodes_.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    Node* node = nodes_[i].get();
    node->loop = loops_[i % n_loops].get();
    node->channels.reserve(n);
    for (std::uint32_t j = 0; j < n; ++j) {
      auto ch = std::make_unique<Channel>();
      // Spread channels across the pool independently of the listener
      // placement so heavy senders and heavy receivers do not pile onto
      // the same loop.
      ch->loop = loops_[(static_cast<std::size_t>(i) * n + j) % n_loops].get();
      ch->src = i;
      ch->dst = j;
      ch->dst_port = nodes_[j]->port;
      node->channels.push_back(std::move(ch));
    }
    node_index_.push_back(node);
  }

  for (auto& node : nodes_) {
    Node* raw = node.get();
    raw->loop->post([this, raw] {
      auto listener = std::make_shared<ListenConn>(*this, *raw, raw->listen_fd);
      raw->listener = listener.get();
      raw->loop->add(std::move(listener), EPOLLIN);
    });
  }

  for (auto& node : nodes_) {
    node->deliverer =
        std::thread([this, raw = node.get()] { deliverer_loop(*raw); });
  }
  started_.store(true, std::memory_order_release);
}

void TcpTransport::stop() {
  if (!started_.exchange(false)) return;
  stopping_ = true;

  // Poison every channel so senders that raced past the stopping_ check
  // drop instead of scheduling work on a dying loop, and queued frames are
  // released (drops at shutdown are acceptable).
  for (Node* node : node_index_) {
    for (auto& ch : node->channels) {
      const MutexLock lock(ch->mutex);
      ch->queue.clear();
      ch->front_offset = 0;
      ch->flush_scheduled = false;
      ch->state = ChannelState::kBackoff;
      ch->next_retry =
          std::chrono::steady_clock::now() + std::chrono::hours(24);
    }
  }

  // Joins every loop thread; each closes its registered fds on the way
  // out.  The EventLoop objects stay alive (see loops_ comment).
  for (auto& loop : loops_) loop->stop();

  for (Node* node : node_index_) {
    // Take the mail mutex before notifying so a deliverer between its
    // predicate check and wait() cannot miss the wakeup.
    { const MutexLock lock(node->mail_mutex); }
    node->mail_cv.notify_all();
    if (node->deliverer.joinable()) node->deliverer.join();
  }
}

void TcpTransport::close_listener(NodeId node) {
  if (!started_.load(std::memory_order_acquire)) return;
  Node* raw = node_index_.at(node);
  Mutex done_mutex;
  CondVar done_cv;
  bool done = false;
  const bool posted = raw->loop->post([raw, &done_mutex, &done_cv, &done] {
    if (raw->listener != nullptr && !raw->listener->closed()) {
      raw->loop->destroy(*raw->listener);
    }
    // Notify while holding the mutex: the waiter owns done_cv on its
    // stack and destroys it as soon as it reacquires the lock and sees
    // done — an unlocked notify could still be touching the condvar then.
    const MutexLock lock(done_mutex);
    done = true;
    done_cv.notify_all();
  });
  if (!posted) return;  // loop already stopped; its exit closed the fd
  const MutexLock lock(done_mutex);
  done_cv.wait(done_mutex, [&] {
    done_mutex.assert_held();  // held by CondVar::wait's contract
    return done;
  });
}

// ---- send path --------------------------------------------------------------

void TcpTransport::send(NodeId from, NodeId to, BytesView payload) {
  if (stopping_) return;  // shutting down; drops are acceptable
  if (!started_.load(std::memory_order_acquire)) {
    throw std::logic_error("TcpTransport::send: transport not started");
  }
  if (from >= node_index_.size() || to >= node_index_.size()) {
    throw std::out_of_range("TcpTransport::send: unknown node");
  }
  if (payload.size() > kMaxFrameBytes) {
    throw std::length_error("TcpTransport::send: frame exceeds kMaxFrameBytes");
  }
  Channel& ch = *node_index_[from]->channels[to];
  Bytes frame = make_frame(payload);  // framed outside the lock

  bool post_connect = false;
  bool post_flush = false;
  {
    const MutexLock lock(ch.mutex);
    switch (ch.state) {
      case ChannelState::kBackoff:
        if (std::chrono::steady_clock::now() < ch.next_retry) {
          ch.dropped.fetch_add(1, std::memory_order_relaxed);
          frames_dropped_.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        [[fallthrough]];
      case ChannelState::kIdle:
        ch.state = ChannelState::kConnecting;
        post_connect = true;
        break;
      case ChannelState::kConnecting:
        break;  // queued frames flush when the dial completes
      case ChannelState::kUp:
        if (!ch.flush_scheduled) {
          ch.flush_scheduled = true;
          post_flush = true;
        }
        break;
    }
    ch.queue.push_back(std::move(frame));
  }
  frames_enqueued_.fetch_add(1, std::memory_order_relaxed);
  // Wake the loop only when no flush is pending -- every send that lands
  // while one is scheduled rides along in the same sendmsg() batch.
  if (post_connect) {
    ch.loop->post([this, &ch] { connect_channel(ch); });
  } else if (post_flush) {
    ch.loop->post([this, &ch] { flush_channel(ch); });
  }
}

void TcpTransport::connect_channel(Channel& ch) {
  connect_attempts_.fetch_add(1, std::memory_order_relaxed);
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  const MutexLock lock(ch.mutex);
  if (stopping_ || ch.state != ChannelState::kConnecting) {
    if (fd >= 0) ::close(fd);
    return;
  }
  if (fd < 0) {
    fail_channel_locked(ch);
    return;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(ch.dst_port);
  // lint:allow(no-reinterpret-cast) -- the sockaddr cast the BSD API demands
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    fail_channel_locked(ch);
    return;
  }
  auto conn = std::make_shared<OutboundConn>(*this, ch, fd);
  OutboundConn* raw = conn.get();
  const bool connected = rc == 0;
  if (!connected) raw->want_write = true;  // completion arrives as EPOLLOUT
  ch.loop->add(std::move(conn),
               connected ? EPOLLIN : (EPOLLIN | EPOLLOUT));
  if (raw->closed()) {  // add() failed and closed the fd
    fail_channel_locked(ch);
    return;
  }
  ch.conn = raw;
  ch.fd = fd;
  if (connected) {
    ch.state = ChannelState::kUp;
    ch.backoff = {};
    ch.queue.push_front(make_hello(ch.src));
    flush_channel_locked(ch);
  }
}

void TcpTransport::flush_channel(Channel& ch) {
  const MutexLock lock(ch.mutex);
  if (ch.state != ChannelState::kUp) return;  // flushes resume on promotion
  flush_channel_locked(ch);
}

void TcpTransport::flush_channel_locked(Channel& ch) {
  iovec iov[kIovCap];
  const std::size_t max_iov = std::clamp<std::size_t>(
      config_.max_coalesced_frames, 1, kIovCap);
  for (;;) {
    if (ch.queue.empty()) {
      ch.flush_scheduled = false;
      if (ch.conn != nullptr && ch.conn->want_write) {
        ch.conn->want_write = false;
        ch.loop->set_events(*ch.conn, EPOLLIN);
      }
      return;
    }
    // One sendmsg() carries prefix+payload of up to max_iov queued frames.
    std::size_t cnt = 0;
    std::size_t requested = 0;
    for (auto it = ch.queue.begin(); it != ch.queue.end() && cnt < max_iov;
         ++it, ++cnt) {
      const std::size_t off = cnt == 0 ? ch.front_offset : 0;
      iov[cnt].iov_base = it->data() + off;
      iov[cnt].iov_len = it->size() - off;
      requested += iov[cnt].iov_len;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = cnt;
    const ssize_t n = ::sendmsg(ch.fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Kernel buffer full: flush_scheduled stays true, EPOLLOUT drives
        // the next round.
        if (ch.conn != nullptr && !ch.conn->want_write) {
          ch.conn->want_write = true;
          ch.loop->set_events(*ch.conn, EPOLLIN | EPOLLOUT);
        }
        return;
      }
      fail_channel_locked(ch);  // peer reset mid-stream
      return;
    }
    write_syscalls_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
    std::size_t left = static_cast<std::size_t>(n);
    while (left > 0) {
      Bytes& front = ch.queue.front();
      const std::size_t avail = front.size() - ch.front_offset;
      if (left >= avail) {
        left -= avail;
        ch.front_offset = 0;
        ch.queue.pop_front();
        frames_sent_.fetch_add(1, std::memory_order_relaxed);
      } else {
        ch.front_offset += left;
        left = 0;
      }
    }
  }
}

void TcpTransport::fail_channel_locked(Channel& ch) {
  const auto lost = static_cast<std::uint64_t>(ch.queue.size());
  if (lost > 0) {
    ch.dropped.fetch_add(lost, std::memory_order_relaxed);
    frames_dropped_.fetch_add(lost, std::memory_order_relaxed);
  }
  ch.queue.clear();
  ch.front_offset = 0;
  ch.flush_scheduled = false;
  ch.backoff = ch.backoff.count() == 0
                   ? config_.reconnect_backoff_initial
                   : std::min(ch.backoff * 2, config_.reconnect_backoff_max);
  ch.next_retry = std::chrono::steady_clock::now() + ch.backoff;
  ch.state = ChannelState::kBackoff;
  if (ch.conn != nullptr) {
    ch.loop->destroy(*ch.conn);
    ch.conn = nullptr;
  }
  ch.fd = -1;
  CMH_LOG(kWarn, "tcp") << "channel " << ch.src << "->" << ch.dst
                        << " down; retry in " << ch.backoff.count() << " ms ("
                        << lost << " frame(s) dropped)";
}

// ---- delivery ---------------------------------------------------------------

void TcpTransport::deliver_batch(Node& node, NodeId from,
                                 std::vector<Bytes>&& payloads) {
  {
    const MutexLock lock(node.mail_mutex);
    for (auto& payload : payloads) {
      node.mailbox.emplace_back(from, std::move(payload));
    }
  }
  node.mail_cv.notify_one();
}

void TcpTransport::deliverer_loop(Node& node) {
  for (;;) {
    std::pair<NodeId, Bytes> mail;
    {
      const MutexLock lock(node.mail_mutex);
      node.mail_cv.wait(node.mail_mutex, [&] {
        // Held by CondVar::wait's contract; the analysis cannot see through
        // the predicate lambda boundary.
        node.mail_mutex.assert_held();
        return stopping_.load() || !node.mailbox.empty();
      });
      if (node.mailbox.empty()) return;
      mail = std::move(node.mailbox.front());
      node.mailbox.pop_front();
    }
    if (node.handler) node.handler(mail.first, mail.second);
    frames_delivered_.fetch_add(1, std::memory_order_relaxed);
  }
}

// ---- introspection ----------------------------------------------------------

TransportIoStats TcpTransport::io_stats() const {
  TransportIoStats s;
  s.frames_enqueued = frames_enqueued_.load(std::memory_order_relaxed);
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.frames_dropped = frames_dropped_.load(std::memory_order_relaxed);
  s.frames_delivered = frames_delivered_.load(std::memory_order_relaxed);
  s.write_syscalls = write_syscalls_.load(std::memory_order_relaxed);
  s.read_syscalls = read_syscalls_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.connect_attempts = connect_attempts_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t TcpTransport::dropped_frames(NodeId from, NodeId to) const {
  return node_index_.at(from)->channels.at(to)->dropped.load(
      std::memory_order_relaxed);
}

}  // namespace cmh::net
