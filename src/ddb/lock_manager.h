// Per-site resource lock manager.
//
// Read/write locks with FIFO queueing: a request is granted iff it does not
// conflict with any current holder and no earlier queued request conflicts
// with it (no overtaking past conflicting waiters, which prevents
// starvation).  Lock upgrades (read -> write by the sole holder) are granted
// in place; contended upgrades queue like any other request and can
// deadlock -- the classic upgrade deadlock the detector must find.
//
// The manager also derives the local waits-for relation used for the
// intra-controller edges of section 6.4: a blocked request waits for every
// conflicting holder and every conflicting earlier waiter.
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "ddb/types.h"

namespace cmh::ddb {

/// Outcome of an acquire call.
enum class AcquireResult : std::uint8_t {
  kGranted,   // lock held now
  kQueued,    // blocked; a grant will be reported later
  kRedundant  // already held in a mode at least as strong
};

struct LockRequest {
  TransactionId txn;
  LockMode mode;
  /// Site the request was forwarded from (== local site for local
  /// requests); carried so the controller can reply along the right
  /// inter-controller edge.
  SiteId origin;
};

/// A granted lock.  The origin is kept because the holding agent (T, here)
/// conceptually waits on the agent (T, origin) that commanded the
/// acquisition -- it may only release when that agent's computation
/// proceeds (the release-wait inter-controller edge; see controller.h).
struct Holding {
  LockMode mode;
  SiteId origin;
};

class LockManager {
 public:
  /// Requests `mode` on `resource` for `txn`.  Never blocks the caller;
  /// kQueued means the grant will surface via release()/abort() later.
  AcquireResult acquire(ResourceId resource, TransactionId txn, LockMode mode,
                        SiteId origin);

  /// Releases txn's hold on `resource` (no-op if not held) and grants any
  /// now-eligible queued requests, returning them in grant order.
  std::vector<LockRequest> release(ResourceId resource, TransactionId txn);

  /// Releases everything txn holds and cancels its queued requests.
  /// Returns the requests newly granted to *other* transactions.
  std::vector<std::pair<ResourceId, LockRequest>> abort(TransactionId txn);

  // ---- queries ------------------------------------------------------------

  [[nodiscard]] bool holds(ResourceId resource, TransactionId txn) const;
  [[nodiscard]] std::optional<LockMode> held_mode(ResourceId resource,
                                                  TransactionId txn) const;
  [[nodiscard]] bool waiting(ResourceId resource, TransactionId txn) const;

  /// Resources txn currently holds.
  [[nodiscard]] std::vector<ResourceId> held_by(TransactionId txn) const;

  /// Origin sites of txn's local holdings (deduplicated, sorted) -- the
  /// targets of its outgoing release-wait edges.
  [[nodiscard]] std::vector<SiteId> holding_origins(TransactionId txn) const;

  /// The local waits-for relation: pairs (waiter, blocker) over
  /// transactions, derived from every queue (section 6.4 intra edges).
  [[nodiscard]] std::vector<std::pair<TransactionId, TransactionId>>
  wait_edges() const;

  /// Pending (queued) requests for a given transaction, with resources.
  [[nodiscard]] std::vector<std::pair<ResourceId, LockRequest>> queued_for(
      TransactionId txn) const;

  /// Every pending (queued) request across all resources.
  [[nodiscard]] std::vector<std::pair<ResourceId, LockRequest>>
  queued_requests() const;

  [[nodiscard]] std::size_t queue_depth(ResourceId resource) const;

  /// Transactions currently queued on `resource` (FIFO order).
  [[nodiscard]] std::vector<TransactionId> waiters(ResourceId resource) const;

  /// Transactions a hypothetical request (txn, mode) on `resource` would
  /// wait for right now: conflicting holders and conflicting queued
  /// requests.  Used by the harness oracle to account for in-flight (grey)
  /// requests.
  [[nodiscard]] std::vector<TransactionId> blockers(ResourceId resource,
                                                    TransactionId txn,
                                                    LockMode mode) const;

  /// Folds holders and queues into `h` (sorted iteration, so the value is
  /// independent of hash-map ordering).  Used by the exhaustive
  /// interleaving checker to fingerprint states.
  void mix_state_hash(std::uint64_t& h) const;

 private:
  struct ResourceState {
    // Holders: transaction -> holding.  Multiple readers, or one writer.
    std::unordered_map<TransactionId, Holding> holders;
    std::deque<LockRequest> queue;
  };

  /// True iff `req` (at queue position `pos`) can be granted now.
  [[nodiscard]] static bool grantable(const ResourceState& rs,
                                      const LockRequest& req, std::size_t pos);

  /// Pops every grantable request from the front region of the queue.
  std::vector<LockRequest> grant_eligible(ResourceState& rs);

  std::unordered_map<ResourceId, ResourceState> resources_;
};

}  // namespace cmh::ddb
