#include "ddb/lock_manager.h"

#include <algorithm>

#include "common/flat_set.h"

namespace cmh::ddb {

bool LockManager::grantable(const ResourceState& rs, const LockRequest& req,
                            std::size_t pos) {
  for (const auto& [holder, holding] : rs.holders) {
    if (holder == req.txn) continue;  // self-held (upgrade) never self-blocks
    if (conflicts(holding.mode, req.mode)) return false;
  }
  for (std::size_t i = 0; i < pos && i < rs.queue.size(); ++i) {
    const LockRequest& ahead = rs.queue[i];
    if (ahead.txn == req.txn) continue;
    if (conflicts(ahead.mode, req.mode)) return false;
  }
  return true;
}

AcquireResult LockManager::acquire(ResourceId resource, TransactionId txn,
                                   LockMode mode, SiteId origin) {
  ResourceState& rs = resources_[resource];

  const auto held = rs.holders.find(txn);
  if (held != rs.holders.end()) {
    if (held->second.mode == LockMode::kWrite || mode == LockMode::kRead) {
      return AcquireResult::kRedundant;
    }
    // Upgrade read -> write: in place iff sole holder.  The original
    // acquisition's origin is kept.
    if (rs.holders.size() == 1) {
      held->second.mode = LockMode::kWrite;
      return AcquireResult::kGranted;
    }
    rs.queue.push_back(LockRequest{txn, mode, origin});
    return AcquireResult::kQueued;
  }

  const LockRequest req{txn, mode, origin};
  if (grantable(rs, req, rs.queue.size())) {
    rs.holders.emplace(txn, Holding{mode, origin});
    return AcquireResult::kGranted;
  }
  rs.queue.push_back(req);
  return AcquireResult::kQueued;
}

std::vector<LockRequest> LockManager::grant_eligible(ResourceState& rs) {
  std::vector<LockRequest> granted;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < rs.queue.size(); ++i) {
      const LockRequest req = rs.queue[i];
      if (!grantable(rs, req, i)) continue;
      rs.queue.erase(rs.queue.begin() + static_cast<std::ptrdiff_t>(i));
      auto [it, inserted] =
          rs.holders.emplace(req.txn, Holding{req.mode, req.origin});
      if (!inserted && req.mode == LockMode::kWrite) {
        it->second.mode = LockMode::kWrite;  // queued upgrade completes
      }
      granted.push_back(req);
      progressed = true;
      break;  // holders changed; rescan from the front
    }
  }
  return granted;
}

std::vector<LockRequest> LockManager::release(ResourceId resource,
                                              TransactionId txn) {
  const auto it = resources_.find(resource);
  if (it == resources_.end()) return {};
  ResourceState& rs = it->second;
  if (rs.holders.erase(txn) == 0) return {};
  auto granted = grant_eligible(rs);
  if (rs.holders.empty() && rs.queue.empty()) resources_.erase(it);
  return granted;
}

std::vector<std::pair<ResourceId, LockRequest>> LockManager::abort(
    TransactionId txn) {
  std::vector<std::pair<ResourceId, LockRequest>> granted;
  std::vector<ResourceId> empty;
  for (auto& [resource, rs] : resources_) {
    const bool held = rs.holders.erase(txn) > 0;
    const auto old_size = rs.queue.size();
    rs.queue.erase(std::remove_if(rs.queue.begin(), rs.queue.end(),
                                  [&](const LockRequest& r) {
                                    return r.txn == txn;
                                  }),
                   rs.queue.end());
    if (held || rs.queue.size() != old_size) {
      for (LockRequest& g : grant_eligible(rs)) {
        granted.emplace_back(resource, std::move(g));
      }
    }
    if (rs.holders.empty() && rs.queue.empty()) empty.push_back(resource);
  }
  for (const ResourceId r : empty) resources_.erase(r);
  return granted;
}

bool LockManager::holds(ResourceId resource, TransactionId txn) const {
  const auto it = resources_.find(resource);
  return it != resources_.end() && it->second.holders.contains(txn);
}

std::optional<LockMode> LockManager::held_mode(ResourceId resource,
                                               TransactionId txn) const {
  const auto it = resources_.find(resource);
  if (it == resources_.end()) return std::nullopt;
  const auto jt = it->second.holders.find(txn);
  if (jt == it->second.holders.end()) return std::nullopt;
  return jt->second.mode;
}

bool LockManager::waiting(ResourceId resource, TransactionId txn) const {
  const auto it = resources_.find(resource);
  if (it == resources_.end()) return false;
  return std::any_of(it->second.queue.begin(), it->second.queue.end(),
                     [&](const LockRequest& r) { return r.txn == txn; });
}

std::vector<ResourceId> LockManager::held_by(TransactionId txn) const {
  std::vector<ResourceId> result;
  for (const auto& [resource, rs] : resources_) {
    if (rs.holders.contains(txn)) result.push_back(resource);
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<std::pair<TransactionId, TransactionId>> LockManager::wait_edges()
    const {
  std::vector<std::pair<TransactionId, TransactionId>> edges;
  for (const auto& [resource, rs] : resources_) {
    for (std::size_t i = 0; i < rs.queue.size(); ++i) {
      const LockRequest& w = rs.queue[i];
      for (const auto& [holder, holding] : rs.holders) {
        if (holder != w.txn && conflicts(holding.mode, w.mode)) {
          edges.emplace_back(w.txn, holder);
        }
      }
      for (std::size_t j = 0; j < i; ++j) {
        const LockRequest& ahead = rs.queue[j];
        if (ahead.txn != w.txn && conflicts(ahead.mode, w.mode)) {
          edges.emplace_back(w.txn, ahead.txn);
        }
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::vector<SiteId> LockManager::holding_origins(TransactionId txn) const {
  // Sorted flat set: the origin count is tiny (bounded by the site count a
  // transaction touched), so contiguous storage beats a node-based set.
  FlatSet<SiteId, 8> origins;
  for (const auto& [resource, rs] : resources_) {
    const auto it = rs.holders.find(txn);
    if (it != rs.holders.end()) origins.insert(it->second.origin);
  }
  return {origins.begin(), origins.end()};
}

std::vector<std::pair<ResourceId, LockRequest>> LockManager::queued_for(
    TransactionId txn) const {
  std::vector<std::pair<ResourceId, LockRequest>> result;
  for (const auto& [resource, rs] : resources_) {
    for (const LockRequest& r : rs.queue) {
      if (r.txn == txn) result.emplace_back(resource, r);
    }
  }
  return result;
}

std::vector<std::pair<ResourceId, LockRequest>> LockManager::queued_requests()
    const {
  std::vector<std::pair<ResourceId, LockRequest>> result;
  for (const auto& [resource, rs] : resources_) {
    for (const LockRequest& r : rs.queue) result.emplace_back(resource, r);
  }
  return result;
}

std::size_t LockManager::queue_depth(ResourceId resource) const {
  const auto it = resources_.find(resource);
  return it == resources_.end() ? 0 : it->second.queue.size();
}

std::vector<TransactionId> LockManager::blockers(ResourceId resource,
                                                 TransactionId txn,
                                                 LockMode mode) const {
  FlatSet<TransactionId, 8> result;
  const auto it = resources_.find(resource);
  if (it == resources_.end()) return {};
  for (const auto& [holder, holding] : it->second.holders) {
    if (holder != txn && conflicts(holding.mode, mode)) result.insert(holder);
  }
  for (const LockRequest& r : it->second.queue) {
    if (r.txn != txn && conflicts(r.mode, mode)) result.insert(r.txn);
  }
  return {result.begin(), result.end()};
}

std::vector<TransactionId> LockManager::waiters(ResourceId resource) const {
  std::vector<TransactionId> result;
  const auto it = resources_.find(resource);
  if (it == resources_.end()) return result;
  result.reserve(it->second.queue.size());
  for (const LockRequest& r : it->second.queue) result.push_back(r.txn);
  return result;
}

void LockManager::mix_state_hash(std::uint64_t& h) const {
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  std::vector<ResourceId> ids;
  ids.reserve(resources_.size());
  for (const auto& [id, rs] : resources_) {
    // Empty entries (everything released) are behaviorally identical to
    // absent ones; skip them so equivalent states hash equal.
    if (!rs.holders.empty() || !rs.queue.empty()) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const ResourceId id : ids) {
    const ResourceState& rs = resources_.at(id);
    mix(id.value());
    std::vector<std::pair<TransactionId, Holding>> holders(
        rs.holders.begin(), rs.holders.end());
    std::sort(holders.begin(), holders.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [txn, holding] : holders) {
      mix(txn.value());
      mix(static_cast<std::uint64_t>(holding.mode));
      mix(holding.origin.value());
    }
    mix(0xD1);  // holders/queue separator
    for (const LockRequest& r : rs.queue) {
      mix(r.txn.value());
      mix(static_cast<std::uint64_t>(r.mode));
      mix(r.origin.value());
    }
    mix(0xD2);
  }
}

}  // namespace cmh::ddb
