// Cluster -- a simulator-hosted DDB: N controllers, round-robin resource
// placement, a client transaction layer and a ground-truth deadlock oracle.
//
// This is the top-level public API for the DDB model (see README quickstart):
//
//   ddb::Cluster db({.n_sites = 4, .n_resources = 64});
//   auto t = db.begin(SiteId{0});
//   db.lock(t, ResourceId{7}, LockMode::kWrite);
//   db.simulator().run();
//   if (db.aborted(t)) { /* deadlock victim */ }
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ddb/controller.h"
#include "sim/simulator.h"

namespace cmh::ddb {

struct ClusterConfig {
  std::uint32_t n_sites{4};
  std::uint32_t n_resources{64};
  DdbOptions options{};
  std::uint64_t seed{1};
  sim::DelayModel delays{};
};

enum class TxnStatus : std::uint8_t { kActive, kCommitted, kAborted };

struct DdbDetection {
  TransactionId victim;
  DdbProbeTag tag;
  SiteId site;  // declaring controller
  SimTime at;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] std::uint32_t n_sites() const { return config_.n_sites; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] Controller& controller(SiteId s) {
    return *controllers_.at(s.value());
  }
  [[nodiscard]] const Controller& controller(SiteId s) const {
    return *controllers_.at(s.value());
  }

  /// Static placement: resource r lives at site (r mod n_sites).
  [[nodiscard]] SiteId owner_of(ResourceId r) const {
    return SiteId{r.value() % config_.n_sites};
  }

  // ---- client transaction layer -------------------------------------------

  /// Starts a new transaction homed at `home`.
  TransactionId begin(SiteId home);

  /// Requests a lock through the home controller.  Completion is reported
  /// via granted(); an abort via status().
  void lock(TransactionId txn, ResourceId resource, LockMode mode);

  /// Commits: releases all locks everywhere.  The transaction must not have
  /// requests still pending.
  void finish(TransactionId txn);

  /// Client-initiated abort (e.g. lock-wait timeout): releases everything
  /// everywhere; the abort listener fires as for a deadlock victim.
  void abort(TransactionId txn);

  [[nodiscard]] TxnStatus status(TransactionId txn) const;
  [[nodiscard]] bool granted(TransactionId txn, ResourceId resource) const;
  [[nodiscard]] bool all_granted(TransactionId txn) const;
  [[nodiscard]] SiteId home_of(TransactionId txn) const;

  /// Observer invoked when a lock is granted to a transaction (after the
  /// cluster's own bookkeeping).  Workload drivers use this to advance.
  using GrantListener = std::function<void(TransactionId, ResourceId)>;
  void set_grant_listener(GrantListener fn) { grant_listener_ = std::move(fn); }

  /// Observer invoked when a transaction is aborted (deadlock victim).
  using AbortListener = std::function<void(TransactionId)>;
  void set_abort_listener(AbortListener fn) { abort_listener_ = std::move(fn); }

  // ---- detection results ----------------------------------------------------

  [[nodiscard]] const std::vector<DdbDetection>& detections() const {
    return detections_;
  }

  /// Invoked synchronously at the declaration instant (before any victim
  /// abort), so tests can interrogate ground truth at that exact moment.
  using DetectionListener = std::function<void(const DdbDetection&)>;
  void set_detection_listener(DetectionListener fn) {
    detection_listener_ = std::move(fn);
  }

  // ---- oracle (global knowledge; valid whenever the simulator is idle) ----

  /// Transactions on a cycle of the global transaction-wait-for graph
  /// (union of all sites' local wait edges).  At simulator idle this is
  /// exactly the set of genuinely deadlocked transactions.
  [[nodiscard]] std::vector<TransactionId> oracle_deadlocked() const;

  /// Sum of controller stats across sites.
  [[nodiscard]] ControllerStats total_stats() const;

 private:
  // Per the paper's section 6.2, a transaction's computation stays at the
  // agent that issued the request ("(Ti,Sj) may now proceed with its
  // computation"): remote agents acquire on its behalf.  All lock requests
  // therefore originate from the home agent; the holding agents' dependence
  // on the home is the release-wait edge (see controller.h).
  struct TxnState {
    SiteId home;
    TxnStatus status{TxnStatus::kActive};
    std::map<ResourceId, LockMode> requested;
    std::set<ResourceId> granted;
  };

  ClusterConfig config_;
  sim::Simulator sim_;
  std::vector<std::unique_ptr<Controller>> controllers_;
  std::unordered_map<TransactionId, TxnState> txns_;
  std::uint32_t next_txn_{0};
  std::vector<DdbDetection> detections_;
  GrantListener grant_listener_;
  AbortListener abort_listener_;
  DetectionListener detection_listener_;
};

}  // namespace cmh::ddb
