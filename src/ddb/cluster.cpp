#include "ddb/cluster.h"

#include <deque>
#include <stdexcept>

namespace cmh::ddb {

Cluster::Cluster(ClusterConfig config)
    : config_(config), sim_(config.seed, config.delays) {
  controllers_.reserve(config_.n_sites);
  for (std::uint32_t i = 0; i < config_.n_sites; ++i) sim_.add_node({});
  for (std::uint32_t i = 0; i < config_.n_sites; ++i) {
    const SiteId site{i};
    auto controller = std::make_unique<Controller>(
        site, config_.n_sites,
        [this, site](SiteId to, BytesView payload) {
          sim_.send(site.value(), to.value(), payload);
        },
        [this](ResourceId r) { return owner_of(r); }, config_.options,
        [this](SimTime delay, std::function<void()> fn) {
          sim_.schedule(delay, std::move(fn));
        });
    controller->set_grant_callback(
        [this](TransactionId txn, ResourceId resource) {
          const auto it = txns_.find(txn);
          if (it != txns_.end()) it->second.granted.insert(resource);
          if (grant_listener_) grant_listener_(txn, resource);
        });
    controller->set_abort_callback([this, site](TransactionId txn) {
      const auto it = txns_.find(txn);
      if (it != txns_.end() && it->second.home == site) {
        it->second.status = TxnStatus::kAborted;
        if (abort_listener_) abort_listener_(txn);
      }
    });
    controller->set_deadlock_callback(
        [this, site](TransactionId victim, const DdbProbeTag& tag) {
          const DdbDetection d{victim, tag, site, sim_.now()};
          detections_.push_back(d);
          if (detection_listener_) detection_listener_(d);
        });
    controllers_.push_back(std::move(controller));
    sim_.set_handler(i, [this, i](sim::NodeId from, const Bytes& payload) {
      const auto st =
          controllers_[i]->on_message(SiteId{from}, payload);
      if (!st.ok()) {
        throw std::logic_error("ddb::Cluster: bad frame: " + st.to_string());
      }
    });
  }
}

TransactionId Cluster::begin(SiteId home) {
  if (home.value() >= config_.n_sites) {
    throw std::out_of_range("Cluster::begin: bad home site");
  }
  const TransactionId txn{next_txn_++};
  txns_.emplace(txn, TxnState{home, TxnStatus::kActive, {}, {}});
  return txn;
}

void Cluster::lock(TransactionId txn, ResourceId resource, LockMode mode) {
  auto& state = txns_.at(txn);
  if (state.status != TxnStatus::kActive) {
    throw std::logic_error("Cluster::lock: transaction not active");
  }
  auto [it, inserted] = state.requested.emplace(resource, mode);
  if (!inserted && mode == LockMode::kWrite && it->second == LockMode::kRead) {
    // Upgrade: not granted again until the write lock is actually held.
    it->second = mode;
    state.granted.erase(resource);
  }
  controller(state.home).lock(txn, resource, mode);
}

void Cluster::finish(TransactionId txn) {
  auto& state = txns_.at(txn);
  if (state.status != TxnStatus::kActive) return;
  state.status = TxnStatus::kCommitted;
  controller(state.home).finish(txn);
}

void Cluster::abort(TransactionId txn) {
  auto& state = txns_.at(txn);
  if (state.status != TxnStatus::kActive) return;
  // The controller's abort broadcast triggers the home-site abort callback,
  // which flips the status and notifies the listener.
  controller(state.home).abort(txn);
}

TxnStatus Cluster::status(TransactionId txn) const {
  return txns_.at(txn).status;
}

bool Cluster::granted(TransactionId txn, ResourceId resource) const {
  return txns_.at(txn).granted.contains(resource);
}

bool Cluster::all_granted(TransactionId txn) const {
  const auto& state = txns_.at(txn);
  return state.granted.size() == state.requested.size();
}

SiteId Cluster::home_of(TransactionId txn) const {
  return txns_.at(txn).home;
}

std::vector<TransactionId> Cluster::oracle_deadlocked() const {
  // Union of every site's local wait edges at the transaction level, plus
  // the waits implied by *in-flight* (grey) requests -- a request that has
  // been issued but not yet queued at the owner will wait on the owner's
  // current conflicting holders/waiters when it lands, and grey edges are
  // dark in the paper's model (they make cycles permanent too).  At
  // simulator idle there are no in-flight requests and this is exactly the
  // global transaction-wait-for graph.
  std::unordered_map<TransactionId, std::vector<TransactionId>> adj;
  std::set<TransactionId> nodes;
  for (const auto& c : controllers_) {
    for (const auto& [w, b] : c->intra_edges()) {
      adj[w].push_back(b);
      nodes.insert(w);
      nodes.insert(b);
    }
  }
  for (const auto& [txn, state] : txns_) {
    if (state.status != TxnStatus::kActive) continue;
    for (const auto& [resource, mode] : state.requested) {
      if (state.granted.contains(resource)) continue;
      const auto& owner = *controllers_.at(owner_of(resource).value());
      if (owner.locks().waiting(resource, txn)) continue;  // already queued
      if (owner.locks().holds(resource, txn)) continue;    // grant in flight
      for (const TransactionId blocker :
           owner.locks().blockers(resource, txn, mode)) {
        adj[txn].push_back(blocker);
        nodes.insert(txn);
        nodes.insert(blocker);
      }
    }
  }

  // A transaction is deadlocked iff it can reach itself.
  std::vector<TransactionId> result;
  for (const TransactionId t : nodes) {
    std::set<TransactionId> seen;
    std::deque<TransactionId> frontier{t};
    bool cycle = false;
    while (!frontier.empty() && !cycle) {
      const TransactionId u = frontier.front();
      frontier.pop_front();
      const auto it = adj.find(u);
      if (it == adj.end()) continue;
      for (const TransactionId v : it->second) {
        if (v == t) {
          cycle = true;
          break;
        }
        if (seen.insert(v).second) frontier.push_back(v);
      }
    }
    if (cycle) result.push_back(t);
  }
  return result;
}

ControllerStats Cluster::total_stats() const {
  ControllerStats total;
  for (const auto& c : controllers_) {
    const ControllerStats& s = c->stats();
    total.local_requests += s.local_requests;
    total.remote_requests_sent += s.remote_requests_sent;
    total.remote_requests_received += s.remote_requests_received;
    total.grants_sent += s.grants_sent;
    total.grants_received += s.grants_received;
    total.probes_sent += s.probes_sent;
    total.probes_received += s.probes_received;
    total.meaningful_probes += s.meaningful_probes;
    total.computations_initiated += s.computations_initiated;
    total.local_cycle_detections += s.local_cycle_detections;
    total.deadlocks_declared += s.deadlocks_declared;
    total.purges_sent += s.purges_sent;
    total.aborts_executed += s.aborts_executed;
  }
  return total;
}

}  // namespace cmh::ddb
