// Controller-to-controller wire messages of the DDB model (section 6).
//
// Lock traffic realizes the colored inter-controller edges:
//   RemoteLockRequestMsg  in flight  -- edge grey   (G3 of section 6.4)
//   ... received & queued            -- edge black  (G4)
//   RemoteLockGrantMsg sent          -- edge white  (G5)
//   ... received                     -- edge gone   (G6)
// DdbProbeMsg is the detection traffic of section 6.5; PurgeTxnMsg is the
// deadlock-resolution / commit cleanup channel.
#pragma once

#include <variant>

#include "common/serialize.h"
#include "common/status.h"
#include "ddb/types.h"

namespace cmh::ddb {

/// C_j forwards a lock request of transaction `txn` to the resource's
/// managing controller.  The wire sender site is the origin of the
/// inter-controller edge ((txn, sender), (txn, receiver)).
struct RemoteLockRequestMsg {
  TransactionId txn;
  ResourceId resource;
  LockMode mode{LockMode::kRead};
};

/// C_m tells the origin controller that (txn, m) acquired the resource.
struct RemoteLockGrantMsg {
  TransactionId txn;
  ResourceId resource;
};

/// Drop all local state of `txn` (locks held, queued requests).  Sent at
/// commit (release everything) and at deadlock-resolution abort.
struct PurgeTxnMsg {
  TransactionId txn;
  bool aborted{false};
};

/// Probe of computation `tag`, sent along inter-controller edge `edge`
/// (section 6.5).  `floor` is the lowest still-live sequence number of the
/// initiating controller's current detection round; receivers discard state
/// for that initiator's computations below it (the section-4.3 stale-tag
/// rule, generalized to the Q concurrent computations of section 6.7).
struct DdbProbeMsg {
  DdbProbeTag tag;
  std::uint64_t floor{0};
  InterEdge edge;
  /// False: acquisition edge -- (T, from) awaits a grant from (T, to)'s
  /// controller; meaningful iff T has a queued request at the receiver
  /// forwarded from `edge.from.site`.
  /// True: release-wait edge -- (T, from) holds a resource it acquired on
  /// behalf of (T, to) and can only release when that agent's computation
  /// proceeds; meaningful iff T is blocked at the receiver (T cannot have
  /// committed while blocked, so the holding at the sender still exists).
  bool via_release_wait{false};
};

using DdbMessage = std::variant<RemoteLockRequestMsg, RemoteLockGrantMsg,
                                PurgeTxnMsg, DdbProbeMsg>;

/// Wire size of a DdbProbeMsg frame: 1 (type) + 4 (initiator) + 8 (sequence)
/// + 8 (floor) + 2*8 (edge endpoints) + 1 (kind).  Every DDB frame fits.
inline constexpr std::size_t kDdbFrameCapacity = 38;

/// A stack-encoded frame; view() is valid for the frame's lifetime.  The
/// detection hot path (one probe per inter-controller edge, every round)
/// heap-allocates nothing.
using DdbFrame = StackWriter<kDdbFrameCapacity>;

[[nodiscard]] DdbFrame encode_small(const DdbProbeMsg& m);

/// Serializes `msg` into `out` (cleared first; capacity retained).
void encode_into(const DdbMessage& msg, Bytes& out);

[[nodiscard]] Bytes encode(const DdbMessage& msg);
[[nodiscard]] Result<DdbMessage> decode(BytesView payload);

}  // namespace cmh::ddb
