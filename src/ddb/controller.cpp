#include "ddb/controller.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"

namespace cmh::ddb {

Controller::Controller(SiteId id, std::uint32_t n_sites, Sender sender,
                       ResourceMap resource_map, DdbOptions options,
                       TimerFn timers)
    : id_(id),
      n_sites_(n_sites),
      send_(std::move(sender)),
      resource_map_(std::move(resource_map)),
      options_(options),
      timers_(std::move(timers)) {
  if ((options_.initiation == DdbInitiation::kDelayed) && !timers_) {
    throw std::invalid_argument("Controller: kDelayed requires timers");
  }
}

// ---- client API -------------------------------------------------------------

bool Controller::lock(TransactionId txn, ResourceId resource, LockMode mode) {
  if (aborted_txns_.contains(txn)) {
    // This controller already aborted txn but the client's home site has
    // not heard yet; accepting the request would recreate zombie state.
    // The abort notification is on its way; the client will retry.
    return false;
  }
  const SiteId owner = resource_map_(resource);
  if (owner == id_) {
    ++stats_.local_requests;
    const AcquireResult r = locks_.acquire(resource, txn, mode, id_);
    if (r != AcquireResult::kQueued) {
      // An in-place read->write upgrade can create fresh conflicts with
      // already-queued readers; re-arm detection for them.
      if (mode == LockMode::kWrite) {
        for (const TransactionId waiter : locks_.waiters(resource)) {
          schedule_block_check(waiter);
        }
      }
      if (on_grant_) on_grant_(txn, resource);
      return true;
    }
    schedule_block_check(txn);
    return false;
  }
  // Remote resource: forward to the owning controller.  This creates the
  // inter-controller edge ((txn, here), (txn, owner)) -- grey while the
  // request is in flight (section 6.4, G3).
  ++pending_remote_[txn][owner];
  ++stats_.remote_requests_sent;
  send_(owner, encode(RemoteLockRequestMsg{txn, resource, mode}));
  schedule_block_check(txn);
  return false;
}

void Controller::finish(TransactionId txn) {
  dispatch_grants(locks_.abort(txn));
  pending_remote_.erase(txn);
  remote_holdings_.erase(txn);
  own_comp_seq_.erase(txn);
  // The transaction may hold locks at any site it executed at; broadcast
  // the release (a real system would piggyback a participant list, but the
  // paper's model does not provide one).
  for (std::uint32_t s = 0; s < n_sites_; ++s) {
    if (SiteId{s} == id_) continue;
    ++stats_.purges_sent;
    send_(SiteId{s}, encode(PurgeTxnMsg{txn, /*aborted=*/false}));
  }
}

void Controller::abort(TransactionId txn) {
  ++stats_.aborts_executed;
  aborted_txns_.insert(txn);
  dispatch_grants(locks_.abort(txn));
  pending_remote_.erase(txn);
  remote_holdings_.erase(txn);
  own_comp_seq_.erase(txn);
  for (auto& [tag, comp] : computations_) comp.labelled.erase(txn);
  if (on_abort_) on_abort_(txn);
  // The victim may hold state at any site (it can be another site's home
  // transaction caught on our cycle); broadcast the purge.
  for (std::uint32_t s = 0; s < n_sites_; ++s) {
    if (SiteId{s} == id_) continue;
    ++stats_.purges_sent;
    send_(SiteId{s}, encode(PurgeTxnMsg{txn, /*aborted=*/true}));
  }
}

// ---- transport --------------------------------------------------------------

Status Controller::on_message(SiteId from, BytesView payload) {
  auto decoded = decode(payload);
  if (!decoded.ok()) return decoded.status();
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RemoteLockRequestMsg>) {
          handle_lock_request(from, m);
        } else if constexpr (std::is_same_v<T, RemoteLockGrantMsg>) {
          handle_grant(from, m);
        } else if constexpr (std::is_same_v<T, PurgeTxnMsg>) {
          handle_purge(from, m);
        } else if constexpr (std::is_same_v<T, DdbProbeMsg>) {
          handle_probe(from, m);
        }
      },
      *decoded);
  return Status::Ok();
}

void Controller::handle_lock_request(SiteId from,
                                     const RemoteLockRequestMsg& msg) {
  ++stats_.remote_requests_received;
  if (aborted_txns_.contains(msg.txn)) {
    // Zombie request from a transaction whose abort purge overtook it on a
    // different channel; granting it would wedge the resource forever.
    return;
  }
  // The inter-controller edge ((txn, from), (txn, here)) blackened on
  // receipt (section 6.4, G4).
  const AcquireResult r = locks_.acquire(msg.resource, msg.txn, msg.mode, from);
  if (r != AcquireResult::kQueued) {
    if (msg.mode == LockMode::kWrite) {
      // In-place upgrade may newly conflict with queued readers.
      for (const TransactionId waiter : locks_.waiters(msg.resource)) {
        schedule_block_check(waiter);
      }
    }
    // Granted at once: the edge whitens as the grant is sent (G5).
    ++stats_.grants_sent;
    send_(from, encode(RemoteLockGrantMsg{msg.txn, msg.resource}));
    return;
  }
  // The forwarded request is queued: agent (txn, here) is now blocked on
  // local holders, i.e. new intra edges appeared.
  schedule_block_check(msg.txn);
}

void Controller::handle_grant(SiteId from, const RemoteLockGrantMsg& msg) {
  ++stats_.grants_received;
  remote_holdings_[msg.txn].insert(from);
  const auto it = pending_remote_.find(msg.txn);
  if (it != pending_remote_.end()) {
    const auto jt = it->second.find(from);
    if (jt != it->second.end() && --jt->second == 0) it->second.erase(jt);
    if (it->second.empty()) pending_remote_.erase(it);
  }
  if (on_grant_) on_grant_(msg.txn, msg.resource);
}

void Controller::handle_purge(SiteId /*from*/, const PurgeTxnMsg& msg) {
  if (msg.aborted) aborted_txns_.insert(msg.txn);
  dispatch_grants(locks_.abort(msg.txn));
  pending_remote_.erase(msg.txn);
  remote_holdings_.erase(msg.txn);
  own_comp_seq_.erase(msg.txn);
  for (auto& [tag, comp] : computations_) comp.labelled.erase(msg.txn);
  if (msg.aborted && on_abort_) on_abort_(msg.txn);
}

void Controller::dispatch_grants(
    const std::vector<std::pair<ResourceId, LockRequest>>& grants) {
  for (const auto& [resource, req] : grants) {
    if (req.origin == id_) {
      if (on_grant_) on_grant_(req.txn, resource);
    } else {
      ++stats_.grants_sent;
      send_(req.origin, encode(RemoteLockGrantMsg{req.txn, resource}));
    }
  }
  // A grant reshuffles the waits-for relation: transactions still queued on
  // a granted resource now wait on the *new* holders -- an intra-controller
  // edge created without any block event.  Re-arm detection for them, or a
  // cycle closed by this reshuffle would never be probed.
  std::set<ResourceId> touched;
  for (const auto& [resource, req] : grants) touched.insert(resource);
  for (const ResourceId resource : touched) {
    for (const TransactionId waiter : locks_.waiters(resource)) {
      schedule_block_check(waiter);
    }
  }
}

// ---- detection ----------------------------------------------------------------

bool Controller::blocked(TransactionId txn) const {
  if (pending_remote_.contains(txn)) return true;
  return !locks_.queued_for(txn).empty();
}

std::vector<TransactionId> Controller::incoming_black_processes() const {
  std::set<TransactionId> result;
  // A queued request forwarded from another site is precisely an incoming
  // black acquisition edge (the request was received, no grant sent).
  for (const auto& [resource, req] : locks_.queued_requests()) {
    if (req.origin != id_) result.insert(req.txn);
  }
  // A blocked local process whose transaction holds resources elsewhere
  // (acquired through this controller) has incoming release-wait edges.
  for (const auto& [txn, sites] : remote_holdings_) {
    if (!sites.empty() && blocked(txn)) result.insert(txn);
  }
  return {result.begin(), result.end()};
}

std::vector<SiteId> Controller::pending_remote_sites(TransactionId txn) const {
  std::vector<SiteId> result;
  const auto it = pending_remote_.find(txn);
  if (it == pending_remote_.end()) return result;
  for (const auto& [site, count] : it->second) {
    if (count > 0) result.push_back(site);
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::set<TransactionId> Controller::intra_reachable(TransactionId txn,
                                                    bool* local_cycle) const {
  std::unordered_map<TransactionId, std::vector<TransactionId>> adj;
  for (const auto& [w, b] : locks_.wait_edges()) adj[w].push_back(b);

  std::set<TransactionId> seen{txn};
  bool cycle = false;
  std::deque<TransactionId> frontier{txn};
  while (!frontier.empty()) {
    const TransactionId u = frontier.front();
    frontier.pop_front();
    const auto it = adj.find(u);
    if (it == adj.end()) continue;
    for (const TransactionId v : it->second) {
      if (v == txn) cycle = true;
      if (seen.insert(v).second) frontier.push_back(v);
    }
  }
  if (local_cycle) *local_cycle = cycle;
  return seen;
}

std::uint64_t Controller::current_floor() {
  std::erase_if(own_comp_seq_, [&](const auto& kv) {
    return !blocked(kv.first);
  });
  std::uint64_t floor = next_sequence_ + 1;
  for (const auto& [txn, seq] : own_comp_seq_) floor = std::min(floor, seq);
  return floor;
}

std::optional<DdbProbeTag> Controller::initiate_for(TransactionId txn) {
  if (!blocked(txn)) return std::nullopt;

  bool local_cycle = false;
  auto labelled = intra_reachable(txn, &local_cycle);
  const DdbProbeTag tag{id_, ++next_sequence_};
  if (local_cycle) {
    // Step A0: black cycle of intra-controller edges, no probes needed.
    ++stats_.local_cycle_detections;
    declare(txn, tag);
    return std::nullopt;
  }

  ++stats_.computations_initiated;
  own_comp_seq_[txn] = tag.sequence;
  Computation& comp = computations_[tag];
  comp.target = txn;
  comp.labelled = labelled;
  CMH_LOG(kDebug, "ddb") << id_ << " initiates " << tag << " for " << txn;
  // The target's own release-wait edges are suppressed here for the same
  // reason as in handle_probe; cycles genuinely passing through the
  // target's holdings are entered via another transaction's intra wait.
  send_probes(tag, current_floor(), comp, labelled, txn);
  return tag;
}

std::size_t Controller::check_all() {
  std::size_t initiated = 0;
  if (options_.q_optimization) {
    // Section 6.7: a free local-cycle sweep, then Q computations -- one per
    // process with an incoming black inter-controller edge.
    detect_local_cycles();
    for (const TransactionId txn : incoming_black_processes()) {
      if (initiate_for(txn)) ++initiated;
    }
  } else {
    // Naive: one computation per blocked constituent process.
    std::set<TransactionId> blocked_txns;
    for (const auto& [txn, sites] : pending_remote_) blocked_txns.insert(txn);
    for (const auto& [w, b] : locks_.wait_edges()) blocked_txns.insert(w);
    for (const TransactionId txn : blocked_txns) {
      if (initiate_for(txn)) ++initiated;
    }
  }
  return initiated;
}

bool Controller::detect_local_cycles() {
  // Find a vertex on an intra-edge cycle (if any) with iterative DFS
  // coloring; declare the entry vertex of the first back edge found.
  std::unordered_map<TransactionId, std::vector<TransactionId>> adj;
  std::set<TransactionId> nodes;
  for (const auto& [w, b] : locks_.wait_edges()) {
    adj[w].push_back(b);
    nodes.insert(w);
    nodes.insert(b);
  }
  std::unordered_map<TransactionId, int> state;  // 0 new, 1 open, 2 done
  bool found = false;
  for (const TransactionId root : nodes) {
    if (state[root] != 0) continue;
    // Iterative DFS with explicit stack of (node, next-child-index).
    std::vector<std::pair<TransactionId, std::size_t>> stack{{root, 0}};
    state[root] = 1;
    while (!stack.empty()) {
      auto& [u, idx] = stack.back();
      auto& children = adj[u];
      if (idx >= children.size()) {
        state[u] = 2;
        stack.pop_back();
        continue;
      }
      const TransactionId v = children[idx++];
      if (state[v] == 1) {
        // Back edge: v is on a cycle of intra-controller edges.
        ++stats_.local_cycle_detections;
        declare(v, DdbProbeTag{id_, ++next_sequence_});
        found = true;
        state[v] = 2;  // avoid re-declaring the same cycle entry
      } else if (state[v] == 0) {
        state[v] = 1;
        stack.emplace_back(v, 0);
      }
    }
  }
  return found;
}

void Controller::send_probes(
    const DdbProbeTag& tag, std::uint64_t floor, Computation& comp,
    const std::set<TransactionId>& processes,
    std::optional<TransactionId> skip_release_wait_for) {
  for (const TransactionId txn : processes) {
    // Acquisition edges: (txn, here) awaits grants from remote controllers.
    for (const SiteId site : pending_remote_sites(txn)) {
      const InterEdge edge{AgentId{txn, id_}, AgentId{txn, site}};
      if (!comp.probes_sent.insert(edge).second) continue;
      ++stats_.probes_sent;
      CMH_LOG(kDebug, "ddb") << id_ << " probe " << tag << " acq " << edge;
      send_(site, encode_small(DdbProbeMsg{tag, floor, edge, false}).view());
    }
    // Release-wait edges: (txn, here) holds resources acquired on behalf of
    // (txn, origin) and follows that agent's computation.  Without these
    // the agent graph has a gap at every remote holding and transaction-
    // level cycles spanning several sites would be undetectable.
    if (skip_release_wait_for == txn) continue;
    for (const SiteId origin : locks_.holding_origins(txn)) {
      if (origin == id_) continue;
      const InterEdge edge{AgentId{txn, id_}, AgentId{txn, origin}};
      if (!comp.probes_sent.insert(edge).second) continue;
      ++stats_.probes_sent;
      CMH_LOG(kDebug, "ddb") << id_ << " probe " << tag << " rel " << edge;
      send_(origin, encode_small(DdbProbeMsg{tag, floor, edge, true}).view());
    }
  }
}

void Controller::handle_probe(SiteId from, const DdbProbeMsg& msg) {
  ++stats_.probes_received;

  // Stale-computation pruning (section 4.3 generalized; see messages.h).
  auto& floor = floor_seen_[msg.tag.initiator];
  if (msg.floor > floor) {
    floor = msg.floor;
    std::erase_if(computations_, [&](const auto& kv) {
      return kv.first.initiator == msg.tag.initiator &&
             kv.first.sequence < msg.floor;
    });
  }
  if (msg.tag.sequence < floor) return;

  // Meaningful iff the probe's edge exists and is black at receipt: agent
  // (txn, here) still has a queued request forwarded from the probe's
  // origin site (section 6.5).
  if (msg.edge.to.site != id_ ||
      msg.edge.from.transaction != msg.edge.to.transaction) {
    return;  // malformed or misrouted
  }
  const TransactionId txn = msg.edge.to.transaction;
  bool black = false;
  if (msg.via_release_wait) {
    // The sender holds for (txn, here); the holding persists at least as
    // long as txn is blocked here (it cannot commit while blocked, and
    // aborts purge labels anyway), so "blocked here" certifies the edge.
    black = blocked(txn);
  } else {
    // Acquisition edge: still-queued forwarded request from the probe's
    // origin site (the paper's section-6.5 check).
    for (const auto& [resource, req] : locks_.queued_for(txn)) {
      if (req.origin == msg.edge.from.site) {
        black = true;
        break;
      }
    }
  }
  if (!black) return;
  ++stats_.meaningful_probes;
  CMH_LOG(kDebug, "ddb") << id_ << " meaningful probe " << msg.tag
                         << (msg.via_release_wait ? " rel " : " acq ")
                         << msg.edge << " from " << from;
  (void)from;

  Computation& comp = computations_[msg.tag];
  if (comp.declared) return;

  // Steps A1/A2: label (txn, here) and everything intra-reachable.
  //
  // Decisions below use the *fresh* reachable set only, not the
  // accumulated labels.  Labels from an earlier receipt may be stale -- the
  // intra paths that justified them can legally dissolve once the probe
  // chain's pin (the G2/G5 target-has-outgoing-edge argument) has moved
  // past this site -- and acting on them would declare wait chains that
  // never coexisted (a false deadlock).  The accumulated label set is kept
  // as the computation's record and for the per-edge probe dedup.
  const std::set<TransactionId> fresh = intra_reachable(txn);
  for (const TransactionId t : fresh) comp.labelled.insert(t);

  if (msg.tag.initiator == id_ && comp.target &&
      fresh.contains(*comp.target)) {
    comp.declared = true;
    declare(*comp.target, msg.tag);
    return;
  }

  // Forward along every un-probed outgoing inter edge of the freshly
  // reachable set.  The initiating controller forwards too: a cycle may
  // thread through this site several times before closing on the target.
  // The entry transaction's own release-wait edges are suppressed: a probe
  // may only ride txn's release-wait after reaching txn through another
  // transaction's wait (an intra edge), otherwise it loops between txn's
  // own agents without any deadlock (acquisition and holding concern
  // different resources).
  send_probes(msg.tag, msg.floor, comp, fresh, txn);
}

void Controller::declare(TransactionId victim, const DdbProbeTag& tag) {
  ++stats_.deadlocks_declared;
  declared_.emplace_back(victim, tag);
  own_comp_seq_.erase(victim);
  CMH_LOG(kInfo, "ddb") << id_ << " declares " << victim << " deadlocked ("
                        << tag << ")";
  if (on_deadlock_) on_deadlock_(victim, tag);
  if (options_.abort_victim) abort(victim);
}

void Controller::schedule_block_check(TransactionId txn) {
  switch (options_.initiation) {
    case DdbInitiation::kManual:
      return;
    case DdbInitiation::kOnBlock:
      initiate_for(txn);
      return;
    case DdbInitiation::kDelayed:
      timers_(options_.initiation_delay, [this, txn] {
        if (blocked(txn)) initiate_for(txn);
      });
      return;
  }
}

void Controller::mix_state_hash(std::uint64_t& h) const {
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  const auto mix_agent = [&](const AgentId& a) {
    mix(a.transaction.value());
    mix(a.site.value());
  };
  mix(id_.value());
  locks_.mix_state_hash(h);
  mix(0xC1);  // separators between variable-length sections

  std::vector<TransactionId> aborted(aborted_txns_.begin(),
                                     aborted_txns_.end());
  std::sort(aborted.begin(), aborted.end());
  for (const TransactionId t : aborted) mix(t.value());
  mix(0xC2);

  std::vector<TransactionId> txns;
  for (const auto& [txn, sites] : pending_remote_) {
    if (!sites.empty()) txns.push_back(txn);
  }
  std::sort(txns.begin(), txns.end());
  for (const TransactionId t : txns) {
    mix(t.value());
    std::vector<std::pair<SiteId, std::uint32_t>> sites(
        pending_remote_.at(t).begin(), pending_remote_.at(t).end());
    std::sort(sites.begin(), sites.end());
    for (const auto& [site, count] : sites) {
      mix(site.value());
      mix(count);
    }
  }
  mix(0xC3);

  txns.clear();
  for (const auto& [txn, sites] : remote_holdings_) {
    if (!sites.empty()) txns.push_back(txn);
  }
  std::sort(txns.begin(), txns.end());
  for (const TransactionId t : txns) {
    mix(t.value());
    for (const SiteId site : remote_holdings_.at(t)) mix(site.value());
  }
  mix(0xC4);

  mix(next_sequence_);
  std::vector<std::pair<TransactionId, std::uint64_t>> own(
      own_comp_seq_.begin(), own_comp_seq_.end());
  std::sort(own.begin(), own.end());
  for (const auto& [txn, seq] : own) {
    mix(txn.value());
    mix(seq);
  }
  mix(0xC5);

  for (const auto& [tag, comp] : computations_) {
    mix(tag.initiator.value());
    mix(tag.sequence);
    mix(comp.floor);
    for (const TransactionId t : comp.labelled) mix(t.value());
    mix(0xC6);
    for (const InterEdge& e : comp.probes_sent) {
      mix_agent(e.from);
      mix_agent(e.to);
    }
    mix(comp.target ? comp.target->value() + 1 : 0);
    mix(static_cast<std::uint64_t>(comp.declared));
  }
  mix(0xC7);

  std::vector<std::pair<SiteId, std::uint64_t>> floors(floor_seen_.begin(),
                                                       floor_seen_.end());
  std::sort(floors.begin(), floors.end());
  for (const auto& [site, floor] : floors) {
    mix(site.value());
    mix(floor);
  }
  mix(0xC8);

  for (const auto& [victim, tag] : declared_) {
    mix(victim.value());
    mix(tag.initiator.value());
    mix(tag.sequence);
  }
}

}  // namespace cmh::ddb
