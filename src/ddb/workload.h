// Transaction workload driver for ddb::Cluster.
//
// Stands in for the client applications of a production DDB (see DESIGN.md
// substitutions): each transaction acquires a sequence of locks (in order),
// holds them for a think time, then commits.  Aborted victims are retried
// with a fresh transaction id after a backoff, which is how real lock
// managers consume deadlock detection.
#pragma once

#include <optional>
#include <vector>

#include "common/rng.h"
#include "ddb/cluster.h"

namespace cmh::ddb {

struct TxnScriptConfig {
  std::uint32_t locks_per_txn{3};
  double write_fraction{0.5};
  /// Think time between acquiring all locks and committing.
  SimTime hold_time{SimTime::ms(2)};
  /// Retry backoff after an abort.
  SimTime retry_backoff{SimTime::ms(1)};
  std::uint32_t max_retries{10};
  /// Client-side lock-wait timeout (0 = disabled).  When a lock is not
  /// granted within this window the client aborts the transaction itself --
  /// the "detection" strategy CMH replaces; bench_t5 compares the two.
  SimTime lock_wait_timeout{SimTime::zero()};
  /// Draw resources from [0, hot_set) to control contention.
  std::uint32_t hot_set{16};
};

struct WorkloadResult {
  std::uint64_t committed{0};
  std::uint64_t aborted{0};
  std::uint64_t given_up{0};
};

/// Runs `n_txns` scripted transactions concurrently (all started at virtual
/// time 0, with small random stagger) and drives each to commit or
/// exhausted retries.
class TxnWorkload {
 public:
  TxnWorkload(Cluster& cluster, TxnScriptConfig config, std::uint64_t seed);

  /// Launches `n_txns` clients; run the cluster simulator afterwards.
  void start(std::uint32_t n_txns);

  [[nodiscard]] const WorkloadResult& result() const { return result_; }

 private:
  struct Client {
    SiteId home;
    std::vector<std::pair<ResourceId, LockMode>> plan;
    std::uint32_t next_lock{0};
    std::uint32_t retries{0};
    std::optional<TransactionId> txn;
    bool stepping{false};  // re-entrancy guard (synchronous grants)
  };

  void launch(std::size_t client);
  void step(std::size_t client);  // issue next lock / hold / commit
  void poll(std::size_t client);  // wait for grant or abort

  Cluster& cluster_;
  TxnScriptConfig config_;
  Rng rng_;
  std::vector<Client> clients_;
  WorkloadResult result_;
};

}  // namespace cmh::ddb
