#include "ddb/messages.h"

namespace cmh::ddb {

namespace {
enum WireType : std::uint8_t {
  kLockRequest = 1,
  kLockGrant = 2,
  kPurge = 3,
  kProbe = 4,
};

template <typename W>
void put_probe(W& w, const DdbProbeMsg& m) {
  w.u8(kProbe);
  w.id(m.tag.initiator);
  w.u64(m.tag.sequence);
  w.u64(m.floor);
  w.agent(m.edge.from);
  w.agent(m.edge.to);
  w.u8(m.via_release_wait ? 1 : 0);
}
}  // namespace

DdbFrame encode_small(const DdbProbeMsg& m) {
  DdbFrame f;
  put_probe(f, m);
  return f;
}

void encode_into(const DdbMessage& msg, Bytes& out) {
  Writer w(out);
  w.reserve(kDdbFrameCapacity);
  std::visit(
      [&w](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RemoteLockRequestMsg>) {
          w.u8(kLockRequest);
          w.id(m.txn);
          w.id(m.resource);
          w.u8(static_cast<std::uint8_t>(m.mode));
        } else if constexpr (std::is_same_v<T, RemoteLockGrantMsg>) {
          w.u8(kLockGrant);
          w.id(m.txn);
          w.id(m.resource);
        } else if constexpr (std::is_same_v<T, PurgeTxnMsg>) {
          w.u8(kPurge);
          w.id(m.txn);
          w.u8(m.aborted ? 1 : 0);
        } else if constexpr (std::is_same_v<T, DdbProbeMsg>) {
          put_probe(w, m);
        }
      },
      msg);
}

Bytes encode(const DdbMessage& msg) {
  Bytes out;
  encode_into(msg, out);
  return out;
}

Result<DdbMessage> decode(BytesView payload) {
  Reader r(payload);
  std::uint8_t type = 0;
  if (auto st = r.u8(type); !st.ok()) return st;
  switch (type) {
    case kLockRequest: {
      RemoteLockRequestMsg m;
      std::uint8_t mode = 0;
      if (auto st = r.id(m.txn); !st.ok()) return st;
      if (auto st = r.id(m.resource); !st.ok()) return st;
      if (auto st = r.u8(mode); !st.ok()) return st;
      if (mode > 1) {
        return Status{StatusCode::kInvalidArgument, "bad lock mode"};
      }
      m.mode = static_cast<LockMode>(mode);
      return DdbMessage{m};
    }
    case kLockGrant: {
      RemoteLockGrantMsg m;
      if (auto st = r.id(m.txn); !st.ok()) return st;
      if (auto st = r.id(m.resource); !st.ok()) return st;
      return DdbMessage{m};
    }
    case kPurge: {
      PurgeTxnMsg m;
      std::uint8_t aborted = 0;
      if (auto st = r.id(m.txn); !st.ok()) return st;
      if (auto st = r.u8(aborted); !st.ok()) return st;
      m.aborted = aborted != 0;
      return DdbMessage{m};
    }
    case kProbe: {
      // Fixed-size frame: one bounds check, then unchecked field reads.
      if (r.remaining() < kDdbFrameCapacity - 1) {
        return Status{StatusCode::kInvalidArgument, "truncated message"};
      }
      DdbProbeMsg m;
      m.tag.initiator = r.id_unchecked<SiteId>();
      m.tag.sequence = r.u64_unchecked();
      m.floor = r.u64_unchecked();
      m.edge.from.transaction = r.id_unchecked<TransactionId>();
      m.edge.from.site = r.id_unchecked<SiteId>();
      m.edge.to.transaction = r.id_unchecked<TransactionId>();
      m.edge.to.site = r.id_unchecked<SiteId>();
      m.via_release_wait = r.u8_unchecked() != 0;
      return DdbMessage{m};
    }
    default:
      return Status{StatusCode::kInvalidArgument, "unknown ddb message type"};
  }
}

}  // namespace cmh::ddb
