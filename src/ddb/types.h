// Shared types of the Menasce-Muntz distributed-database model (section 6).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

#include "common/ids.h"

namespace cmh::ddb {

enum class LockMode : std::uint8_t { kRead, kWrite };

[[nodiscard]] constexpr const char* to_string(LockMode m) {
  return m == LockMode::kRead ? "R" : "W";
}

/// Two lock requests conflict unless both are reads.
[[nodiscard]] constexpr bool conflicts(LockMode a, LockMode b) {
  return a == LockMode::kWrite || b == LockMode::kWrite;
}

/// Tag (j, n) of the n-th probe computation initiated by controller C_j
/// (section 6.5).
struct DdbProbeTag {
  SiteId initiator;
  std::uint64_t sequence{0};

  friend constexpr auto operator<=>(const DdbProbeTag&,
                                    const DdbProbeTag&) = default;

  friend std::ostream& operator<<(std::ostream& os, const DdbProbeTag& t) {
    return os << '(' << t.initiator << ',' << t.sequence << ')';
  }
};

/// Identity of an inter-controller edge ((T_a, S_j), (T_a, S_b)); probes
/// carry it so the receiver can check meaningfulness (section 6.5).
struct InterEdge {
  AgentId from;
  AgentId to;

  friend constexpr auto operator<=>(const InterEdge&,
                                    const InterEdge&) = default;

  friend std::ostream& operator<<(std::ostream& os, const InterEdge& e) {
    return os << e.from << "->" << e.to;
  }
};

}  // namespace cmh::ddb

namespace std {

template <>
struct hash<cmh::ddb::DdbProbeTag> {
  size_t operator()(const cmh::ddb::DdbProbeTag& t) const noexcept {
    const auto h1 = std::hash<cmh::SiteId>{}(t.initiator);
    const auto h2 = std::hash<std::uint64_t>{}(t.sequence);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};

template <>
struct hash<cmh::ddb::InterEdge> {
  size_t operator()(const cmh::ddb::InterEdge& e) const noexcept {
    const auto h1 = std::hash<cmh::AgentId>{}(e.from);
    const auto h2 = std::hash<cmh::AgentId>{}(e.to);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};

}  // namespace std
