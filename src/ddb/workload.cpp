#include "ddb/workload.h"

#include <algorithm>

namespace cmh::ddb {

TxnWorkload::TxnWorkload(Cluster& cluster, TxnScriptConfig config,
                         std::uint64_t seed)
    : cluster_(cluster), config_(config), rng_(seed) {}

void TxnWorkload::start(std::uint32_t n_txns) {
  clients_.resize(n_txns);
  for (std::uint32_t i = 0; i < n_txns; ++i) {
    Client& c = clients_[i];
    c.home = SiteId{static_cast<std::uint32_t>(
        rng_.below(cluster_.n_sites()))};
    // Distinct resources per plan; lock order deliberately *unordered*
    // (random), which is what makes deadlock possible.
    std::set<std::uint32_t> picked;
    while (picked.size() <
           std::min(config_.locks_per_txn, config_.hot_set)) {
      picked.insert(
          static_cast<std::uint32_t>(rng_.below(config_.hot_set)));
    }
    for (const std::uint32_t r : picked) {
      const LockMode mode = rng_.chance(config_.write_fraction)
                                ? LockMode::kWrite
                                : LockMode::kRead;
      c.plan.emplace_back(ResourceId{r}, mode);
    }
    // Shuffle acquisition order.
    for (std::size_t k = c.plan.size(); k > 1; --k) {
      std::swap(c.plan[k - 1], c.plan[rng_.below(k)]);
    }
  }

  cluster_.set_grant_listener([this](TransactionId txn, ResourceId) {
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      if (clients_[i].txn == txn) {
        step(i);
        return;
      }
    }
  });
  cluster_.set_abort_listener([this](TransactionId txn) {
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      Client& c = clients_[i];
      if (c.txn != txn) continue;
      ++result_.aborted;
      c.txn.reset();
      c.next_lock = 0;
      if (++c.retries > config_.max_retries) {
        ++result_.given_up;
        return;
      }
      cluster_.simulator().schedule(config_.retry_backoff,
                                    [this, i] { launch(i); });
      return;
    }
  });

  for (std::uint32_t i = 0; i < n_txns; ++i) {
    const auto stagger = SimTime::us(static_cast<std::int64_t>(
        rng_.below(1 + static_cast<std::uint64_t>(
                           config_.hold_time.micros))));
    cluster_.simulator().schedule(stagger, [this, i] { launch(i); });
  }
}

void TxnWorkload::launch(std::size_t client) {
  Client& c = clients_[client];
  c.txn = cluster_.begin(c.home);
  c.next_lock = 0;
  step(client);
}

void TxnWorkload::step(std::size_t client) {
  Client& c = clients_[client];
  if (!c.txn || cluster_.status(*c.txn) != TxnStatus::kActive) return;
  if (c.stepping) return;  // synchronous grant re-entered via the listener

  // Issue locks one at a time; a synchronous grant continues inline.
  c.stepping = true;
  while (c.next_lock < c.plan.size()) {
    const auto [resource, mode] = c.plan[c.next_lock];
    ++c.next_lock;
    if (cluster_.granted(*c.txn, resource)) continue;
    const TransactionId txn = *c.txn;
    cluster_.lock(txn, resource, mode);
    // The lock call can synchronously declare deadlock and abort us (the
    // abort listener resets c.txn); bail out if so.
    if (c.txn != txn || cluster_.status(txn) != TxnStatus::kActive ||
        !cluster_.granted(txn, resource)) {
      if (config_.lock_wait_timeout > SimTime::zero() && c.txn == txn &&
          cluster_.status(txn) == TxnStatus::kActive) {
        cluster_.simulator().schedule(
            config_.lock_wait_timeout, [this, client, txn, resource] {
              const Client& cl = clients_[client];
              if (cl.txn == txn &&
                  cluster_.status(txn) == TxnStatus::kActive &&
                  !cluster_.granted(txn, resource)) {
                cluster_.abort(txn);  // presume deadlock after the timeout
              }
            });
      }
      c.stepping = false;
      return;  // a grant (or the abort retry path) will resume us
    }
  }
  c.stepping = false;

  // All locks held: think, then commit.
  const TransactionId txn = *c.txn;
  cluster_.simulator().schedule(config_.hold_time, [this, client, txn] {
    Client& cl = clients_[client];
    if (cl.txn != txn) return;  // aborted and relaunched meanwhile
    if (cluster_.status(txn) != TxnStatus::kActive) return;
    cluster_.finish(txn);
    ++result_.committed;
    cl.txn.reset();
  });
}

}  // namespace cmh::ddb
