// Controller C_j of the Menasce-Muntz DDB model with the Chandy-Misra-Haas
// probe computation of section 6 built in.
//
// Responsibilities (section 6.2):
//   * manage local resources through a LockManager,
//   * forward lock requests for remote resources to the owning controller,
//   * answer forwarded requests and ship grants back,
//   * run the deadlock detection algorithm A0/A1/A2 of section 6.6 over the
//     local intra-controller graph and the inter-controller edges,
//   * optionally abort detected victims (resolution) -- the paper defers
//     "how deadlocks should be broken" to [3,6]; we implement the standard
//     victim-abort so examples/benches can show liveness after detection.
//
// Like BasicProcess, the controller is a transport-agnostic state machine;
// callers must serialize calls per instance (the paper's atomic-step note).
//
// Local knowledge is exactly the DDB P3: intra-controller edges and incoming
// *black* inter-controller edges are derived from the lock queues; outgoing
// inter-controller edges are known to exist (pending remote requests) but
// their color is not locally observable.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "ddb/lock_manager.h"
#include "ddb/messages.h"

namespace cmh::ddb {

enum class DdbInitiation {
  kManual,   // harness calls initiate_for()/check_all()
  kOnBlock,  // initiate the instant a local process blocks (section 4.2)
  kDelayed,  // initiate T after a local process blocks, if still blocked
};

struct DdbOptions {
  DdbInitiation initiation{DdbInitiation::kDelayed};
  SimTime initiation_delay{SimTime::ms(5)};

  /// Section 6.7: when checking all constituent processes, initiate only Q
  /// computations (one per process with an incoming black inter-controller
  /// edge) after a free local-cycle check, instead of one per blocked
  /// process.  bench_t4 toggles this.
  bool q_optimization{true};

  /// Abort the victim transaction (everywhere) upon detection.
  bool abort_victim{true};
};

struct ControllerStats {
  std::uint64_t local_requests{0};
  std::uint64_t remote_requests_sent{0};
  std::uint64_t remote_requests_received{0};
  std::uint64_t grants_sent{0};
  std::uint64_t grants_received{0};
  std::uint64_t probes_sent{0};
  std::uint64_t probes_received{0};
  std::uint64_t meaningful_probes{0};
  std::uint64_t computations_initiated{0};
  std::uint64_t local_cycle_detections{0};
  std::uint64_t deadlocks_declared{0};
  std::uint64_t purges_sent{0};
  std::uint64_t aborts_executed{0};
};

class Controller {
 public:
  /// The payload view is only valid for the duration of the call.
  using Sender = std::function<void(SiteId to, BytesView payload)>;
  using TimerFn = std::function<void(SimTime delay, std::function<void()>)>;

  /// Maps a resource to its managing site (static data placement).
  using ResourceMap = std::function<SiteId(ResourceId)>;

  /// Invoked when a lock requested through this controller is acquired.
  using GrantCallback =
      std::function<void(TransactionId txn, ResourceId resource)>;
  /// Invoked when a transaction is aborted (deadlock victim) at this site.
  using AbortCallback = std::function<void(TransactionId txn)>;
  /// Invoked when this controller declares `victim` deadlocked.
  using DeadlockCallback =
      std::function<void(TransactionId victim, const DdbProbeTag& tag)>;

  Controller(SiteId id, std::uint32_t n_sites, Sender sender,
             ResourceMap resource_map, DdbOptions options, TimerFn timers);

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  [[nodiscard]] SiteId id() const { return id_; }
  [[nodiscard]] const ControllerStats& stats() const { return stats_; }
  [[nodiscard]] const LockManager& locks() const { return locks_; }

  void set_grant_callback(GrantCallback cb) { on_grant_ = std::move(cb); }
  void set_abort_callback(AbortCallback cb) { on_abort_ = std::move(cb); }
  void set_deadlock_callback(DeadlockCallback cb) {
    on_deadlock_ = std::move(cb);
  }

  // ---- client API (called by the transaction layer at this site) ---------

  /// Transaction `txn` (home = this site) requests `mode` on `resource`.
  /// Returns true if granted synchronously; otherwise the grant (or an
  /// abort) arrives via callback.
  bool lock(TransactionId txn, ResourceId resource, LockMode mode);

  /// Commit/finish: release all of txn's locks everywhere.
  void finish(TransactionId txn);

  /// Abort txn everywhere (also used internally for deadlock victims).
  void abort(TransactionId txn);

  // ---- transport ----------------------------------------------------------

  Status on_message(SiteId from, BytesView payload);

  // ---- detection ----------------------------------------------------------

  /// Step A0 for local process (txn, this site).  Returns the tag if a
  /// probe computation started, nullopt if txn is not blocked here or a
  /// local (intra-controller) cycle was declared directly.
  std::optional<DdbProbeTag> initiate_for(TransactionId txn);

  /// "Controller wishes to determine if any of its processes are
  /// deadlocked" (section 6.7): local-cycle check plus Q probe computations
  /// (or one per blocked process when q_optimization is off).
  /// Returns the number of probe computations initiated.
  std::size_t check_all();

  // ---- introspection (used by harness oracle and tests) ------------------

  /// True iff (txn, this site) is blocked: it has a queued local request or
  /// an outstanding remote request.
  [[nodiscard]] bool blocked(TransactionId txn) const;

  /// Intra-controller wait edges between local agents.
  [[nodiscard]] std::vector<std::pair<TransactionId, TransactionId>>
  intra_edges() const {
    return locks_.wait_edges();
  }

  /// Transactions with an incoming black inter-controller edge here (the Q
  /// of section 6.7), i.e. with a queued forwarded request.
  [[nodiscard]] std::vector<TransactionId> incoming_black_processes() const;

  /// Remote sites this txn has outstanding requests toward (outgoing
  /// inter-controller edges from (txn, this site)).
  [[nodiscard]] std::vector<SiteId> pending_remote_sites(
      TransactionId txn) const;

  [[nodiscard]] const std::vector<std::pair<TransactionId, DdbProbeTag>>&
  declared_victims() const {
    return declared_;
  }

  /// Folds the protocol-relevant controller state into `h` (sorted
  /// iteration over unordered containers; stats excluded).  Used by the
  /// exhaustive interleaving checker to fingerprint global states.
  void mix_state_hash(std::uint64_t& h) const;

 private:
  struct Computation {
    std::uint64_t floor{0};
    std::set<TransactionId> labelled;
    std::set<InterEdge> probes_sent;
    /// For computations this controller initiated: the process it is
    /// checking (the (T_i, S_j) of A0/A1).
    std::optional<TransactionId> target;
    bool declared{false};
  };

  void handle_lock_request(SiteId from, const RemoteLockRequestMsg& msg);
  void handle_grant(SiteId from, const RemoteLockGrantMsg& msg);
  void handle_purge(SiteId from, const PurgeTxnMsg& msg);
  void handle_probe(SiteId from, const DdbProbeMsg& msg);

  /// Dispatches grants produced by the lock manager (local callback or
  /// RemoteLockGrantMsg to the origin site).
  void dispatch_grants(
      const std::vector<std::pair<ResourceId, LockRequest>>& grants);

  /// Agents intra-reachable from `txn` (reflexive); sets `local_cycle` if
  /// txn reaches itself through at least one edge.
  [[nodiscard]] std::set<TransactionId> intra_reachable(
      TransactionId txn, bool* local_cycle = nullptr) const;

  /// Sends probes of `comp` along all un-probed outgoing inter edges of
  /// `processes`.  Only *currently* intra-reachable processes may be passed:
  /// forwarding from stale labels would manufacture wait chains that never
  /// coexisted and break QRP2 (see handle_probe).
  ///
  /// `skip_release_wait_for`: when the probe entered agent (t, here) along
  /// t's own acquisition edge, t's release-wait edge would bounce the probe
  /// straight back to the agent it came from -- the two edges connect the
  /// same agent pair in opposite directions but concern *different
  /// resources*, so the bounce is not a deadlock cycle.  The entry
  /// transaction's release-wait edges are suppressed in that case.
  /// `floor` is the stale-computation floor stamped on each probe.  It
  /// belongs to the *initiator's* sequence space: the initiator stamps its
  /// own current floor, and forwarders must propagate the floor they
  /// received verbatim -- stamping a forwarder's floor would corrupt the
  /// initiator's numbering at downstream receivers.
  void send_probes(const DdbProbeTag& tag, std::uint64_t floor,
                   Computation& comp,
                   const std::set<TransactionId>& processes,
                   std::optional<TransactionId> skip_release_wait_for =
                       std::nullopt);

  void declare(TransactionId victim, const DdbProbeTag& tag);
  void schedule_block_check(TransactionId txn);

  /// Lowest still-live sequence of this controller's own computations.
  [[nodiscard]] std::uint64_t current_floor();

  /// Any cycle among intra edges?  Declares every process on one.
  bool detect_local_cycles();

  SiteId id_;
  std::uint32_t n_sites_;
  Sender send_;
  ResourceMap resource_map_;
  DdbOptions options_;
  TimerFn timers_;

  LockManager locks_;
  // Transactions known to be aborted.  A purge broadcast can overtake a
  // victim's in-flight lock request on a different channel; without the
  // tombstone the zombie request would occupy the resource forever.
  // Transaction ids are never reused, so tombstones are monotone-correct.
  std::unordered_set<TransactionId> aborted_txns_;
  // pending_remote_[txn][site] = outstanding (unanswered) remote requests.
  std::unordered_map<TransactionId,
                     std::unordered_map<SiteId, std::uint32_t>>
      pending_remote_;
  // Sites where txn holds resources acquired through this controller --
  // i.e. this site's agents have *incoming* release-wait edges from those
  // holdings.  Feeds the section-6.7 Q set.
  std::unordered_map<TransactionId, std::set<SiteId>> remote_holdings_;

  std::uint64_t next_sequence_{0};
  // Latest own computation per target process; the minimum over live
  // entries is the `floor` advertised in outgoing probes.
  std::unordered_map<TransactionId, std::uint64_t> own_comp_seq_;
  std::map<DdbProbeTag, Computation> computations_;
  // Highest floor seen per initiator; probes below it are stale (§4.3).
  std::unordered_map<SiteId, std::uint64_t> floor_seen_;

  std::vector<std::pair<TransactionId, DdbProbeTag>> declared_;

  GrantCallback on_grant_;
  AbortCallback on_abort_;
  DeadlockCallback on_deadlock_;
  ControllerStats stats_;
};

}  // namespace cmh::ddb
