#include "baseline/path_pushing.h"

#include <algorithm>

namespace cmh::baseline {

namespace {

/// Canonical rotation of a cycle member sequence (smallest id first), so the
/// same cycle discovered from different entry points dedups.
std::vector<ProcessId> canonical_cycle(const std::vector<ProcessId>& cycle) {
  const auto min_it = std::min_element(cycle.begin(), cycle.end());
  std::vector<ProcessId> rotated;
  rotated.reserve(cycle.size());
  rotated.insert(rotated.end(), min_it, cycle.end());
  rotated.insert(rotated.end(), cycle.begin(), min_it);
  return rotated;
}

}  // namespace

PathPushingDetector::PathPushingDetector(runtime::SimCluster& cluster,
                                         SimTime round_period,
                                         bool ordered_push)
    : cluster_(cluster), period_(round_period), ordered_push_(ordered_push) {}

void PathPushingDetector::start() {
  if (stopped_) return;
  cluster_.simulator().schedule(period_, [this] {
    if (stopped_) return;
    round();
    start();  // re-arm
  });
}

void PathPushingDetector::round() {
  for (std::uint32_t i = 0; i < cluster_.size(); ++i) push_from(ProcessId{i});
}

void PathPushingDetector::push_from(ProcessId p) {
  const auto& proc = cluster_.process(p);
  if (proc.waits_for().empty()) {
    // Active process: its stale knowledge is dropped (it cannot be part of
    // a deadlock right now).
    known_.erase(p);
    return;
  }

  // Paths to push: everything we know ending at p, plus the trivial [p].
  std::vector<Path> outgoing{{p}};
  const auto it = known_.find(p);
  if (it != known_.end()) {
    for (const Path& path : it->second) outgoing.push_back(path);
  }

  for (const ProcessId succ : proc.waits_for()) {
    std::vector<Path> to_send;
    for (const Path& path : outgoing) {
      if (ordered_push_ && !path.empty() && !(p > path.front()) &&
          path.size() > 1) {
        continue;  // Obermarck: only the largest-id entry point forwards
      }
      to_send.push_back(path);
    }
    if (to_send.empty()) continue;
    ++messages_;
    for (const Path& path : to_send) bytes_ += 4 * path.size() + 4;
    const SimTime delay = SimTime::us(
        50 +
        static_cast<std::int64_t>((p.value() * 131 + messages_ * 17) % 450));
    cluster_.simulator().schedule(
        delay, [this, p, succ, paths = std::move(to_send)]() mutable {
          deliver(p, succ, std::move(paths));
        });
  }
}

void PathPushingDetector::deliver(ProcessId from, ProcessId to,
                                  std::vector<Path> paths) {
  // Accept only along a black edge (the receiver holds the sender's
  // request), mirroring the meaningful-probe check.
  if (!cluster_.process(to).held_requests().contains(from)) return;

  auto& mine = known_[to];
  for (Path& path : paths) {
    const auto self = std::find(path.begin(), path.end(), to);
    if (self != path.end()) {
      // Cycle: [self .. end] closes back on `to`.
      std::vector<ProcessId> cycle{self, path.end()};
      auto canon = canonical_cycle(cycle);
      if (!reported_.insert(canon).second) continue;
      detections_.push_back(BaselineDetection{
          to, cluster_.simulator().now(),
          cluster_.oracle().on_dark_cycle(to)});
      continue;
    }
    path.push_back(to);
    mine.insert(std::move(path));
  }
}

}  // namespace cmh::baseline
