#include "baseline/timeout.h"

namespace cmh::baseline {

TimeoutDetector::TimeoutDetector(runtime::SimCluster& cluster, SimTime timeout)
    : cluster_(cluster),
      timeout_(timeout),
      poll_period_(SimTime::us(std::max<std::int64_t>(1, timeout.micros / 4))) {
}

void TimeoutDetector::start() {
  if (stopped_) return;
  cluster_.simulator().schedule(poll_period_, [this] {
    if (stopped_) return;
    poll();
    start();  // re-arm
  });
}

void TimeoutDetector::poll() {
  const SimTime now = cluster_.simulator().now();
  for (std::uint32_t i = 0; i < cluster_.size(); ++i) {
    const ProcessId p{i};
    const bool blocked = cluster_.process(p).blocked();
    if (!blocked) {
      blocked_since_.erase(p);
      already_reported_[p] = false;
      continue;
    }
    const auto [it, fresh] = blocked_since_.emplace(p, now);
    if (fresh) continue;
    if (now - it->second >= timeout_ && !already_reported_[p]) {
      already_reported_[p] = true;
      detections_.push_back(
          BaselineDetection{p, now, cluster_.oracle().on_dark_cycle(p)});
    }
  }
}

}  // namespace cmh::baseline
