#include "baseline/centralized.h"

#include <algorithm>
#include <deque>

namespace cmh::baseline {

CentralizedDetector::CentralizedDetector(runtime::SimCluster& cluster,
                                         SimTime report_period,
                                         bool consistent_snapshots)
    : cluster_(cluster),
      period_(report_period),
      consistent_(consistent_snapshots) {}

void CentralizedDetector::start() {
  if (stopped_) return;
  if (consistent_) {
    // One synchronized snapshot of every process per period.
    cluster_.simulator().schedule(period_, [this] {
      if (stopped_) return;
      for (std::uint32_t i = 0; i < cluster_.size(); ++i) {
        const ProcessId p{i};
        const auto& waits = cluster_.process(p).waits_for();
        deliver_report(p, {waits.begin(), waits.end()});
      }
      check_cycles();
      start();  // re-arm
    });
    return;
  }
  // Staggered: every process reports on its own phase-shifted schedule.
  for (std::uint32_t i = 0; i < cluster_.size(); ++i) {
    const ProcessId p{i};
    const auto phase = SimTime::us(
        (period_.micros * static_cast<std::int64_t>(i)) /
        std::max<std::int64_t>(1, cluster_.size()));
    cluster_.simulator().schedule(phase, [this, p] { schedule_report(p); });
  }
}

void CentralizedDetector::schedule_report(ProcessId p) {
  if (stopped_) return;
  // Snapshot the local out-edge set now; the report reaches the coordinator
  // after a network delay, during which the world may move on -- that skew
  // is the source of phantom deadlocks.
  const auto& waits = cluster_.process(p).waits_for();
  std::vector<ProcessId> edges{waits.begin(), waits.end()};
  ++messages_;
  bytes_ += 4 + 4 * edges.size();
  const SimTime delay = SimTime::us(
      50 + static_cast<std::int64_t>((p.value() * 97 + messages_ * 31) % 450));
  cluster_.simulator().schedule(
      delay, [this, p, e = std::move(edges)]() mutable {
        deliver_report(p, std::move(e));
        check_cycles();
      });
  cluster_.simulator().schedule(period_, [this, p] { schedule_report(p); });
}

void CentralizedDetector::deliver_report(ProcessId p,
                                         std::vector<ProcessId> out_edges) {
  view_[p] = std::move(out_edges);
}

void CentralizedDetector::check_cycles() {
  // For each vertex, search for a cycle through it in the coordinator's
  // (possibly skewed) view; report each distinct cycle member-set once.
  for (const auto& [v, out] : view_) {
    (void)out;
    // BFS from v's successors back to v.
    std::unordered_map<ProcessId, ProcessId> parent;
    std::deque<ProcessId> frontier;
    const auto vit = view_.find(v);
    for (const ProcessId s : vit->second) {
      if (parent.emplace(s, v).second) frontier.push_back(s);
    }
    std::vector<ProcessId> cycle;
    while (!frontier.empty() && cycle.empty()) {
      const ProcessId u = frontier.front();
      frontier.pop_front();
      const auto uit = view_.find(u);
      if (uit == view_.end()) continue;
      for (const ProcessId w : uit->second) {
        if (w == v) {
          cycle.push_back(v);
          for (ProcessId x = u; x != v; x = parent.at(x)) cycle.push_back(x);
          break;
        }
        if (parent.emplace(w, u).second) frontier.push_back(w);
      }
    }
    if (cycle.empty()) continue;
    std::sort(cycle.begin(), cycle.end());
    if (!reported_.insert(cycle).second) continue;
    detections_.push_back(BaselineDetection{
        v, cluster_.simulator().now(), cluster_.oracle().on_dark_cycle(v)});
  }
}

}  // namespace cmh::baseline
