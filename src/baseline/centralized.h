// Centralized snapshot deadlock detector (baseline).
//
// The classical pre-CMH design (Gray 78; the scheme Menasce-Muntz and
// Gligor-Shattuck analyze): every process periodically reports its outgoing
// wait-for edges to a coordinator, which assembles a global wait-for graph
// and searches it for cycles.
//
// Two variants:
//   * staggered (default) -- each process reports on its own schedule, so
//     the coordinator's graph mixes observations from different instants.
//     Under churn this produces *phantom deadlocks* (a stale edge plus a
//     fresh reverse edge close a cycle that never existed globally).
//   * consistent -- all processes report at the same virtual instant (an
//     idealized stop-the-world snapshot); no phantoms, but unimplementable
//     in a real distributed system without extra machinery.
#pragma once

#include <set>
#include <unordered_map>

#include "baseline/detector.h"

namespace cmh::baseline {

class CentralizedDetector final : public Detector {
 public:
  CentralizedDetector(runtime::SimCluster& cluster, SimTime report_period,
                      bool consistent_snapshots = false);

  void start() override;

  /// Stops re-arming periodic reports (lets the simulator drain to idle).
  void stop() { stopped_ = true; }

  [[nodiscard]] const std::vector<BaselineDetection>& detections()
      const override {
    return detections_;
  }
  [[nodiscard]] std::uint64_t messages_sent() const override {
    return messages_;
  }
  [[nodiscard]] std::uint64_t bytes_sent() const override { return bytes_; }

 private:
  void schedule_report(ProcessId p);
  void deliver_report(ProcessId p, std::vector<ProcessId> out_edges);
  void check_cycles();

  runtime::SimCluster& cluster_;
  SimTime period_;
  bool consistent_;

  // Coordinator state: the last reported out-edge set per process.
  std::unordered_map<ProcessId, std::vector<ProcessId>> view_;
  // Cycles already reported (as sorted member sets), to avoid re-reporting
  // the same wedged cycle every period.
  std::set<std::vector<ProcessId>> reported_;

  std::vector<BaselineDetection> detections_;
  bool stopped_{false};
  std::uint64_t messages_{0};
  std::uint64_t bytes_{0};
};

}  // namespace cmh::baseline
