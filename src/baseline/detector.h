// Common interface for the baseline deadlock detectors used in the
// comparison experiments (bench_t3).
//
// Each baseline layers *on top of* a SimCluster whose BasicProcess instances
// run with InitiationMode::kManual (no CMH probes), so all detectors see the
// identical underlying request/reply workload.  Detectors keep their own
// message/byte counters (their traffic shares the simulator but must be
// attributed separately).
//
// Every detection is validated against the cluster's ground-truth oracle at
// the instant of detection, so benches can report phantom (false) deadlock
// rates -- the failure mode the paper's introduction quotes Gligor &
// Shattuck on.
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "runtime/sim_cluster.h"

namespace cmh::baseline {

struct BaselineDetection {
  ProcessId process;  // a member of the reported cycle
  SimTime at;
  bool real;  // oracle-confirmed dark cycle at detection time
};

class Detector {
 public:
  virtual ~Detector() = default;

  /// Installs hooks / schedules periodic work.  Call once before running
  /// the simulator.
  virtual void start() = 0;

  [[nodiscard]] virtual const std::vector<BaselineDetection>& detections()
      const = 0;
  [[nodiscard]] virtual std::uint64_t messages_sent() const = 0;
  [[nodiscard]] virtual std::uint64_t bytes_sent() const = 0;

  [[nodiscard]] std::size_t real_detections() const {
    std::size_t n = 0;
    for (const auto& d : detections()) n += d.real ? 1 : 0;
    return n;
  }
  [[nodiscard]] std::size_t phantom_detections() const {
    return detections().size() - real_detections();
  }
};

}  // namespace cmh::baseline
