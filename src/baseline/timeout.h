// Timeout-based "deadlock detection" (baseline).
//
// No messages at all: a process that has been continuously blocked for
// longer than `timeout` is presumed deadlocked.  Cheap, but inherently
// unsound -- any long wait chain trips it.  bench_t3 reports its phantom
// rate next to CMH's provable zero.
#pragma once

#include <unordered_map>

#include "baseline/detector.h"

namespace cmh::baseline {

class TimeoutDetector final : public Detector {
 public:
  TimeoutDetector(runtime::SimCluster& cluster, SimTime timeout);

  void start() override;
  void stop() { stopped_ = true; }

  [[nodiscard]] const std::vector<BaselineDetection>& detections()
      const override {
    return detections_;
  }
  [[nodiscard]] std::uint64_t messages_sent() const override { return 0; }
  [[nodiscard]] std::uint64_t bytes_sent() const override { return 0; }

 private:
  void poll();

  runtime::SimCluster& cluster_;
  SimTime timeout_;
  SimTime poll_period_;
  bool stopped_{false};

  // Virtual time at which each process most recently became blocked.
  std::unordered_map<ProcessId, SimTime> blocked_since_;
  std::unordered_map<ProcessId, bool> already_reported_;

  std::vector<BaselineDetection> detections_;
};

}  // namespace cmh::baseline
