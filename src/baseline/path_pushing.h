// Path-pushing deadlock detector (Obermarck-style baseline).
//
// Each blocked process periodically pushes the wait paths it knows about
// (sequences of process ids ending at itself) to its wait-for successors.
// A receiver extends each path with itself; a path that already contains
// the receiver is a cycle.  Paths are accepted only along edges that are
// black at receipt (same local check the CMH probe uses), but path *content*
// can still be stale -- edges recorded upstream may have dissolved by the
// time the path closes, which is exactly the phantom-deadlock weakness
// Gligor & Shattuck identified in algorithms of this family.
//
// With `ordered_push` set (Obermarck's optimization), a process forwards a
// path only if its own id is greater than the path's first id, roughly
// halving traffic while still guaranteeing that some process on each cycle
// completes it.
#pragma once

#include <set>
#include <unordered_map>
#include <vector>

#include "baseline/detector.h"

namespace cmh::baseline {

class PathPushingDetector final : public Detector {
 public:
  PathPushingDetector(runtime::SimCluster& cluster, SimTime round_period,
                      bool ordered_push = false);

  void start() override;
  void stop() { stopped_ = true; }

  [[nodiscard]] const std::vector<BaselineDetection>& detections()
      const override {
    return detections_;
  }
  [[nodiscard]] std::uint64_t messages_sent() const override {
    return messages_;
  }
  [[nodiscard]] std::uint64_t bytes_sent() const override { return bytes_; }

 private:
  using Path = std::vector<ProcessId>;

  void round();
  void push_from(ProcessId p);
  void deliver(ProcessId from, ProcessId to, std::vector<Path> paths);

  runtime::SimCluster& cluster_;
  SimTime period_;
  bool ordered_push_;
  bool stopped_{false};

  // Paths ending at each process, as learnt so far.
  std::unordered_map<ProcessId, std::set<Path>> known_;

  std::set<Path> reported_;  // canonical (rotated) cycles already reported
  std::vector<BaselineDetection> detections_;
  std::uint64_t messages_{0};
  std::uint64_t bytes_{0};
};

}  // namespace cmh::baseline
