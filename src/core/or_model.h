// Extension: deadlock detection for the *communication (OR) model* -- the
// message-passing model the paper contrasts itself against in section 1
// ("a process which is waiting to communicate with other processes cannot
// proceed until it communicates with ANY one of the processes it is waiting
// for", reference [1], Chandy-Misra-Haas CACM 1983).  Section 7 explicitly
// lists "algorithms for different types of distributed systems" as future
// work; this module supplies the OR-model counterpart on the same
// transports.
//
// Model: a blocked process waits on a *dependent set*; receiving a signal
// from any member unblocks it.  A process is deadlocked iff no active
// process is reachable through dependent sets (every potential helper is
// itself stuck).
//
// Algorithm (diffusing computation, after Dijkstra-Scholten [2]):
//   * The initiator sends query(i, m) to every member of its dependent set.
//   * A blocked process engaged by its FIRST query of computation (i, m)
//     records the engager, forwards queries to its own dependent set and
//     waits for their replies; on any LATER query of (i, m) it replies
//     immediately (if still continuously blocked since engagement).
//   * When a process has replies for its whole wave it replies to its
//     engager; the initiator declares deadlock iff its own wave completes.
//   * Active processes discard queries, so any escape route starves the
//     wave and no declaration happens (soundness); if everyone reachable is
//     blocked, every query is answered eventually (completeness).
//   * Replies count only while the replier has been blocked *continuously*
//     since engagement (checked with a local wait-epoch counter).
#pragma once

#include <functional>
#include <optional>
#include <set>
#include <unordered_map>
#include <variant>

#include "common/ids.h"
#include "common/serialize.h"
#include "common/status.h"

namespace cmh::core {

/// Wire messages of the OR model.
struct OrSignalMsg {};  // unblocks a waiting receiver

struct OrQueryMsg {
  ProbeTag tag;  // (initiator, sequence)
};

struct OrReplyMsg {
  ProbeTag tag;
};

using OrMessage = std::variant<OrSignalMsg, OrQueryMsg, OrReplyMsg>;

/// Largest OR-model frame: 1 (type) + 4 (initiator) + 8 (sequence) bytes.
inline constexpr std::size_t kOrFrameCapacity = 13;
using OrFrame = StackWriter<kOrFrameCapacity>;

[[nodiscard]] OrFrame or_encode_small(const OrMessage& msg);
[[nodiscard]] Bytes or_encode(const OrMessage& msg);
[[nodiscard]] Result<OrMessage> or_decode(BytesView payload);

struct OrStats {
  std::uint64_t queries_sent{0};
  std::uint64_t queries_received{0};
  std::uint64_t replies_sent{0};
  std::uint64_t replies_received{0};
  std::uint64_t signals_sent{0};
  std::uint64_t computations_initiated{0};
  std::uint64_t deadlocks_declared{0};
};

class OrProcess {
 public:
  using Sender = std::function<void(ProcessId to, BytesView payload)>;
  using DeadlockCallback = std::function<void(const ProbeTag& tag)>;

  OrProcess(ProcessId id, Sender sender, bool initiate_on_block = true);

  OrProcess(const OrProcess&) = delete;
  OrProcess& operator=(const OrProcess&) = delete;

  [[nodiscard]] ProcessId id() const { return id_; }
  [[nodiscard]] bool blocked() const { return dependent_set_.has_value(); }

  /// Current dependent set (nullopt while active).
  [[nodiscard]] const std::optional<std::set<ProcessId>>& waits_on() const {
    return dependent_set_;
  }
  [[nodiscard]] const OrStats& stats() const { return stats_; }
  [[nodiscard]] bool declared_deadlock() const { return declared_; }

  void set_deadlock_callback(DeadlockCallback cb) {
    on_deadlock_ = std::move(cb);
  }

  /// Blocks on `dependents` (OR semantics: any signal releases).  Initiates
  /// a detection computation if configured.  Must be active.
  void block_on(const std::set<ProcessId>& dependents);

  /// Sends a signal to `to` (only an active process can help others).
  void signal(ProcessId to);

  /// Manually starts a detection computation (requires blocked()).
  std::optional<ProbeTag> initiate();

  Status on_message(ProcessId from, BytesView payload);

 private:
  struct Engagement {
    std::uint64_t sequence{0};
    ProcessId engager;
    std::size_t awaiting{0};      // outstanding replies in our wave
    std::uint64_t wait_epoch{0};  // epoch when engaged (continuity check)
    bool done{false};             // wave complete (replied / declared)
  };

  void handle_signal(ProcessId from);
  void handle_query(ProcessId from, const OrQueryMsg& msg);
  void handle_reply(ProcessId from, const OrReplyMsg& msg);
  void send_wave(const ProbeTag& tag, Engagement& e);
  void complete_wave(const ProbeTag& tag, Engagement& e);

  ProcessId id_;
  Sender sender_;
  bool initiate_on_block_;
  DeadlockCallback on_deadlock_;

  std::optional<std::set<ProcessId>> dependent_set_;
  // Bumped on every block/unblock; replies/engagements from an older epoch
  // are void ("blocked continuously" check of the 1983 algorithm).
  std::uint64_t wait_epoch_{0};

  std::uint64_t next_sequence_{0};
  std::unordered_map<ProcessId, Engagement> engagements_;  // per initiator

  bool declared_{false};
  OrStats stats_;
};

}  // namespace cmh::core
