#include "core/basic_process.h"

#include <algorithm>

#include "common/logging.h"

namespace cmh::core {

BasicProcess::BasicProcess(ProcessId id, Sender sender, Options options,
                           TimerService* timers)
    : id_(id),
      sender_(std::move(sender)),
      options_(options),
      timers_(timers) {
  if (options_.initiation == InitiationMode::kDelayed && timers_ == nullptr) {
    throw std::invalid_argument(
        "BasicProcess: kDelayed initiation requires a TimerService");
  }
}

// ---- underlying computation -------------------------------------------------

void BasicProcess::send_request(ProcessId to) {
  if (to == id_) throw ModelViolation("send_request: self request");
  if (out_edges_.contains(to)) {
    throw ModelViolation("send_request: edge already exists (G1)");
  }
  out_edges_.insert(to);
  const std::uint64_t epoch = ++out_edge_epoch_[to];
  ++stats_.requests_sent;
  sender_(to, encode_small(RequestMsg{}).view());
  CMH_LOG(kDebug, "basic") << id_ << " requests " << to;

  switch (options_.initiation) {
    case InitiationMode::kOnRequest:
      initiate();
      break;
    case InitiationMode::kDelayed:
      // Section 4.3: initiate only if this edge still exists, and has
      // existed *continuously*, T time units from now.  The epoch check
      // rejects delete-then-recreate within the window.
      timers_->schedule(options_.initiation_delay, [this, to, epoch] {
        if (out_edges_.contains(to) && out_edge_epoch_[to] == epoch) {
          initiate();
        }
      });
      break;
    case InitiationMode::kManual:
      break;
  }
}

void BasicProcess::send_reply(ProcessId to) {
  if (!in_black_.contains(to)) {
    throw ModelViolation("send_reply: no pending request from " +
                         to.to_string());
  }
  if (blocked()) {
    // G3: only active processes (no outgoing edges) may reply.
    throw ModelViolation("send_reply: process is blocked (G3)");
  }
  in_black_.erase(to);
  ++stats_.replies_sent;
  sender_(to, encode_small(ReplyMsg{}).view());
  CMH_LOG(kDebug, "basic") << id_ << " replies to " << to;
}

Status BasicProcess::on_message(ProcessId from, BytesView payload) {
  auto decoded = decode(payload);
  if (!decoded.ok()) return decoded.status();
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RequestMsg>) {
          handle_request(from);
        } else if constexpr (std::is_same_v<T, ReplyMsg>) {
          handle_reply(from);
        } else if constexpr (std::is_same_v<T, ProbeMsg>) {
          handle_probe(from, m);
        } else if constexpr (std::is_same_v<T, WfgdMsg>) {
          handle_wfgd(from, m);
        }
      },
      *decoded);
  return Status::Ok();
}

void BasicProcess::handle_request(ProcessId from) {
  // Edge (from, this) blackens on receipt (G2); per P3 we know our incoming
  // black edges.
  in_black_.insert(from);
}

void BasicProcess::handle_reply(ProcessId from) {
  // Edge (this, from) disappears on receipt (G4).
  out_edges_.erase(from);
}

// ---- probe computation (sections 3 and 4) -----------------------------------

std::optional<ProbeTag> BasicProcess::initiate() {
  if (out_edges_.empty()) return std::nullopt;  // active: cannot be on cycle
  const ProbeTag tag{id_, ++next_sequence_};
  // Our own newest computation supersedes older ones (section 4.3).
  computations_[id_] = ComputationState{tag.sequence, false};
  ++stats_.computations_initiated;
  CMH_LOG(kDebug, "probe") << id_ << " initiates computation " << tag;
  send_probes_on_outgoing(tag);  // step A0
  return tag;
}

void BasicProcess::send_probes_on_outgoing(const ProbeTag& tag) {
  // Steps A0/A2: one probe along every outgoing edge.  The set cannot change
  // mid-step because callers are serialized per process.  One stack-encoded
  // frame serves the whole fan-out; no heap allocation on this path.
  const SmallFrame frame = encode_small(ProbeMsg{tag});
  for (const ProcessId to : out_edges_) {
    ++stats_.probes_sent;
    sender_(to, frame.view());
  }
}

void BasicProcess::handle_probe(ProcessId from, const ProbeMsg& probe) {
  ++stats_.probes_received;

  // Meaningful iff edge (from, this) exists and is black at receipt
  // (section 3.2); locally that is "we hold from's unanswered request" (P3).
  if (!in_black_.contains(from)) return;
  ++stats_.meaningful_probes;

  auto& cs = computations_[probe.tag.initiator];
  if (probe.tag.sequence < cs.sequence) {
    // Section 4.3: stale computation.
    if (options_.ignore_stale_computations) return;
    // Ablation: treat the stale tag as a fresh computation.
    cs = ComputationState{probe.tag.sequence, false};
  } else if (probe.tag.sequence > cs.sequence) {
    cs = ComputationState{probe.tag.sequence, false};
  }

  if (probe.tag.initiator == id_) {
    // Step A1: first meaningful probe of our own computation => black cycle.
    if (cs.engaged) return;
    cs.engaged = true;
    declare_deadlock(probe.tag);
    return;
  }

  // Step A2: forward on first meaningful probe of this computation.
  if (cs.engaged && !options_.forward_every_meaningful_probe) return;
  cs.engaged = true;
  send_probes_on_outgoing(probe.tag);
}

void BasicProcess::declare_deadlock(const ProbeTag& tag) {
  declared_ = true;
  deadlocked_ = true;
  ++stats_.deadlocks_declared;
  CMH_LOG(kInfo, "probe") << id_ << " declares deadlock via " << tag;
  if (on_deadlock_) on_deadlock_(tag);
  if (options_.propagate_wfgd) start_wfgd();
}

// ---- WFGD computation (section 5) -------------------------------------------

void BasicProcess::send_wfgd_set(ProcessId to, const WfgdEdgeSet& edges) {
  ++stats_.wfgd_messages_sent;
  encode_into(Message{WfgdMsg{{edges.begin(), edges.end()}}}, scratch_);
  sender_(to, scratch_);
}

void BasicProcess::start_wfgd() {
  // The initiator is on a black cycle, hence never replies, hence every
  // incoming black edge (v_j, v_i) is permanently black.  Send {(v_j, v_i)}
  // to each such v_j.
  for (const ProcessId pred : in_black_) {
    const WfgdEdgeSet message{graph::Edge{pred, id_}};
    auto& sent = wfgd_sent_[pred];
    if (sent == message) continue;
    sent = message;
    send_wfgd_set(pred, message);
  }
}

void BasicProcess::handle_wfgd(ProcessId /*from*/, const WfgdMsg& msg) {
  ++stats_.wfgd_messages_received;
  // Receiving M means every edge in M lies on a permanent black path leading
  // from us -- so we are permanently blocked, i.e. deadlocked.
  deadlocked_ = true;
  wfgd_edges_.insert(msg.edges.begin(), msg.edges.end());
  propagate_wfgd();
}

void BasicProcess::propagate_wfgd() {
  for (const ProcessId pred : in_black_) {
    WfgdEdgeSet message = wfgd_edges_;
    message.insert(graph::Edge{pred, id_});
    auto& sent = wfgd_sent_[pred];
    if (sent == message) continue;  // never send the same message twice
    sent = message;
    send_wfgd_set(pred, message);
  }
}

void BasicProcess::mix_state_hash(std::uint64_t& h) const {
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(id_.value());
  for (const ProcessId p : out_edges_) mix(p.value());
  mix(0xE1);  // domain separators between variable-length runs
  for (const ProcessId p : in_black_) mix(p.value());
  mix(0xE2);
  mix(next_sequence_);
  mix(static_cast<std::uint64_t>(declared_) << 1 |
      static_cast<std::uint64_t>(deadlocked_));

  std::vector<std::pair<ProcessId, ComputationState>> comps(
      computations_.begin(), computations_.end());
  std::sort(comps.begin(), comps.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [who, st] : comps) {
    mix(who.value());
    mix(st.sequence);
    mix(static_cast<std::uint64_t>(st.engaged));
  }
  mix(0xE3);
  for (const graph::Edge& e : wfgd_edges_) {
    mix(e.from.value());
    mix(e.to.value());
  }
  mix(0xE4);
  std::vector<const decltype(wfgd_sent_)::value_type*> sent;
  sent.reserve(wfgd_sent_.size());
  for (const auto& entry : wfgd_sent_) sent.push_back(&entry);
  std::sort(sent.begin(), sent.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* entry : sent) {
    mix(entry->first.value());
    for (const graph::Edge& e : entry->second) {
      mix(e.from.value());
      mix(e.to.value());
    }
    mix(0xE5);
  }
}

}  // namespace cmh::core
