#include "core/or_model.h"

#include <stdexcept>

#include "common/logging.h"

namespace cmh::core {

namespace {
enum WireType : std::uint8_t { kSignal = 1, kQuery = 2, kReply = 3 };
}  // namespace

OrFrame or_encode_small(const OrMessage& msg) {
  OrFrame f;
  std::visit(
      [&f](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, OrSignalMsg>) {
          f.u8(kSignal);
        } else if constexpr (std::is_same_v<T, OrQueryMsg>) {
          f.u8(kQuery);
          f.probe_tag(m.tag);
        } else if constexpr (std::is_same_v<T, OrReplyMsg>) {
          f.u8(kReply);
          f.probe_tag(m.tag);
        }
      },
      msg);
  return f;
}

Bytes or_encode(const OrMessage& msg) {
  const OrFrame f = or_encode_small(msg);
  return {f.data(), f.data() + f.size()};
}

Result<OrMessage> or_decode(BytesView payload) {
  Reader r(payload);
  std::uint8_t type = 0;
  if (auto st = r.u8(type); !st.ok()) return st;
  switch (type) {
    case kSignal:
      return OrMessage{OrSignalMsg{}};
    case kQuery: {
      OrQueryMsg m;
      if (auto st = r.probe_tag(m.tag); !st.ok()) return st;
      return OrMessage{m};
    }
    case kReply: {
      OrReplyMsg m;
      if (auto st = r.probe_tag(m.tag); !st.ok()) return st;
      return OrMessage{m};
    }
    default:
      return Status{StatusCode::kInvalidArgument, "unknown OR message type"};
  }
}

OrProcess::OrProcess(ProcessId id, Sender sender, bool initiate_on_block)
    : id_(id),
      sender_(std::move(sender)),
      initiate_on_block_(initiate_on_block) {}

void OrProcess::block_on(const std::set<ProcessId>& dependents) {
  if (blocked()) {
    throw std::logic_error("OrProcess::block_on: already blocked");
  }
  if (dependents.empty()) {
    throw std::invalid_argument("OrProcess::block_on: empty dependent set");
  }
  if (dependents.contains(id_)) {
    throw std::invalid_argument("OrProcess::block_on: waiting on self");
  }
  dependent_set_ = dependents;
  ++wait_epoch_;
  if (initiate_on_block_) initiate();
}

void OrProcess::signal(ProcessId to) {
  if (blocked()) {
    throw std::logic_error("OrProcess::signal: blocked processes cannot act");
  }
  ++stats_.signals_sent;
  sender_(to, or_encode_small(OrMessage{OrSignalMsg{}}).view());
}

std::optional<ProbeTag> OrProcess::initiate() {
  if (!blocked()) return std::nullopt;
  const ProbeTag tag{id_, ++next_sequence_};
  Engagement e;
  e.sequence = tag.sequence;
  e.engager = id_;
  e.wait_epoch = wait_epoch_;
  engagements_[id_] = e;
  ++stats_.computations_initiated;
  CMH_LOG(kDebug, "or") << id_ << " initiates OR computation " << tag;
  send_wave(tag, engagements_[id_]);
  return tag;
}

void OrProcess::send_wave(const ProbeTag& tag, Engagement& e) {
  e.awaiting = dependent_set_->size();
  // One stack-encoded frame serves the whole wave.
  const OrFrame frame = or_encode_small(OrMessage{OrQueryMsg{tag}});
  for (const ProcessId to : *dependent_set_) {
    ++stats_.queries_sent;
    sender_(to, frame.view());
  }
}

Status OrProcess::on_message(ProcessId from, BytesView payload) {
  auto decoded = or_decode(payload);
  if (!decoded.ok()) return decoded.status();
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, OrSignalMsg>) {
          handle_signal(from);
        } else if constexpr (std::is_same_v<T, OrQueryMsg>) {
          handle_query(from, m);
        } else if constexpr (std::is_same_v<T, OrReplyMsg>) {
          handle_reply(from, m);
        }
      },
      *decoded);
  return Status::Ok();
}

void OrProcess::handle_signal(ProcessId /*from*/) {
  if (!blocked()) return;  // already released by an earlier signal
  dependent_set_.reset();
  // Any engagement becomes void: we were not continuously blocked.
  ++wait_epoch_;
}

void OrProcess::handle_query(ProcessId from, const OrQueryMsg& msg) {
  ++stats_.queries_received;
  if (!blocked()) return;  // active processes discard queries

  auto it = engagements_.find(msg.tag.initiator);
  if (it != engagements_.end()) {
    Engagement& e = it->second;
    if (msg.tag.sequence < e.sequence) return;  // stale computation
    if (msg.tag.sequence == e.sequence) {
      if (e.wait_epoch != wait_epoch_) {
        // Not continuously blocked since engagement; the old wave is void
        // and re-engaging could certify a dependence that was interrupted.
        return;
      }
      // Later query of an engagement we already serve: reply immediately.
      ++stats_.replies_sent;
      sender_(from, or_encode_small(OrMessage{OrReplyMsg{msg.tag}}).view());
      return;
    }
  }

  // First query of this computation: engage and propagate the wave.
  Engagement e;
  e.sequence = msg.tag.sequence;
  e.engager = from;
  e.wait_epoch = wait_epoch_;
  engagements_[msg.tag.initiator] = e;
  send_wave(msg.tag, engagements_[msg.tag.initiator]);
}

void OrProcess::handle_reply(ProcessId /*from*/, const OrReplyMsg& msg) {
  ++stats_.replies_received;
  if (!blocked()) return;
  const auto it = engagements_.find(msg.tag.initiator);
  if (it == engagements_.end()) return;
  Engagement& e = it->second;
  if (e.sequence != msg.tag.sequence || e.wait_epoch != wait_epoch_ ||
      e.done || e.awaiting == 0) {
    return;
  }
  if (--e.awaiting == 0) complete_wave(msg.tag, e);
}

void OrProcess::complete_wave(const ProbeTag& tag, Engagement& e) {
  e.done = true;
  if (tag.initiator == id_) {
    // Every process reachable through dependent sets is blocked and has
    // been continuously blocked across the wave: deadlock.
    declared_ = true;
    ++stats_.deadlocks_declared;
    CMH_LOG(kInfo, "or") << id_ << " declares OR-model deadlock via " << tag;
    if (on_deadlock_) on_deadlock_(tag);
    return;
  }
  ++stats_.replies_sent;
  sender_(e.engager, or_encode_small(OrMessage{OrReplyMsg{tag}}).view());
}

}  // namespace cmh::core
