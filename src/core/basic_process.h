// BasicProcess -- a basic-model vertex with the Chandy-Misra probe
// computation (paper sections 2-5) built in.
//
// The class is a pure message-driven state machine: it consumes decoded
// messages via on_message() and emits sends through an injected Sender.  It
// is transport-agnostic; the simulator, the in-memory threaded transport and
// the TCP transport all host it unchanged.  Callers must serialize calls per
// instance (the transports' per-node delivery threads already do), which
// realizes the paper's atomic-step note under A0-A2.
//
// Local knowledge is exactly what P3 allows:
//   * the set of outgoing wait-for edges (it created them; colors unknown),
//   * the set of incoming *black* edges (requests received, replies unsent).
//
// Hot-path layout: the edge sets are sorted flat sets (contiguous memory,
// probe fan-out is a linear scan), probes/requests/replies are encoded on
// the stack, and variable-size WFGD frames reuse one scratch buffer -- so
// steady-state probe traffic performs zero heap allocations.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/flat_set.h"
#include "common/ids.h"
#include "common/time.h"
#include "core/messages.h"
#include "core/options.h"

namespace cmh::core {

/// Emits one message toward a peer process.  Harnesses map ProcessId to a
/// transport node id (usually the identity).  The payload view is only
/// valid for the duration of the call; transports that defer delivery must
/// copy it.
using Sender = std::function<void(ProcessId to, BytesView payload)>;

/// Schedules a callback after a delay; used by the kDelayed initiation
/// policy.  The simulator and threaded runtimes provide implementations.
class TimerService {
 public:
  virtual ~TimerService() = default;
  virtual void schedule(SimTime delay, std::function<void()> fn) = 0;
};

/// Raised on misuse of the model (e.g. a blocked process trying to reply).
class ModelViolation : public std::logic_error {
  using std::logic_error::logic_error;
};

/// Per-process counters for tests and benchmarks.
struct ProcessStats {
  std::uint64_t requests_sent{0};
  std::uint64_t replies_sent{0};
  std::uint64_t probes_sent{0};
  std::uint64_t probes_received{0};
  std::uint64_t meaningful_probes{0};
  std::uint64_t computations_initiated{0};
  std::uint64_t deadlocks_declared{0};
  std::uint64_t wfgd_messages_sent{0};
  std::uint64_t wfgd_messages_received{0};
};

class BasicProcess {
 public:
  /// Invoked when this process declares "I am on a black cycle" (step A1).
  using DeadlockCallback = std::function<void(const ProbeTag& tag)>;

  using EdgeSet = FlatSet<ProcessId, 8>;
  using WfgdEdgeSet = FlatSet<graph::Edge, 8>;

  BasicProcess(ProcessId id, Sender sender, Options options = {},
               TimerService* timers = nullptr);

  BasicProcess(const BasicProcess&) = delete;
  BasicProcess& operator=(const BasicProcess&) = delete;

  [[nodiscard]] ProcessId id() const { return id_; }

  void set_deadlock_callback(DeadlockCallback cb) {
    on_deadlock_ = std::move(cb);
  }

  // ---- underlying computation --------------------------------------------

  /// Sends a request to `to`, creating wait-for edge (this, to).  Fires the
  /// initiation policy.  Requires the edge not to exist already.
  void send_request(ProcessId to);

  /// Sends the reply for `to`'s pending request.  Per G3 only an *active*
  /// process may reply, so this throws ModelViolation while this process has
  /// outgoing edges.
  void send_reply(ProcessId to);

  /// Feeds one raw message from the transport.  Returns non-OK only for
  /// undecodable payloads.
  Status on_message(ProcessId from, BytesView payload);

  // ---- detection ----------------------------------------------------------

  /// Step A0: starts a new probe computation tagged (id, next-sequence).
  /// Returns the tag (useful in tests), or nullopt if the process has no
  /// outgoing edges (an active process cannot be on a cycle).
  std::optional<ProbeTag> initiate();

  // ---- introspection -------------------------------------------------------

  /// True once this process has declared itself on a black cycle, or has
  /// learnt of its deadlock via a WFGD message.
  [[nodiscard]] bool deadlocked() const { return deadlocked_; }

  /// True iff this process declared via step A1 (is a detecting initiator).
  [[nodiscard]] bool declared_deadlock() const { return declared_; }

  /// The S_j of section 5: edges on permanent black paths leading from this
  /// process, as learnt so far.
  [[nodiscard]] const WfgdEdgeSet& wfgd_edges() const { return wfgd_edges_; }

  /// Locally-known outgoing wait-for edges (targets of unanswered requests
  /// we sent).
  [[nodiscard]] const EdgeSet& waits_for() const { return out_edges_; }

  /// Locally-known incoming black edges (peers whose request we hold).
  [[nodiscard]] const EdgeSet& held_requests() const { return in_black_; }

  [[nodiscard]] bool blocked() const { return !out_edges_.empty(); }

  [[nodiscard]] const ProcessStats& stats() const { return stats_; }
  [[nodiscard]] const Options& options() const { return options_; }

  /// Folds the protocol-relevant state into `h` (order-insensitive for the
  /// unordered containers: iteration is sorted first).  Used by the
  /// exhaustive interleaving checker (src/check) to fingerprint global
  /// states; excludes stats and the delayed-initiation epochs, which do not
  /// affect future behavior under timer-free exploration.
  void mix_state_hash(std::uint64_t& h) const;

 private:
  struct ComputationState {
    std::uint64_t sequence{0};
    bool engaged{false};  // reacted to a meaningful probe of this computation
  };

  void handle_request(ProcessId from);
  void handle_reply(ProcessId from);
  void handle_probe(ProcessId from, const ProbeMsg& probe);
  void handle_wfgd(ProcessId from, const WfgdMsg& msg);

  void send_probes_on_outgoing(const ProbeTag& tag);
  void declare_deadlock(const ProbeTag& tag);
  void start_wfgd();
  void propagate_wfgd();
  void send_wfgd_set(ProcessId to, const WfgdEdgeSet& edges);

  ProcessId id_;
  Sender sender_;
  Options options_;
  TimerService* timers_;
  DeadlockCallback on_deadlock_;

  EdgeSet out_edges_;
  EdgeSet in_black_;
  // Bumped every time an outgoing edge to the key is (re)created; lets the
  // delayed-initiation timer detect "existed continuously for T" (§4.3).
  std::unordered_map<ProcessId, std::uint64_t> out_edge_epoch_;

  std::uint64_t next_sequence_{0};
  // Latest computation seen per initiator (§4.3: older tags are ignored).
  std::unordered_map<ProcessId, ComputationState> computations_;

  bool declared_{false};
  bool deadlocked_{false};

  WfgdEdgeSet wfgd_edges_;
  // Last WFGD edge set sent per predecessor ("never send the same message
  // twice", §5.2).  Sets only grow, so remembering sizes would do, but we
  // keep the full set for clarity and assertion strength.
  std::unordered_map<ProcessId, WfgdEdgeSet> wfgd_sent_;

  // Reusable encode buffer for the variable-size WFGD frames.
  Bytes scratch_;

  ProcessStats stats_;
};

}  // namespace cmh::core
