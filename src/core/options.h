// Tunables of the basic-model detector, including the section-4 initiation
// rule and the ablation switches exercised by bench_a1 / bench_a2.
#pragma once

#include "common/time.h"

namespace cmh::core {

enum class InitiationMode {
  /// Section 4.2: initiate a probe computation whenever an outgoing edge is
  /// added to the wait-for graph.
  kOnRequest,
  /// Section 4.3: initiate only if the outgoing edge has existed
  /// continuously for T time units.
  kDelayed,
  /// The application calls initiate() explicitly (tests, examples).
  kManual,
};

struct Options {
  InitiationMode initiation{InitiationMode::kOnRequest};

  /// The T of section 4.3 (only used with kDelayed).
  SimTime initiation_delay{SimTime::ms(10)};

  /// Run the section-5 WFGD computation after declaring deadlock.
  bool propagate_wfgd{true};

  // ---- ablation switches (paper-faithful when left at defaults) ----------

  /// Paper step A2 forwards only the *first* meaningful probe per
  /// computation.  Setting this to true forwards every meaningful probe;
  /// bench_a1 measures the resulting message blowup.
  bool forward_every_meaningful_probe{false};

  /// Paper section 4.3 ignores computations (i,k) with k < n once (i,n) has
  /// been seen.  Setting this to false processes stale tags too; bench_a2
  /// measures the effect.
  bool ignore_stale_computations{true};
};

}  // namespace cmh::core
