#include "core/messages.h"

namespace cmh::core {

namespace {
enum WireType : std::uint8_t {
  kRequest = 1,
  kReply = 2,
  kProbe = 3,
  kWfgd = 4,
};
}  // namespace

Bytes encode(const Message& msg) {
  Writer w;
  std::visit(
      [&w](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RequestMsg>) {
          w.u8(kRequest);
        } else if constexpr (std::is_same_v<T, ReplyMsg>) {
          w.u8(kReply);
        } else if constexpr (std::is_same_v<T, ProbeMsg>) {
          w.u8(kProbe);
          w.probe_tag(m.tag);
        } else if constexpr (std::is_same_v<T, WfgdMsg>) {
          w.u8(kWfgd);
          w.u32(static_cast<std::uint32_t>(m.edges.size()));
          for (const graph::Edge& e : m.edges) {
            w.id(e.from);
            w.id(e.to);
          }
        }
      },
      msg);
  return std::move(w).take();
}

Result<Message> decode(const Bytes& payload) {
  Reader r(payload);
  std::uint8_t type = 0;
  if (auto st = r.u8(type); !st.ok()) return st;
  switch (type) {
    case kRequest:
      return Message{RequestMsg{}};
    case kReply:
      return Message{ReplyMsg{}};
    case kProbe: {
      ProbeMsg m;
      if (auto st = r.probe_tag(m.tag); !st.ok()) return st;
      return Message{m};
    }
    case kWfgd: {
      WfgdMsg m;
      std::uint32_t n = 0;
      if (auto st = r.u32(n); !st.ok()) return st;
      if (static_cast<std::uint64_t>(n) * 8 > r.remaining()) {
        return Status{StatusCode::kInvalidArgument, "wfgd: bad edge count"};
      }
      m.edges.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        graph::Edge e;
        if (auto st = r.id(e.from); !st.ok()) return st;
        if (auto st = r.id(e.to); !st.ok()) return st;
        m.edges.push_back(e);
      }
      return Message{m};
    }
    default:
      return Status{StatusCode::kInvalidArgument, "unknown message type"};
  }
}

}  // namespace cmh::core
