#include "core/messages.h"

namespace cmh::core {

void encode_into(const Message& msg, Bytes& out) {
  Writer w(out);
  std::visit(
      [&w](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RequestMsg>) {
          w.u8(wire::kRequest);
        } else if constexpr (std::is_same_v<T, ReplyMsg>) {
          w.u8(wire::kReply);
        } else if constexpr (std::is_same_v<T, ProbeMsg>) {
          w.reserve(kSmallFrameCapacity);
          w.u8(wire::kProbe);
          w.probe_tag(m.tag);
        } else if constexpr (std::is_same_v<T, WfgdMsg>) {
          w.reserve(5 + 8 * m.edges.size());
          w.u8(wire::kWfgd);
          w.u32(static_cast<std::uint32_t>(m.edges.size()));
          for (const graph::Edge& e : m.edges) {
            w.id(e.from);
            w.id(e.to);
          }
        }
      },
      msg);
}

Bytes encode(const Message& msg) {
  Bytes out;
  encode_into(msg, out);
  return out;
}

Result<Message> decode_slow(BytesView payload) {
  Reader r(payload);
  std::uint8_t type = 0;
  if (auto st = r.u8(type); !st.ok()) return st;
  switch (type) {
    case wire::kRequest:
      return Message{RequestMsg{}};
    case wire::kReply:
      return Message{ReplyMsg{}};
    case wire::kProbe: {
      // Fixed-size frame: one bounds check, then unchecked field reads.
      if (r.remaining() < kSmallFrameCapacity - 1) {
        return Status{StatusCode::kInvalidArgument, "truncated message"};
      }
      ProbeMsg m;
      m.tag.initiator = r.id_unchecked<ProcessId>();
      m.tag.sequence = r.u64_unchecked();
      return Message{m};
    }
    case wire::kWfgd: {
      WfgdMsg m;
      std::uint32_t n = 0;
      if (auto st = r.u32(n); !st.ok()) return st;
      if (static_cast<std::uint64_t>(n) * 8 > r.remaining()) {
        return Status{StatusCode::kInvalidArgument, "wfgd: bad edge count"};
      }
      m.edges.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        graph::Edge e;
        e.from = r.id_unchecked<ProcessId>();
        e.to = r.id_unchecked<ProcessId>();
        m.edges.push_back(e);
      }
      return Message{std::move(m)};
    }
    default:
      return Status{StatusCode::kInvalidArgument, "unknown message type"};
  }
}

}  // namespace cmh::core
