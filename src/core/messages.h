// Wire messages of the basic model.
//
// Requests and replies belong to the *underlying* computation (they move
// wait-for edges through grey -> black -> white); probes and WFGD edge-set
// messages belong to the *detection* computation (sections 3 and 5).  All
// four travel over the same FIFO channels, which is exactly what makes the
// process axioms P1/P2 hold.
//
// Encoding surfaces, fastest first:
//   * encode_small() -- stack-encoded frames for the fixed-size types
//                       (Request/Reply/Probe, <= kSmallFrameCapacity bytes);
//                       the steady-state probe path heap-allocates nothing.
//   * encode_into()  -- serializes any Message into a caller-owned scratch
//                       buffer (capacity reused across calls).
//   * encode()       -- convenience wrapper returning a fresh Bytes.
// All three produce byte-identical frames for the same message.
// cmh:hot-path -- steady-state detection path; lint enforces zero-alloc.
#pragma once

#include <optional>
#include <variant>
#include <vector>

#include "common/ids.h"
#include "common/serialize.h"
#include "common/status.h"
#include "graph/wait_for_graph.h"

namespace cmh::core {

/// Underlying computation: "please carry out an action for me".
/// Creates wait-for edge (sender, receiver); the edge is grey in flight and
/// blackens on receipt (G1, G2).
struct RequestMsg {};

/// Underlying computation: "done".  Whitens edge (receiver, sender) when
/// sent; the edge disappears on receipt (G3, G4).
struct ReplyMsg {};

/// Detection: probe of computation `tag`, traveling along wait-for edge
/// (sender, receiver).  Meaningful iff that edge exists and is black when
/// received (section 3.2), which the receiver checks locally per P3.
struct ProbeMsg {
  ProbeTag tag;
};

/// Section 5 WFGD computation: a set of edges lying on permanent black
/// paths from the receiver.
struct WfgdMsg {
  std::vector<graph::Edge> edges;
};

using Message = std::variant<RequestMsg, ReplyMsg, ProbeMsg, WfgdMsg>;

/// Largest wire size of the fixed-size message types: a probe frame is
/// 1 (type) + 4 (initiator) + 8 (sequence) bytes.
inline constexpr std::size_t kSmallFrameCapacity = 13;

/// A stack-encoded frame; view() is valid for the frame's lifetime.
using SmallFrame = StackWriter<kSmallFrameCapacity>;

namespace wire {
// Wire type tags, shared by the generic and fast-path codecs.
inline constexpr std::uint8_t kRequest = 1;
inline constexpr std::uint8_t kReply = 2;
inline constexpr std::uint8_t kProbe = 3;
inline constexpr std::uint8_t kWfgd = 4;
}  // namespace wire

[[nodiscard]] inline SmallFrame encode_small(const RequestMsg&) {
  SmallFrame f;
  f.u8(wire::kRequest);
  return f;
}

[[nodiscard]] inline SmallFrame encode_small(const ReplyMsg&) {
  SmallFrame f;
  f.u8(wire::kReply);
  return f;
}

[[nodiscard]] inline SmallFrame encode_small(const ProbeMsg& m) {
  SmallFrame f;
  f.u8(wire::kProbe);
  f.probe_tag(m.tag);
  return f;
}

/// Serializes `msg` into `out` (cleared first; capacity retained).
void encode_into(const Message& msg, Bytes& out);

[[nodiscard]] Bytes encode(const Message& msg);

/// Out-of-line decoder: variable-size frames (WFGD) and every error case.
[[nodiscard]] Result<Message> decode_slow(BytesView payload);

/// Decodes a frame.  The fixed-size types that dominate detection traffic
/// (request/reply/probe) are handled inline with a single size check;
/// everything else falls through to decode_slow().
[[nodiscard]] inline Result<Message> decode(BytesView payload) {
  if (!payload.empty()) {
    switch (payload[0]) {
      case wire::kRequest:
        return Message{RequestMsg{}};
      case wire::kReply:
        return Message{ReplyMsg{}};
      case wire::kProbe:
        if (payload.size() >= kSmallFrameCapacity) {
          Reader r(payload.subspan(1));
          ProbeMsg m;
          m.tag.initiator = r.id_unchecked<ProcessId>();
          m.tag.sequence = r.u64_unchecked();
          return Message{m};
        }
        break;
      default:
        break;
    }
  }
  return decode_slow(payload);
}

}  // namespace cmh::core
