// Wire messages of the basic model.
//
// Requests and replies belong to the *underlying* computation (they move
// wait-for edges through grey -> black -> white); probes and WFGD edge-set
// messages belong to the *detection* computation (sections 3 and 5).  All
// four travel over the same FIFO channels, which is exactly what makes the
// process axioms P1/P2 hold.
#pragma once

#include <optional>
#include <variant>
#include <vector>

#include "common/ids.h"
#include "common/serialize.h"
#include "common/status.h"
#include "graph/wait_for_graph.h"

namespace cmh::core {

/// Underlying computation: "please carry out an action for me".
/// Creates wait-for edge (sender, receiver); the edge is grey in flight and
/// blackens on receipt (G1, G2).
struct RequestMsg {};

/// Underlying computation: "done".  Whitens edge (receiver, sender) when
/// sent; the edge disappears on receipt (G3, G4).
struct ReplyMsg {};

/// Detection: probe of computation `tag`, traveling along wait-for edge
/// (sender, receiver).  Meaningful iff that edge exists and is black when
/// received (section 3.2), which the receiver checks locally per P3.
struct ProbeMsg {
  ProbeTag tag;
};

/// Section 5 WFGD computation: a set of edges lying on permanent black
/// paths from the receiver.
struct WfgdMsg {
  std::vector<graph::Edge> edges;
};

using Message = std::variant<RequestMsg, ReplyMsg, ProbeMsg, WfgdMsg>;

[[nodiscard]] Bytes encode(const Message& msg);
[[nodiscard]] Result<Message> decode(const Bytes& payload);

}  // namespace cmh::core
