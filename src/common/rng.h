// Deterministic, seedable random number generation.
//
// All stochastic behaviour in the library (simulated message delays,
// workload generation) flows through SplitMix64 so that every test,
// example and benchmark is reproducible from a single seed.
#pragma once

#include <cstdint>
#include <limits>

namespace cmh {

/// SplitMix64 -- tiny, fast, high-quality 64-bit PRNG.  Satisfies
/// std::uniform_random_bit_generator so it can drive <random> distributions,
/// though the helpers below avoid distribution objects for exact cross-
/// platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound).  bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  constexpr bool chance(double p) { return uniform() < p; }

  /// Derive an independent child generator (for per-entity streams).
  constexpr Rng fork() { return Rng((*this)()); }

 private:
  std::uint64_t state_;
};

}  // namespace cmh
