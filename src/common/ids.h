// Strong identifier types shared across the library.
//
// The paper identifies basic-model vertices by a process id, probe
// computations by a tag (initiator, sequence), and DDB processes by a
// (transaction, site) tuple.  We give each of these its own distinct C++
// type so they cannot be mixed up at call sites.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace cmh {

// CRTP base for an integer-backed strong id.  Provides ordering, hashing
// support and streaming; arithmetic is deliberately omitted.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << Tag::prefix() << id.value_;
  }

  [[nodiscard]] std::string to_string() const {
    return std::string(Tag::prefix()) + std::to_string(value_);
  }

 private:
  Rep value_{0};
};

struct ProcessIdTag {
  static constexpr const char* prefix() { return "p"; }
};
/// Identity of a basic-model process / wait-for-graph vertex.
using ProcessId = StrongId<ProcessIdTag>;

struct TransactionIdTag {
  static constexpr const char* prefix() { return "T"; }
};
/// Identity of a DDB transaction (the `T_i` of the paper's section 6).
using TransactionId = StrongId<TransactionIdTag>;

struct SiteIdTag {
  static constexpr const char* prefix() { return "S"; }
};
/// Identity of a DDB computer / controller (the `S_j` / `C_j` of section 6).
using SiteId = StrongId<SiteIdTag>;

struct ResourceIdTag {
  static constexpr const char* prefix() { return "r"; }
};
/// Identity of a lockable resource managed by some controller.
using ResourceId = StrongId<ResourceIdTag>;

/// A DDB process is uniquely identified by the tuple (T_i, S_j) -- the
/// representative of transaction T_i running at site S_j (paper section 6.2).
struct AgentId {
  TransactionId transaction;
  SiteId site;

  friend constexpr auto operator<=>(const AgentId&, const AgentId&) = default;

  friend std::ostream& operator<<(std::ostream& os, const AgentId& a) {
    return os << '(' << a.transaction << ',' << a.site << ')';
  }

  [[nodiscard]] std::string to_string() const {
    return "(" + transaction.to_string() + "," + site.to_string() + ")";
  }
};

/// Tag (i, n) of the n-th probe computation initiated by vertex i
/// (paper sections 3.2 and 4.3).  Probes and WFGD bookkeeping carry this tag;
/// a vertex only honours the latest computation per initiator.
struct ProbeTag {
  ProcessId initiator;
  std::uint64_t sequence{0};

  friend constexpr auto operator<=>(const ProbeTag&, const ProbeTag&) = default;

  friend std::ostream& operator<<(std::ostream& os, const ProbeTag& t) {
    return os << '(' << t.initiator << ',' << t.sequence << ')';
  }
};

}  // namespace cmh

namespace std {

template <typename Tag, typename Rep>
struct hash<cmh::StrongId<Tag, Rep>> {
  size_t operator()(cmh::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};

template <>
struct hash<cmh::AgentId> {
  size_t operator()(const cmh::AgentId& a) const noexcept {
    const auto h1 = std::hash<cmh::TransactionId>{}(a.transaction);
    const auto h2 = std::hash<cmh::SiteId>{}(a.site);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};

template <>
struct hash<cmh::ProbeTag> {
  size_t operator()(const cmh::ProbeTag& t) const noexcept {
    const auto h1 = std::hash<cmh::ProcessId>{}(t.initiator);
    const auto h2 = std::hash<std::uint64_t>{}(t.sequence);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};

}  // namespace std
