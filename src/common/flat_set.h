// Sorted flat set with small-buffer storage.
//
// Elements live in one contiguous sorted array: inline up to InlineN, on the
// heap beyond.  Lookup is binary search, iteration is a linear scan of
// contiguous memory, and steady-state mutation never allocates once capacity
// has reached the working-set size -- exactly the access pattern of the
// per-process edge sets (probe fan-out iterates them on every forwarded
// probe, and typical degrees are tiny).
//
// Restricted to trivially-copyable, default-constructible element types so
// growth and shifting stay simple copies; every id/edge type in this
// codebase qualifies.
// cmh:hot-path -- steady-state detection path; lint enforces zero-alloc.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <type_traits>

namespace cmh {

template <typename T, std::size_t InlineN = 8>
class FlatSet {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(std::is_default_constructible_v<T>);
  static_assert(InlineN > 0);

 public:
  using value_type = T;
  using const_iterator = const T*;

  FlatSet() = default;

  FlatSet(std::initializer_list<T> init) {
    for (const T& v : init) insert(v);
  }

  FlatSet(const FlatSet& other) { assign(other.data_, other.size_); }

  FlatSet& operator=(const FlatSet& other) {
    if (this != &other) assign(other.data_, other.size_);
    return *this;
  }

  FlatSet(FlatSet&& other) noexcept { steal(other); }

  FlatSet& operator=(FlatSet&& other) noexcept {
    if (this != &other) steal(other);
    return *this;
  }

  ~FlatSet() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] const_iterator begin() const { return data_; }
  [[nodiscard]] const_iterator end() const { return data_ + size_; }

  void clear() { size_ = 0; }

  [[nodiscard]] bool contains(const T& v) const {
    const T* pos = std::lower_bound(begin(), end(), v);
    return pos != end() && *pos == v;
  }

  /// Inserts `v` at its sorted position; returns false if already present.
  bool insert(const T& v) {
    T* pos = std::lower_bound(data_, data_ + size_, v);
    if (pos != data_ + size_ && *pos == v) return false;
    const std::size_t idx = static_cast<std::size_t>(pos - data_);
    if (size_ == cap_) grow();  // invalidates pos
    std::copy_backward(data_ + idx, data_ + size_, data_ + size_ + 1);
    data_[idx] = v;
    ++size_;
    return true;
  }

  template <typename It>
  void insert(It first, It last) {
    for (; first != last; ++first) insert(*first);
  }

  /// Removes `v`; returns false if absent.
  bool erase(const T& v) {
    T* pos = std::lower_bound(data_, data_ + size_, v);
    if (pos == data_ + size_ || !(*pos == v)) return false;
    std::copy(pos + 1, data_ + size_, pos);
    --size_;
    return true;
  }

  friend bool operator==(const FlatSet& a, const FlatSet& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  void grow() { reallocate(cap_ * 2); }

  void reallocate(std::size_t new_cap) {
    // Growth path only; steady state never reaches here.
    auto fresh = std::make_unique<T[]>(new_cap);  // lint:allow(hot-path-alloc)
    std::copy(data_, data_ + size_, fresh.get());
    heap_ = std::move(fresh);
    data_ = heap_.get();
    cap_ = new_cap;
  }

  void assign(const T* src, std::size_t n) {
    if (n > cap_) reallocate(n);
    std::copy(src, src + n, data_);
    size_ = n;
  }

  void steal(FlatSet& other) {
    if (other.heap_) {
      heap_ = std::move(other.heap_);
      data_ = heap_.get();
      cap_ = other.cap_;
      size_ = other.size_;
    } else {
      heap_.reset();
      data_ = inline_.data();
      cap_ = InlineN;
      std::copy(other.data_, other.data_ + other.size_, data_);
      size_ = other.size_;
    }
    other.heap_.reset();
    other.data_ = other.inline_.data();
    other.cap_ = InlineN;
    other.size_ = 0;
  }

  std::array<T, InlineN> inline_{};
  std::unique_ptr<T[]> heap_;
  T* data_{inline_.data()};
  std::size_t size_{0};
  std::size_t cap_{InlineN};
};

}  // namespace cmh
