#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "common/sync.h"

namespace cmh {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};
// Serializes whole lines onto stderr; fprintf interleaving across threads
// would shred concurrent log statements mid-line.
Mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void log_line(LogLevel level, std::string_view tag, const std::string& msg) {
  using namespace std::chrono;
  const auto us =
      duration_cast<microseconds>(steady_clock::now().time_since_epoch())
          .count();
  const MutexLock lock(g_mutex);
  std::fprintf(stderr, "%s %lld.%06lld [%.*s] %s\n", level_name(level),
               static_cast<long long>(us / 1000000),
               static_cast<long long>(us % 1000000),
               static_cast<int>(tag.size()), tag.data(), msg.c_str());
}
}  // namespace detail

}  // namespace cmh
