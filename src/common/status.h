// Lightweight Status / Result types for recoverable errors (network
// failures, malformed frames).  Programmer errors and axiom violations are
// reported via exceptions / assertions instead.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace cmh {

enum class StatusCode {
  kOk,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kUnavailable,
  kDeadlineExceeded,
  kAborted,
  kInternal,
};

[[nodiscard]] constexpr const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    if (ok()) return "OK";
    return std::string(cmh::to_string(code_)) + ": " + message_;
  }

 private:
  StatusCode code_{StatusCode::kOk};
  std::string message_;
};

/// Thrown when `Result::value()` is called on an error result.
class BadResultAccess : public std::logic_error {
 public:
  explicit BadResultAccess(const Status& status)
      : std::logic_error("Result has no value: " + status.to_string()) {}
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : state_(std::move(status)) {
    if (std::get<Status>(state_).ok()) {
      throw std::logic_error("Result constructed from OK status");
    }
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(state_); }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw BadResultAccess(status());
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) throw BadResultAccess(status());
    return std::get<T>(std::move(state_));
  }

  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(state_);
  }

  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }

 private:
  std::variant<T, Status> state_;
};

}  // namespace cmh
