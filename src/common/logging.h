// Minimal thread-safe structured logging.
//
// Logging is off by default (benchmarks must not pay for it); tests and
// examples opt in via set_log_level.  Format: "LEVEL ts [tag] message".
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace cmh {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void log_line(LogLevel level, std::string_view tag, const std::string& msg);
}

/// Streaming log statement: LOG(kInfo, "controller") << "acquired " << r;
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view tag) : level_(level), tag_(tag) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() {
    if (level_ >= log_level()) detail::log_line(level_, tag_, out_.str());
  }

  template <typename T>
  LogStream& operator<<(const T& value) {
    if (level_ >= log_level()) out_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view tag_;
  std::ostringstream out_;
};

#define CMH_LOG(level, tag) ::cmh::LogStream(::cmh::LogLevel::level, (tag))

}  // namespace cmh
