// Capability-annotated synchronization layer (Clang Thread Safety Analysis).
//
// Every lock in src/ goes through these wrappers so the locking contract is
// stated in the type system and *proved at compile time* under Clang
// (-Wthread-safety -Wthread-safety-beta; the CI thread-safety job builds the
// whole tree with -Werror).  On GCC and other compilers the attributes
// expand to nothing and the wrappers are zero-cost shims over the std types.
//
// The contract language:
//   CMH_GUARDED_BY(mu)     field may only be touched while mu is held.
//   CMH_PT_GUARDED_BY(mu)  the pointee (not the pointer) is guarded by mu.
//   CMH_REQUIRES(mu)       caller must hold mu across the call.
//   CMH_ACQUIRE / CMH_RELEASE  the function takes / drops the capability.
//   CMH_EXCLUDES(mu)       caller must NOT hold mu (deadlock guard).
//   CMH_ASSERT_CAPABILITY  runtime claim "mu is held here" for paths the
//                          analysis cannot follow (see Mutex::assert_held).
//
// Raw std::mutex / std::condition_variable / manual .lock()/.unlock() are
// banned outside this header by tools/lint_repo.py (rule raw-sync): the std
// lock types carry no annotations under libstdc++, so a single raw lock site
// would silently punch a hole in the proof.
#pragma once

#include <chrono>
#include <condition_variable>  // lint:allow(raw-sync)
#include <mutex>               // lint:allow(raw-sync)

#if defined(__clang__) && (!defined(SWIG))
#define CMH_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define CMH_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

#define CMH_CAPABILITY(x) CMH_THREAD_ANNOTATION__(capability(x))
#define CMH_SCOPED_CAPABILITY CMH_THREAD_ANNOTATION__(scoped_lockable)
#define CMH_GUARDED_BY(x) CMH_THREAD_ANNOTATION__(guarded_by(x))
#define CMH_PT_GUARDED_BY(x) CMH_THREAD_ANNOTATION__(pt_guarded_by(x))
#define CMH_ACQUIRED_BEFORE(...) \
  CMH_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define CMH_ACQUIRED_AFTER(...) \
  CMH_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#define CMH_REQUIRES(...) \
  CMH_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define CMH_ACQUIRE(...) \
  CMH_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define CMH_RELEASE(...) \
  CMH_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define CMH_TRY_ACQUIRE(...) \
  CMH_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define CMH_EXCLUDES(...) CMH_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define CMH_ASSERT_CAPABILITY(x) \
  CMH_THREAD_ANNOTATION__(assert_capability(x))
#define CMH_RETURN_CAPABILITY(x) CMH_THREAD_ANNOTATION__(lock_returned(x))
#define CMH_NO_THREAD_SAFETY_ANALYSIS \
  CMH_THREAD_ANNOTATION__(no_thread_safety_analysis)

// Documentation-only marker: the field is handed between threads by a
// barrier / thread-join protocol rather than a mutex (see DESIGN.md section
// 7.2 for each site's protocol).  The analysis cannot model such transfers;
// the marker keeps the claim greppable next to the field it covers.
#define CMH_GUARDED_BY_PROTOCOL(description)

namespace cmh {

class CondVar;

/// std::mutex with the lock discipline stated in its type.
class CMH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CMH_ACQUIRE() { mu_.lock(); }            // lint:allow(raw-sync)
  void unlock() CMH_RELEASE() { mu_.unlock(); }        // lint:allow(raw-sync)
  bool try_lock() CMH_TRY_ACQUIRE(true) {
    return mu_.try_lock();  // lint:allow(raw-sync)
  }

  /// Tells the analysis "this mutex is held here" on paths it cannot follow
  /// (type-erased callbacks, condition-variable predicates).  Purely a
  /// compile-time claim; it performs no runtime check, so only state it
  /// where the surrounding protocol guarantees it (each use carries a
  /// comment saying why).
  void assert_held() const CMH_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock (the only way code outside this header takes a Mutex).
class CMH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CMH_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CMH_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to a Mutex at each wait.  Waits take the
/// guarding Mutex explicitly and carry CMH_REQUIRES, so "condvar wait
/// without the guarding mutex stated" is a compile error under Clang.
///
/// Predicates run with the mutex held, but the analysis examines a lambda
/// body in isolation -- a predicate that reads guarded state must open with
/// `mu.assert_held();` (the one sanctioned use of assert_held).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(Mutex& mu) CMH_REQUIRES(mu) {
    AdoptedLock al(mu);
    cv_.wait(al.ul);
  }

  template <typename Pred>
  void wait(Mutex& mu, Pred pred) CMH_REQUIRES(mu) {
    while (!pred()) wait(mu);
  }

  /// Returns pred() (false iff the deadline passed with pred still false).
  template <typename Clock, typename Duration, typename Pred>
  bool wait_until(Mutex& mu,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Pred pred) CMH_REQUIRES(mu) {
    while (!pred()) {
      AdoptedLock al(mu);
      if (cv_.wait_until(al.ul, deadline) == std::cv_status::timeout)
        return pred();
    }
    return true;
  }

  /// Returns pred() (false iff the timeout elapsed with pred still false).
  template <typename Rep, typename Period, typename Pred>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
                Pred pred) CMH_REQUIRES(mu) {
    return wait_until(mu, std::chrono::steady_clock::now() + timeout,
                      std::move(pred));
  }

 private:
  // Adopts the caller's hold on mu for the duration of a std wait and hands
  // ownership back on every exit path -- including a throwing wait -- so
  // neither the std lock nor the caller's MutexLock double-unlocks.
  struct AdoptedLock {
    explicit AdoptedLock(Mutex& mu)
        : ul(mu.mu_, std::adopt_lock) {}  // lint:allow(raw-sync)
    ~AdoptedLock() { ul.release(); }
    AdoptedLock(const AdoptedLock&) = delete;
    AdoptedLock& operator=(const AdoptedLock&) = delete;
    std::unique_lock<std::mutex> ul;  // lint:allow(raw-sync)
  };

  std::condition_variable cv_;  // lint:allow(raw-sync)
};

}  // namespace cmh
