// Tiny self-describing binary serialization used for all wire messages.
//
// Fixed-width little-endian integers; length-prefixed containers.  Readers
// return Status on truncation/corruption rather than throwing, because a
// malformed frame from a peer is a runtime condition, not a bug.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace cmh {

using Bytes = std::vector<std::uint8_t>;

class Writer {
 public:
  [[nodiscard]] const Bytes& bytes() const { return out_; }
  [[nodiscard]] Bytes take() && { return std::move(out_); }

  void u8(std::uint8_t v) { out_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back((v >> (8 * i)) & 0xff);
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back((v >> (8 * i)) & 0xff);
  }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

  template <typename Tag, typename Rep>
  void id(StrongId<Tag, Rep> v) {
    u32(static_cast<std::uint32_t>(v.value()));
  }

  void agent(const AgentId& a) {
    id(a.transaction);
    id(a.site);
  }

  void probe_tag(const ProbeTag& t) {
    id(t.initiator);
    u64(t.sequence);
  }

 private:
  Bytes out_;
};

class Reader {
 public:
  explicit Reader(const Bytes& data) : data_(data.data()), size_(data.size()) {}
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool done() const { return pos_ == size_; }

  Status u8(std::uint8_t& v) {
    if (remaining() < 1) return truncated();
    v = data_[pos_++];
    return Status::Ok();
  }

  Status u32(std::uint32_t& v) {
    if (remaining() < 4) return truncated();
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    }
    return Status::Ok();
  }

  Status u64(std::uint64_t& v) {
    if (remaining() < 8) return truncated();
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    }
    return Status::Ok();
  }

  Status str(std::string& s) {
    std::uint32_t n = 0;
    if (auto st = u32(n); !st.ok()) return st;
    if (remaining() < n) return truncated();
    s.assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return Status::Ok();
  }

  template <typename Tag, typename Rep>
  Status id(StrongId<Tag, Rep>& v) {
    std::uint32_t raw = 0;
    if (auto st = u32(raw); !st.ok()) return st;
    v = StrongId<Tag, Rep>(static_cast<Rep>(raw));
    return Status::Ok();
  }

  Status agent(AgentId& a) {
    if (auto st = id(a.transaction); !st.ok()) return st;
    return id(a.site);
  }

  Status probe_tag(ProbeTag& t) {
    if (auto st = id(t.initiator); !st.ok()) return st;
    return u64(t.sequence);
  }

 private:
  static Status truncated() {
    return {StatusCode::kInvalidArgument, "truncated message"};
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_{0};
};

}  // namespace cmh
