// Tiny self-describing binary serialization used for all wire messages.
//
// Fixed-width little-endian integers; length-prefixed containers.  Readers
// return Status on truncation/corruption rather than throwing, because a
// malformed frame from a peer is a runtime condition, not a bug.
//
// Two encoder shapes cover the hot paths:
//   * Writer        -- grows a Bytes buffer; supports scratch-buffer mode so
//                      steady-state encoders reuse one allocation.
//   * StackWriter   -- fixed-capacity stack buffer for the small fixed-size
//                      frames (probes, requests, replies); zero heap use.
// cmh:hot-path -- steady-state detection path; lint enforces zero-alloc.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace cmh {

using Bytes = std::vector<std::uint8_t>;

/// Non-owning view of an encoded frame.  Bytes converts implicitly, so all
/// send/decode surfaces accept either a Bytes or a stack frame.
using BytesView = std::span<const std::uint8_t>;

namespace detail {

inline void store_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

inline void store_u64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

[[nodiscard]] inline std::uint32_t load_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

[[nodiscard]] inline std::uint64_t load_u64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

}  // namespace detail

class Writer {
 public:
  /// Owned-buffer mode: bytes accumulate internally; take() moves them out.
  Writer() : out_(&owned_) {}

  /// Scratch-buffer mode: serializes into `scratch`, which is cleared up
  /// front but keeps its capacity -- so an encoder called in a loop with the
  /// same scratch does zero heap allocation once warmed up.
  explicit Writer(Bytes& scratch) : out_(&scratch) { scratch.clear(); }

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  [[nodiscard]] const Bytes& bytes() const { return *out_; }

  /// Only meaningful in owned-buffer mode.
  [[nodiscard]] Bytes take() && {
    assert(out_ == &owned_ && "take() requires owned-buffer mode");
    return std::move(owned_);
  }

  /// Pre-sizes the buffer for `n` further bytes (single growth instead of
  /// one per appended field).
  void reserve(std::size_t n) { out_->reserve(out_->size() + n); }

  void u8(std::uint8_t v) { out_->push_back(v); }

  void u32(std::uint32_t v) {
    std::uint8_t b[4];
    detail::store_u32(b, v);
    append(b, 4);
  }

  void u64(std::uint64_t v) {
    std::uint8_t b[8];
    detail::store_u64(b, v);
    append(b, 8);
  }

  void str(const std::string& s) {
    if (s.size() > std::numeric_limits<std::uint32_t>::max()) {
      // A longer string cannot be represented by the u32 length prefix;
      // silently truncating the length would corrupt the frame.
      throw std::length_error("Writer::str: string exceeds u32 length prefix");
    }
    u32(static_cast<std::uint32_t>(s.size()));
    // Byte-for-byte copy via the iterator-range overload: char -> uint8_t is
    // a value conversion (mod 256), identical to the old pointer-aliasing
    // reinterpret_cast and it keeps this header cast-free.
    out_->insert(out_->end(), s.begin(), s.end());
  }

  template <typename Tag, typename Rep>
  void id(StrongId<Tag, Rep> v) {
    u32(static_cast<std::uint32_t>(v.value()));
  }

  void agent(const AgentId& a) {
    id(a.transaction);
    id(a.site);
  }

  void probe_tag(const ProbeTag& t) {
    id(t.initiator);
    u64(t.sequence);
  }

 private:
  void append(const std::uint8_t* p, std::size_t n) {
    out_->insert(out_->end(), p, p + n);
  }

  Bytes owned_;
  Bytes* out_;
};

/// Fixed-capacity writer backed by a stack array.  Intended for the small
/// fixed-size frames whose maximum wire size is known at compile time;
/// overflowing the capacity is a programmer error (asserted in debug).
template <std::size_t N>
class StackWriter {
 public:
  static constexpr std::size_t capacity() { return N; }

  [[nodiscard]] BytesView view() const { return {buf_.data(), len_}; }
  [[nodiscard]] const std::uint8_t* data() const { return buf_.data(); }
  [[nodiscard]] std::size_t size() const { return len_; }

  void u8(std::uint8_t v) {
    assert(len_ + 1 <= N);
    buf_[len_++] = v;
  }

  void u32(std::uint32_t v) {
    assert(len_ + 4 <= N);
    detail::store_u32(buf_.data() + len_, v);
    len_ += 4;
  }

  void u64(std::uint64_t v) {
    assert(len_ + 8 <= N);
    detail::store_u64(buf_.data() + len_, v);
    len_ += 8;
  }

  template <typename Tag, typename Rep>
  void id(StrongId<Tag, Rep> v) {
    u32(static_cast<std::uint32_t>(v.value()));
  }

  void agent(const AgentId& a) {
    id(a.transaction);
    id(a.site);
  }

  void probe_tag(const ProbeTag& t) {
    id(t.initiator);
    u64(t.sequence);
  }

 private:
  std::array<std::uint8_t, N> buf_{};
  std::size_t len_{0};
};

class Reader {
 public:
  explicit Reader(BytesView data) : data_(data.data()), size_(data.size()) {}
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool done() const { return pos_ == size_; }

  Status u8(std::uint8_t& v) {
    if (remaining() < 1) return truncated();
    v = data_[pos_++];
    return Status::Ok();
  }

  Status u32(std::uint32_t& v) {
    if (remaining() < 4) return truncated();
    v = detail::load_u32(data_ + pos_);
    pos_ += 4;
    return Status::Ok();
  }

  Status u64(std::uint64_t& v) {
    if (remaining() < 8) return truncated();
    v = detail::load_u64(data_ + pos_);
    pos_ += 8;
    return Status::Ok();
  }

  Status str(std::string& s) {
    std::uint32_t n = 0;
    if (auto st = u32(n); !st.ok()) return st;
    // Compare in 64 bits BEFORE any narrowing: a crafted length near 2^32
    // must be rejected here, never wrapped into a small in-bounds count.
    if (static_cast<std::uint64_t>(n) >
        static_cast<std::uint64_t>(remaining())) {
      return Status{StatusCode::kInvalidArgument,
                    "str length exceeds remaining bytes"};
    }
    // Iterator-range assign: uint8_t -> char value conversion round-trips
    // with Writer::str exactly; no pointer-type punning needed.
    s.assign(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return Status::Ok();
  }

  template <typename Tag, typename Rep>
  Status id(StrongId<Tag, Rep>& v) {
    std::uint32_t raw = 0;
    if (auto st = u32(raw); !st.ok()) return st;
    v = StrongId<Tag, Rep>(static_cast<Rep>(raw));
    return Status::Ok();
  }

  Status agent(AgentId& a) {
    if (auto st = id(a.transaction); !st.ok()) return st;
    return id(a.site);
  }

  Status probe_tag(ProbeTag& t) {
    if (auto st = id(t.initiator); !st.ok()) return st;
    return u64(t.sequence);
  }

  // ---- unchecked fast path ------------------------------------------------
  // Decoders that have verified `remaining() >= frame size` once may read
  // the fixed-size fields without per-field bounds checks.

  [[nodiscard]] std::uint8_t u8_unchecked() {
    assert(remaining() >= 1);
    return data_[pos_++];
  }

  [[nodiscard]] std::uint32_t u32_unchecked() {
    assert(remaining() >= 4);
    const std::uint32_t v = detail::load_u32(data_ + pos_);
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t u64_unchecked() {
    assert(remaining() >= 8);
    const std::uint64_t v = detail::load_u64(data_ + pos_);
    pos_ += 8;
    return v;
  }

  template <typename Id>
  [[nodiscard]] Id id_unchecked() {
    return Id(static_cast<typename Id::rep_type>(u32_unchecked()));
  }

 private:
  static Status truncated() {
    return {StatusCode::kInvalidArgument, "truncated message"};
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_{0};
};

}  // namespace cmh
