// Time representation shared by the simulator (virtual time) and the
// threaded runtimes (wall-clock mapped onto the same type).
#pragma once

#include <chrono>
#include <cstdint>
#include <ostream>

namespace cmh {

/// Microsecond-resolution timestamp/duration.  In the simulator this is
/// virtual time starting at 0; in the threaded runtime it is steady-clock
/// time since runtime start.
struct SimTime {
  std::int64_t micros{0};

  friend constexpr auto operator<=>(SimTime, SimTime) = default;
  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return {a.micros + b.micros};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return {a.micros - b.micros};
  }

  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(micros) * 1e-6;
  }

  static constexpr SimTime zero() { return {0}; }
  static constexpr SimTime us(std::int64_t v) { return {v}; }
  static constexpr SimTime ms(std::int64_t v) { return {v * 1000}; }
  static constexpr SimTime sec(std::int64_t v) { return {v * 1000000}; }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.micros << "us";
  }
};

/// Abstract clock so algorithm-level code (e.g. the delayed-T initiation
/// policy) can run unchanged in the simulator and on real threads.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual SimTime now() const = 0;
};

/// Wall clock mapped to SimTime (micros since construction).
class SteadyClock final : public Clock {
 public:
  SteadyClock() : start_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] SimTime now() const override {
    const auto d = std::chrono::steady_clock::now() - start_;
    return SimTime::us(
        std::chrono::duration_cast<std::chrono::microseconds>(d).count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cmh
