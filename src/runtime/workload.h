// Workload drivers for the simulator-hosted cluster.
//
// RandomWorkload emulates the resource behaviour the paper's model
// abstracts: an *active* process serves (replies to) requests after a
// service delay; a *blocked* process defers them until it becomes active --
// and a process on a dark cycle therefore never serves them, wedging every
// requester transitively.  Deadlocks arise organically under contention;
// the cluster's oracle provides ground truth.
#pragma once

#include <optional>

#include "common/rng.h"
#include "graph/generators.h"
#include "runtime/sim_cluster.h"

namespace cmh::runtime {

struct WorkloadConfig {
  /// Mean gap between request-issue attempts across the whole cluster.
  SimTime mean_interarrival{SimTime::us(200)};
  /// Delay between receiving a request (while active) and replying.
  SimTime mean_service{SimTime::ms(1)};
  /// Maximum outstanding requests per process (AND-model fan-out).
  std::uint32_t max_outstanding{2};
  /// Allow a blocked process to issue further requests (the basic model
  /// permits it; resource systems do it when acquiring multiple locks).
  bool blocked_may_request{true};
  /// Stop issuing new requests at this virtual time (replies continue).
  SimTime issue_until{SimTime::ms(50)};
  /// Only request from lower ids to higher ids -- the classic resource-
  /// ordering discipline.  The wait-for graph then follows a fixed
  /// topological order and deadlock is impossible; used by benches that
  /// need contended-but-live traffic.
  bool ordered_requests{false};
};

class RandomWorkload {
 public:
  RandomWorkload(SimCluster& cluster, WorkloadConfig config,
                 std::uint64_t seed);

  /// Installs hooks and schedules the first arrival.  Call once, then run
  /// the cluster's simulator.
  void start();

  /// Virtual time at which the oracle first contained a dark cycle, if ever.
  [[nodiscard]] std::optional<SimTime> first_deadlock_at() const {
    return first_deadlock_at_;
  }

  [[nodiscard]] std::uint64_t requests_issued() const {
    return requests_issued_;
  }

 private:
  void schedule_next_arrival();
  void issue_random_request();
  void maybe_serve(ProcessId server);
  void try_reply(ProcessId server, ProcessId client);

  SimCluster& cluster_;
  WorkloadConfig config_;
  Rng rng_;
  std::optional<SimTime> first_deadlock_at_;
  std::uint64_t requests_issued_{0};
};

/// Issues the dark edges of a generator scenario as real requests on the
/// cluster (create ops only; blackening happens on delivery).  The scenario
/// must not contain whiten/remove ops.
void issue_scenario(SimCluster& cluster, const graph::Scenario& scenario);

}  // namespace cmh::runtime
