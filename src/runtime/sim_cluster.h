// SimCluster -- hosts N BasicProcess instances on the discrete-event
// simulator and maintains a ground-truth colored wait-for graph alongside.
//
// The oracle graph is updated at the *true* instants of the model:
//   create  -- when a request is sent        (G1)
//   blacken -- when the request is delivered (G2)
//   whiten  -- when the reply is sent        (G3)
//   remove  -- when the reply is delivered   (G4)
// so at every point in virtual time the oracle is exactly the paper's global
// wait-for graph, and QRP1/QRP2 can be checked literally against it.
// Sharded runs: construct with SimClusterConfig{.shards = K} to put the
// cluster on the parallel simulation engine.  The oracle is one shared
// mutable graph touched from every delivery, so it cannot be kept while
// handlers run concurrently -- large-scale perf runs set
// track_oracle = false (detection events themselves are still recorded,
// under a mutex).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "check/invariant_auditor.h"
#include "common/sync.h"
#include "core/basic_process.h"
#include "graph/wait_for_graph.h"
#include "sim/simulator.h"

namespace cmh::runtime {

/// Whether SimClusterConfig::audit defaults on: yes in Debug/sanitizer
/// builds (catch protocol regressions everywhere tests run), no in Release
/// (the auditor copies every in-flight frame -- perf runs opt in).
#ifdef NDEBUG
inline constexpr bool kAuditDefault = false;
#else
inline constexpr bool kAuditDefault = true;
#endif

/// TimerService backed by simulator virtual time.
class SimTimerService final : public core::TimerService {
 public:
  explicit SimTimerService(sim::Simulator& simulator) : sim_(simulator) {}
  void schedule(SimTime delay, std::function<void()> fn) override {
    sim_.schedule(delay, std::move(fn));
  }

 private:
  sim::Simulator& sim_;
};

struct DeadlockEvent {
  ProbeTag tag;       // which computation detected
  ProcessId process;  // who declared (== tag.initiator)
  SimTime at;         // virtual time of declaration
};

/// Construction knobs beyond the per-process Options.
struct SimClusterConfig {
  std::uint64_t seed{1};
  sim::DelayModel delays{};
  /// Simulator shard count; >1 runs the cluster on the parallel engine.
  std::uint32_t shards{1};
  /// Maintain the ground-truth colored wait-for graph (and delivery hooks).
  /// Must be false when shards > 1: the oracle is global mutable state.
  bool track_oracle{true};
  /// Attach the paper-invariant auditor (src/check): re-derives the colored
  /// WFG from message traffic and checks G1-G4/P1-P4 plus QRP1/QRP2.
  /// Defaults on in Debug builds, off in Release; must be false when
  /// shards > 1 (same reason as the oracle).
  bool audit{kAuditDefault};
  /// Auditor failure mode: true throws check::InvariantViolationError at the
  /// first violation; false accumulates into audit_report() so a harness can
  /// log every finding.
  bool abort_on_violation{true};
};

class SimCluster {
 public:
  SimCluster(std::uint32_t n, core::Options options, std::uint64_t seed = 1,
             sim::DelayModel delays = {});
  SimCluster(std::uint32_t n, core::Options options,
             const SimClusterConfig& config);

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(processes_.size());
  }
  [[nodiscard]] core::BasicProcess& process(ProcessId id) {
    return *processes_.at(id.value());
  }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const graph::WaitForGraph& oracle() const { return oracle_; }

  /// p_from sends a request to p_to (kicks the initiation policy).
  void request(ProcessId from, ProcessId to);

  /// p_from replies to p_to's pending request.
  void reply(ProcessId from, ProcessId to);

  /// Deadlock declarations observed so far (chronological).  Returns a
  /// snapshot by value: in sharded runs declarations land from shard worker
  /// threads, so handing out a reference to the live vector would let the
  /// caller read it unguarded.
  [[nodiscard]] std::vector<DeadlockEvent> detections() const {
    const MutexLock lock(detections_mutex_);
    return detections_;
  }

  /// Number of declarations so far (lock-free; safe from any thread).
  [[nodiscard]] std::size_t detection_count() const {
    return detection_count_.load(std::memory_order_acquire);
  }

  /// Invoked synchronously at the instant a process declares deadlock --
  /// the oracle still reflects that exact moment, so QRP2 can be asserted
  /// literally ("on a black cycle at the time the probe is received").
  using DetectionCallback = std::function<void(const DeadlockEvent&)>;
  void set_detection_callback(DetectionCallback cb) {
    on_detection_ = std::move(cb);
  }

  /// Sum of a per-process counter across the cluster.
  [[nodiscard]] core::ProcessStats total_stats() const;

  /// Per-delivery hooks (run after the process handled the message).  Used
  /// by workloads and baseline detectors to react to request/reply arrivals.
  /// Requires oracle tracking: the hook path decodes every delivery.
  using DeliveryHook =
      std::function<void(ProcessId to, ProcessId from, const core::Message&)>;
  void add_delivery_hook(DeliveryHook hook);

  /// Runs the simulator until idle; returns final virtual time.  With the
  /// auditor attached, the end-of-run checks (P4, QRP1) fire at quiescence.
  SimTime run();

  /// Runs until the first deadlock declaration or until idle.  Returns true
  /// if a declaration happened.  Auditor end-of-run checks fire only if the
  /// transport drained (an early stop leaves frames legitimately in flight).
  bool run_until_detection();

  /// The attached auditor, or nullptr when SimClusterConfig::audit is off.
  [[nodiscard]] check::InvariantAuditor* auditor() {
    return auditor_ ? auditor_.get() : nullptr;
  }

  /// Violations accumulated so far (empty string when clean or audit off).
  [[nodiscard]] std::string audit_report() const {
    return auditor_ ? auditor_->report() : std::string{};
  }

 private:
  /// NodeId <-> ProcessId shim between the simulator's observer hook and the
  /// auditor (node ids equal process ids by construction).
  class AuditAdapter final : public sim::SimObserver {
   public:
    explicit AuditAdapter(check::InvariantAuditor& auditor)
        : auditor_(auditor) {}
    void on_send(sim::NodeId from, sim::NodeId to, BytesView payload,
                 SimTime at) override {
      auditor_.on_send(ProcessId{from}, ProcessId{to}, payload, at);
    }
    void on_deliver(sim::NodeId from, sim::NodeId to, BytesView payload,
                    SimTime at) override {
      auditor_.on_deliver(ProcessId{from}, ProcessId{to}, payload, at);
    }

   private:
    check::InvariantAuditor& auditor_;
  };

  void on_delivery(ProcessId to, ProcessId from, const Bytes& payload);

  sim::Simulator sim_;
  SimTimerService timers_;
  bool track_oracle_;
  std::unique_ptr<check::InvariantAuditor> auditor_;
  std::unique_ptr<AuditAdapter> audit_adapter_;
  graph::WaitForGraph oracle_;
  std::vector<std::unique_ptr<core::BasicProcess>> processes_;
  // Declarations may come from shard workers; the atomic count lets the
  // sequential run-until-detection predicate poll without taking the lock
  // on every event.
  mutable Mutex detections_mutex_;
  std::vector<DeadlockEvent> detections_ CMH_GUARDED_BY(detections_mutex_);
  std::atomic<std::size_t> detection_count_{0};
  std::vector<DeliveryHook> hooks_;
  DetectionCallback on_detection_;
};

}  // namespace cmh::runtime
