#include "runtime/threaded_cluster.h"

#include <stdexcept>

namespace cmh::runtime {

// ---- ThreadTimerService -----------------------------------------------------

ThreadTimerService::ThreadTimerService() : worker_([this] { loop(); }) {}

ThreadTimerService::~ThreadTimerService() { stop(); }

void ThreadTimerService::stop() {
  {
    std::scoped_lock lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void ThreadTimerService::schedule(SimTime delay, std::function<void()> fn) {
  const auto at = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(delay.micros);
  {
    std::scoped_lock lock(mutex_);
    if (stopping_) return;
    pending_.emplace(at, std::move(fn));
  }
  cv_.notify_all();
}

void ThreadTimerService::loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (stopping_) return;
    if (pending_.empty()) {
      cv_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
      continue;
    }
    const auto next = pending_.begin()->first;
    if (cv_.wait_until(lock, next, [&] {
          return stopping_ ||
                 (!pending_.empty() && pending_.begin()->first <= next &&
                  std::chrono::steady_clock::now() >= pending_.begin()->first);
        })) {
      if (stopping_) return;
    }
    // Fire everything due.
    const auto now = std::chrono::steady_clock::now();
    while (!pending_.empty() && pending_.begin()->first <= now) {
      auto fn = std::move(pending_.begin()->second);
      pending_.erase(pending_.begin());
      lock.unlock();
      fn();
      lock.lock();
      if (stopping_) return;
    }
  }
}

// ---- ThreadedCluster --------------------------------------------------------

namespace {

/// Wraps the shared timer service so that a process's scheduled callbacks
/// run under that process's mutex (the kDelayed initiation timer calls back
/// into BasicProcess and must not race with message delivery).
class LockingTimerService final : public core::TimerService {
 public:
  LockingTimerService(core::TimerService& inner, std::mutex& mutex)
      : inner_(inner), mutex_(mutex) {}

  void schedule(SimTime delay, std::function<void()> fn) override {
    inner_.schedule(delay, [&m = mutex_, f = std::move(fn)] {
      std::scoped_lock lock(m);
      f();
    });
  }

 private:
  core::TimerService& inner_;
  std::mutex& mutex_;
};

}  // namespace

ThreadedCluster::ThreadedCluster(net::Transport& transport, std::uint32_t n,
                                 core::Options options)
    : transport_(transport) {
  cells_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    cells_.push_back(std::make_unique<Cell>());
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const ProcessId id{i};
    Cell& cell = *cells_[i];
    cell.timer_adapter =
        std::make_unique<LockingTimerService>(timers_, cell.mutex);
    cell.process = std::make_unique<core::BasicProcess>(
        id,
        [this, id](ProcessId to, BytesView payload) {
          transport_.send(id.value(), to.value(), payload);
        },
        options, cell.timer_adapter.get());
    cell.process->set_deadlock_callback([this, id](const ProbeTag&) {
      {
        std::scoped_lock lock(detect_mutex_);
        detections_.push_back(id);
      }
      detect_cv_.notify_all();
    });
    const auto node = transport_.add_node(
        [this, i](net::NodeId from, const Bytes& payload) {
          Cell& c = *cells_[i];
          std::scoped_lock lock(c.mutex);
          const auto st = c.process->on_message(ProcessId{from}, payload);
          if (!st.ok()) {
            // Malformed frame from a peer: drop (logged by caller layers).
          }
        });
    if (node != i) {
      throw std::logic_error("ThreadedCluster: transport already had nodes");
    }
  }
  transport_.start();
}

ThreadedCluster::~ThreadedCluster() { stop(); }

void ThreadedCluster::stop() {
  {
    std::scoped_lock lock(detect_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  timers_.stop();
  transport_.stop();
}

void ThreadedCluster::request(ProcessId from, ProcessId to) {
  Cell& cell = *cells_.at(from.value());
  std::scoped_lock lock(cell.mutex);
  cell.process->send_request(to);
}

void ThreadedCluster::reply(ProcessId from, ProcessId to) {
  Cell& cell = *cells_.at(from.value());
  std::scoped_lock lock(cell.mutex);
  cell.process->send_reply(to);
}

std::optional<ProbeTag> ThreadedCluster::initiate(ProcessId p) {
  Cell& cell = *cells_.at(p.value());
  std::scoped_lock lock(cell.mutex);
  return cell.process->initiate();
}

bool ThreadedCluster::deadlocked(ProcessId p) const {
  const Cell& cell = *cells_.at(p.value());
  std::scoped_lock lock(cell.mutex);
  return cell.process->deadlocked();
}

bool ThreadedCluster::declared(ProcessId p) const {
  const Cell& cell = *cells_.at(p.value());
  std::scoped_lock lock(cell.mutex);
  return cell.process->declared_deadlock();
}

core::ProcessStats ThreadedCluster::stats(ProcessId p) const {
  const Cell& cell = *cells_.at(p.value());
  std::scoped_lock lock(cell.mutex);
  return cell.process->stats();
}

std::set<graph::Edge> ThreadedCluster::wfgd_edges(ProcessId p) const {
  const Cell& cell = *cells_.at(p.value());
  std::scoped_lock lock(cell.mutex);
  const auto& edges = cell.process->wfgd_edges();
  return {edges.begin(), edges.end()};
}

std::optional<ProcessId> ThreadedCluster::wait_for_detection(
    std::chrono::milliseconds max) {
  std::unique_lock lock(detect_mutex_);
  detect_cv_.wait_for(lock, max, [&] { return !detections_.empty(); });
  if (detections_.empty()) return std::nullopt;
  return detections_.front();
}

std::size_t ThreadedCluster::detection_count() const {
  std::scoped_lock lock(detect_mutex_);
  return detections_.size();
}

}  // namespace cmh::runtime
