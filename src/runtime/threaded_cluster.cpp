#include "runtime/threaded_cluster.h"

#include <stdexcept>

namespace cmh::runtime {

// ---- ThreadTimerService -----------------------------------------------------

ThreadTimerService::ThreadTimerService() : worker_([this] { loop(); }) {}

ThreadTimerService::~ThreadTimerService() { stop(); }

void ThreadTimerService::stop() {
  {
    const MutexLock lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void ThreadTimerService::schedule(SimTime delay, std::function<void()> fn) {
  const auto at = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(delay.micros);
  {
    const MutexLock lock(mutex_);
    if (stopping_) return;
    pending_.emplace(at, std::move(fn));
  }
  cv_.notify_all();
}

void ThreadTimerService::loop() {
  // Due callbacks are moved out under the lock and fired outside it: a
  // callback may call schedule() (which takes mutex_) or run arbitrarily
  // long, and must not do either while holding the scheduler lock.
  std::vector<std::function<void()>> due;
  for (;;) {
    {
      const MutexLock lock(mutex_);
      for (;;) {
        if (stopping_) return;
        if (pending_.empty()) {
          cv_.wait(mutex_, [&] {
            mutex_.assert_held();  // held by CondVar::wait's contract
            return stopping_ || !pending_.empty();
          });
          continue;
        }
        const auto next = pending_.begin()->first;
        if (std::chrono::steady_clock::now() >= next) break;
        cv_.wait_until(mutex_, next, [&] {
          mutex_.assert_held();  // held by CondVar::wait's contract
          // Wake early on stop or when schedule() inserts an earlier
          // deadline; either way the outer loop re-evaluates.
          return stopping_ || pending_.empty() ||
                 pending_.begin()->first < next;
        });
      }
      const auto now = std::chrono::steady_clock::now();
      while (!pending_.empty() && pending_.begin()->first <= now) {
        due.push_back(std::move(pending_.begin()->second));
        pending_.erase(pending_.begin());
      }
    }
    for (auto& fn : due) fn();
    due.clear();
  }
}

// ---- ThreadedCluster --------------------------------------------------------

namespace {

/// Wraps the shared timer service so that a process's scheduled callbacks
/// run under that process's mutex (the kDelayed initiation timer calls back
/// into BasicProcess and must not race with message delivery).
class LockingTimerService final : public core::TimerService {
 public:
  LockingTimerService(core::TimerService& inner, Mutex& mutex)
      : inner_(inner), mutex_(mutex) {}

  void schedule(SimTime delay, std::function<void()> fn) override {
    inner_.schedule(delay, [&m = mutex_, f = std::move(fn)] {
      const MutexLock lock(m);
      f();
    });
  }

 private:
  core::TimerService& inner_;
  Mutex& mutex_;
};

}  // namespace

ThreadedCluster::ThreadedCluster(net::Transport& transport, std::uint32_t n,
                                 core::Options options)
    : transport_(transport) {
  cells_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    cells_.push_back(std::make_unique<Cell>());
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const ProcessId id{i};
    Cell& cell = *cells_[i];
    cell.timer_adapter =
        std::make_unique<LockingTimerService>(timers_, cell.mutex);
    // Built and wired while still thread-local, then published into the
    // cell; the pointee is only ever dereferenced under cell.mutex once the
    // transport starts.
    auto process = std::make_unique<core::BasicProcess>(
        id,
        [this, id](ProcessId to, BytesView payload) {
          transport_.send(id.value(), to.value(), payload);
        },
        options, cell.timer_adapter.get());
    process->set_deadlock_callback([this, id](const ProbeTag&) {
      {
        const MutexLock lock(detect_mutex_);
        detections_.push_back(id);
      }
      detect_cv_.notify_all();
    });
    cell.process = std::move(process);
    const auto node = transport_.add_node(
        [this, i](net::NodeId from, const Bytes& payload) {
          Cell& c = *cells_[i];
          const MutexLock lock(c.mutex);
          const auto st = c.process->on_message(ProcessId{from}, payload);
          if (!st.ok()) {
            // Malformed frame from a peer: drop (logged by caller layers).
          }
        });
    if (node != i) {
      throw std::logic_error("ThreadedCluster: transport already had nodes");
    }
  }
  transport_.start();
}

ThreadedCluster::~ThreadedCluster() { stop(); }

void ThreadedCluster::stop() {
  {
    const MutexLock lock(detect_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  timers_.stop();
  transport_.stop();
}

void ThreadedCluster::request(ProcessId from, ProcessId to) {
  Cell& cell = *cells_.at(from.value());
  const MutexLock lock(cell.mutex);
  cell.process->send_request(to);
}

void ThreadedCluster::reply(ProcessId from, ProcessId to) {
  Cell& cell = *cells_.at(from.value());
  const MutexLock lock(cell.mutex);
  cell.process->send_reply(to);
}

std::optional<ProbeTag> ThreadedCluster::initiate(ProcessId p) {
  Cell& cell = *cells_.at(p.value());
  const MutexLock lock(cell.mutex);
  return cell.process->initiate();
}

bool ThreadedCluster::deadlocked(ProcessId p) const {
  const Cell& cell = *cells_.at(p.value());
  const MutexLock lock(cell.mutex);
  return cell.process->deadlocked();
}

bool ThreadedCluster::declared(ProcessId p) const {
  const Cell& cell = *cells_.at(p.value());
  const MutexLock lock(cell.mutex);
  return cell.process->declared_deadlock();
}

core::ProcessStats ThreadedCluster::stats(ProcessId p) const {
  const Cell& cell = *cells_.at(p.value());
  const MutexLock lock(cell.mutex);
  return cell.process->stats();
}

std::set<graph::Edge> ThreadedCluster::wfgd_edges(ProcessId p) const {
  const Cell& cell = *cells_.at(p.value());
  const MutexLock lock(cell.mutex);
  const auto& edges = cell.process->wfgd_edges();
  return {edges.begin(), edges.end()};
}

std::optional<ProcessId> ThreadedCluster::wait_for_detection(
    std::chrono::milliseconds max) {
  const MutexLock lock(detect_mutex_);
  detect_cv_.wait_for(detect_mutex_, max, [&] {
    detect_mutex_.assert_held();  // held by CondVar::wait's contract
    return !detections_.empty();
  });
  if (detections_.empty()) return std::nullopt;
  return detections_.front();
}

std::size_t ThreadedCluster::detection_count() const {
  const MutexLock lock(detect_mutex_);
  return detections_.size();
}

}  // namespace cmh::runtime
