#include "runtime/or_cluster.h"

#include <deque>
#include <stdexcept>

namespace cmh::runtime {

OrCluster::OrCluster(std::uint32_t n, std::uint64_t seed,
                     sim::DelayModel delays, bool initiate_on_block)
    : sim_(seed, delays) {
  processes_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) sim_.add_node({});
  for (std::uint32_t i = 0; i < n; ++i) {
    const ProcessId id{i};
    auto process = std::make_unique<core::OrProcess>(
        id,
        [this, id](ProcessId to, BytesView payload) {
          sim_.send(id.value(), to.value(), payload);
        },
        initiate_on_block);
    process->set_deadlock_callback([this, id](const ProbeTag& tag) {
      const OrDetection d{tag, id, sim_.now()};
      detections_.push_back(d);
      if (on_detection_) on_detection_(d);
    });
    processes_.push_back(std::move(process));
    sim_.set_handler(i, [this, i](sim::NodeId from, const Bytes& payload) {
      const auto st =
          processes_[i]->on_message(ProcessId{from}, payload);
      if (!st.ok()) {
        throw std::logic_error("OrCluster: bad frame: " + st.to_string());
      }
    });
  }
}

void OrCluster::block(ProcessId p, const std::set<ProcessId>& dependents) {
  process(p).block_on(dependents);
}

void OrCluster::signal(ProcessId p, ProcessId to) { process(p).signal(to); }

bool OrCluster::oracle_deadlocked(ProcessId p) const {
  const auto& root = *processes_.at(p.value());
  if (!root.blocked()) return false;
  std::set<ProcessId> seen{p};
  std::deque<ProcessId> frontier{p};
  while (!frontier.empty()) {
    const ProcessId u = frontier.front();
    frontier.pop_front();
    const auto& proc = *processes_.at(u.value());
    if (!proc.blocked()) return false;  // an active helper is reachable
    for (const ProcessId v : *proc.waits_on()) {
      if (seen.insert(v).second) frontier.push_back(v);
    }
  }
  return true;  // everything reachable is blocked
}

std::vector<ProcessId> OrCluster::oracle_deadlocked_set() const {
  std::vector<ProcessId> result;
  for (std::uint32_t i = 0; i < processes_.size(); ++i) {
    if (oracle_deadlocked(ProcessId{i})) result.push_back(ProcessId{i});
  }
  return result;
}

core::OrStats OrCluster::total_stats() const {
  core::OrStats total;
  for (const auto& p : processes_) {
    const auto& s = p->stats();
    total.queries_sent += s.queries_sent;
    total.queries_received += s.queries_received;
    total.replies_sent += s.replies_sent;
    total.replies_received += s.replies_received;
    total.signals_sent += s.signals_sent;
    total.computations_initiated += s.computations_initiated;
    total.deadlocks_declared += s.deadlocks_declared;
  }
  return total;
}

}  // namespace cmh::runtime
