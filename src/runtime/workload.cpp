#include "runtime/workload.h"

#include <stdexcept>

namespace cmh::runtime {

RandomWorkload::RandomWorkload(SimCluster& cluster, WorkloadConfig config,
                               std::uint64_t seed)
    : cluster_(cluster), config_(config), rng_(seed) {}

void RandomWorkload::start() {
  cluster_.add_delivery_hook(
      [this](ProcessId to, ProcessId from, const core::Message& msg) {
        if (std::holds_alternative<core::RequestMsg>(msg)) {
          maybe_serve(to);
        } else if (std::holds_alternative<core::ReplyMsg>(msg)) {
          // `to` may have just become active; serve its queue.
          (void)from;
          maybe_serve(to);
        }
      });
  schedule_next_arrival();
}

void RandomWorkload::schedule_next_arrival() {
  if (cluster_.simulator().now() >= config_.issue_until) return;
  // Uniform in [0.5, 1.5) x mean keeps determinism simple and bounded.
  const auto gap = SimTime::us(static_cast<std::int64_t>(
      static_cast<double>(config_.mean_interarrival.micros) *
      (0.5 + rng_.uniform())));
  cluster_.simulator().schedule(gap, [this] {
    issue_random_request();
    schedule_next_arrival();
  });
}

void RandomWorkload::issue_random_request() {
  const std::uint32_t n = cluster_.size();
  for (int attempt = 0; attempt < 20; ++attempt) {
    ProcessId from{static_cast<std::uint32_t>(rng_.below(n))};
    ProcessId to{static_cast<std::uint32_t>(rng_.below(n))};
    if (from == to) continue;
    if (config_.ordered_requests && to < from) std::swap(from, to);
    auto& p = cluster_.process(from);
    if (p.waits_for().size() >= config_.max_outstanding) continue;
    if (!config_.blocked_may_request && p.blocked()) continue;
    if (p.waits_for().contains(to)) continue;
    if (p.deadlocked()) continue;
    cluster_.request(from, to);
    ++requests_issued_;
    // A dark cycle can only be completed by an edge creation; check here so
    // first_deadlock_at_ is exact.
    if (!first_deadlock_at_ && cluster_.oracle().on_dark_cycle(from)) {
      first_deadlock_at_ = cluster_.simulator().now();
    }
    return;
  }
}

void RandomWorkload::maybe_serve(ProcessId server) {
  auto& p = cluster_.process(server);
  if (p.blocked()) return;  // will be retried when it becomes active
  for (const ProcessId client : p.held_requests()) {
    const auto service = SimTime::us(static_cast<std::int64_t>(
        static_cast<double>(config_.mean_service.micros) *
        (0.5 + rng_.uniform())));
    cluster_.simulator().schedule(
        service, [this, server, client] { try_reply(server, client); });
  }
}

void RandomWorkload::try_reply(ProcessId server, ProcessId client) {
  auto& p = cluster_.process(server);
  if (p.blocked()) return;  // became blocked meanwhile; retried on activation
  if (!p.held_requests().contains(client)) return;  // already served
  cluster_.reply(server, client);
}

void issue_scenario(SimCluster& cluster, const graph::Scenario& scenario) {
  for (const graph::Op& op : scenario.script) {
    switch (op.kind) {
      case graph::OpKind::kCreate:
        cluster.request(op.edge.from, op.edge.to);
        break;
      case graph::OpKind::kBlacken:
        break;  // happens on delivery
      case graph::OpKind::kWhiten:
      case graph::OpKind::kRemove:
        throw std::invalid_argument(
            "issue_scenario: scenario contains reply ops");
    }
  }
}

}  // namespace cmh::runtime
