// OrCluster -- hosts OR-model processes (see core/or_model.h) on the
// discrete-event simulator, with a global-knowledge oracle: a blocked
// process is deadlocked iff no active process is reachable through
// dependent sets.
#pragma once

#include <memory>
#include <vector>

#include "core/or_model.h"
#include "sim/simulator.h"

namespace cmh::runtime {

struct OrDetection {
  ProbeTag tag;
  ProcessId process;
  SimTime at;
};

class OrCluster {
 public:
  OrCluster(std::uint32_t n, std::uint64_t seed = 1,
            sim::DelayModel delays = {}, bool initiate_on_block = true);

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(processes_.size());
  }
  [[nodiscard]] core::OrProcess& process(ProcessId id) {
    return *processes_.at(id.value());
  }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Blocks p on `dependents` (drives the underlying computation).
  void block(ProcessId p, const std::set<ProcessId>& dependents);

  /// p (active) signals `to`, releasing it if blocked.
  void signal(ProcessId p, ProcessId to);

  [[nodiscard]] const std::vector<OrDetection>& detections() const {
    return detections_;
  }

  using DetectionCallback = std::function<void(const OrDetection&)>;
  void set_detection_callback(DetectionCallback cb) {
    on_detection_ = std::move(cb);
  }

  /// Ground truth: p is deadlocked iff it is blocked and every process
  /// reachable through dependent sets is blocked too (OR semantics: one
  /// active helper anywhere suffices to eventually release p).
  [[nodiscard]] bool oracle_deadlocked(ProcessId p) const;

  [[nodiscard]] std::vector<ProcessId> oracle_deadlocked_set() const;

  [[nodiscard]] core::OrStats total_stats() const;

  void run() { sim_.run(); }

 private:
  sim::Simulator sim_;
  std::vector<std::unique_ptr<core::OrProcess>> processes_;
  std::vector<OrDetection> detections_;
  DetectionCallback on_detection_;
};

}  // namespace cmh::runtime
