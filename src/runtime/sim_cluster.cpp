#include "runtime/sim_cluster.h"

#include <stdexcept>

namespace cmh::runtime {

SimCluster::SimCluster(std::uint32_t n, core::Options options,
                       std::uint64_t seed, sim::DelayModel delays)
    : SimCluster(n, options,
                 SimClusterConfig{.seed = seed, .delays = delays}) {}

SimCluster::SimCluster(std::uint32_t n, core::Options options,
                       const SimClusterConfig& config)
    : sim_(config.seed, config.delays, config.shards),
      timers_(sim_),
      track_oracle_(config.track_oracle) {
  if (track_oracle_ && config.shards > 1) {
    throw std::invalid_argument(
        "SimCluster: the oracle graph is global mutable state and cannot be "
        "tracked while shard workers run handlers concurrently; construct "
        "with track_oracle = false");
  }
  if (config.audit) {
    if (config.shards > 1) {
      throw std::invalid_argument(
          "SimCluster: the invariant auditor is global mutable state and "
          "cannot observe concurrent shard workers; construct with "
          "audit = false");
    }
    // QRP1 ("every dark cycle has a declarer") is only sound when edge
    // creation guarantees a probe computation; manual initiation makes
    // missed cycles the harness's choice, not a protocol bug.
    auditor_ = std::make_unique<check::InvariantAuditor>(check::AuditorConfig{
        .abort_on_violation = config.abort_on_violation,
        .check_qrp1 = options.initiation != core::InitiationMode::kManual});
    audit_adapter_ = std::make_unique<AuditAdapter>(*auditor_);
    sim_.set_observer(audit_adapter_.get());
  }
  processes_.reserve(n);
  // Node ids equal process ids by construction.
  for (std::uint32_t i = 0; i < n; ++i) sim_.add_node({});
  for (std::uint32_t i = 0; i < n; ++i) {
    const ProcessId id{i};
    auto process = std::make_unique<core::BasicProcess>(
        id,
        [this, id](ProcessId to, BytesView payload) {
          sim_.send(id.value(), to.value(), payload);
        },
        options, &timers_);
    process->set_deadlock_callback([this, id](const ProbeTag& tag) {
      const DeadlockEvent event{tag, id, sim_.now()};
      // QRP2 is checked at this exact instant: the shadow graph still
      // reflects the moment of declaration.
      if (auditor_) auditor_->on_declare(id, event.at);
      {
        const MutexLock lock(detections_mutex_);
        detections_.push_back(event);
        detection_count_.store(detections_.size(), std::memory_order_release);
      }
      if (on_detection_) on_detection_(event);
    });
    processes_.push_back(std::move(process));
    sim_.set_handler(i, [this, id](sim::NodeId from, const Bytes& payload) {
      on_delivery(id, ProcessId{from}, payload);
    });
  }
}

void SimCluster::on_delivery(ProcessId to, ProcessId from,
                             const Bytes& payload) {
  if (!track_oracle_) {
    // Perf path (and the only shard-safe path): no decode, no global graph,
    // no hooks -- just the process.  Runs concurrently across shards.
    const auto st = processes_[to.value()]->on_message(from, payload);
    if (!st.ok()) throw std::logic_error("on_message: " + st.to_string());
    if (auditor_) {
      auditor_->check_local_view(*processes_[to.value()], sim_.now());
    }
    return;
  }
  // Oracle transitions happen at delivery instants (G2, G4); decode first to
  // classify, then hand the same bytes to the process.
  auto decoded = core::decode(payload);
  if (!decoded.ok()) {
    throw std::logic_error("SimCluster: undecodable payload: " +
                           decoded.status().to_string());
  }
  if (std::holds_alternative<core::RequestMsg>(*decoded)) {
    const auto st = oracle_.blacken(from, to);
    if (!st.ok()) throw std::logic_error("oracle blacken: " + st.to_string());
  } else if (std::holds_alternative<core::ReplyMsg>(*decoded)) {
    const auto st = oracle_.remove(to, from);
    if (!st.ok()) throw std::logic_error("oracle remove: " + st.to_string());
  }
  const auto st = processes_.at(to.value())->on_message(from, payload);
  if (!st.ok()) throw std::logic_error("on_message: " + st.to_string());
  // P3: the receiver's local view must equal the shadow graph's projection
  // now that it has folded in this delivery.
  if (auditor_) {
    auditor_->check_local_view(*processes_[to.value()], sim_.now());
  }
  for (const DeliveryHook& hook : hooks_) hook(to, from, *decoded);
}

void SimCluster::request(ProcessId from, ProcessId to) {
  if (track_oracle_) {
    const auto st = oracle_.create(from, to);
    if (!st.ok()) throw std::logic_error("oracle create: " + st.to_string());
  }
  process(from).send_request(to);
}

void SimCluster::reply(ProcessId from, ProcessId to) {
  // Edge (to, from) whitens when p_from sends the reply (G3).
  if (track_oracle_) {
    const auto st = oracle_.whiten(to, from);
    if (!st.ok()) throw std::logic_error("oracle whiten: " + st.to_string());
  }
  process(from).send_reply(to);
}

void SimCluster::add_delivery_hook(DeliveryHook hook) {
  if (!track_oracle_) {
    throw std::logic_error(
        "SimCluster::add_delivery_hook: the oracle-free delivery path does "
        "not decode messages, so hooks would never fire");
  }
  hooks_.push_back(std::move(hook));
}

core::ProcessStats SimCluster::total_stats() const {
  core::ProcessStats total;
  for (const auto& p : processes_) {
    const auto& s = p->stats();
    total.requests_sent += s.requests_sent;
    total.replies_sent += s.replies_sent;
    total.probes_sent += s.probes_sent;
    total.probes_received += s.probes_received;
    total.meaningful_probes += s.meaningful_probes;
    total.computations_initiated += s.computations_initiated;
    total.deadlocks_declared += s.deadlocks_declared;
    total.wfgd_messages_sent += s.wfgd_messages_sent;
    total.wfgd_messages_received += s.wfgd_messages_received;
  }
  return total;
}

SimTime SimCluster::run() {
  const SimTime t = sim_.run();
  if (auditor_) auditor_->finalize(t);
  return t;
}

bool SimCluster::run_until_detection() {
  const bool found =
      sim_.run_while_pending([this] { return detection_count() > 0; });
  // An early stop leaves frames legitimately in flight; only a drained
  // transport is quiescent enough for the P4/QRP1 oracles.
  if (auditor_ && sim_.idle()) auditor_->finalize(sim_.now());
  return found;
}

}  // namespace cmh::runtime
