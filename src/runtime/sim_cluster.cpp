#include "runtime/sim_cluster.h"

#include <stdexcept>

namespace cmh::runtime {

SimCluster::SimCluster(std::uint32_t n, core::Options options,
                       std::uint64_t seed, sim::DelayModel delays)
    : sim_(seed, delays), timers_(sim_) {
  processes_.reserve(n);
  // Node ids equal process ids by construction.
  for (std::uint32_t i = 0; i < n; ++i) sim_.add_node({});
  for (std::uint32_t i = 0; i < n; ++i) {
    const ProcessId id{i};
    auto process = std::make_unique<core::BasicProcess>(
        id,
        [this, id](ProcessId to, BytesView payload) {
          sim_.send(id.value(), to.value(), payload);
        },
        options, &timers_);
    process->set_deadlock_callback([this, id](const ProbeTag& tag) {
      const DeadlockEvent event{tag, id, sim_.now()};
      detections_.push_back(event);
      if (on_detection_) on_detection_(event);
    });
    processes_.push_back(std::move(process));
    sim_.set_handler(i, [this, id](sim::NodeId from, const Bytes& payload) {
      on_delivery(id, ProcessId{from}, payload);
    });
  }
}

void SimCluster::on_delivery(ProcessId to, ProcessId from,
                             const Bytes& payload) {
  // Oracle transitions happen at delivery instants (G2, G4); decode first to
  // classify, then hand the same bytes to the process.
  auto decoded = core::decode(payload);
  if (!decoded.ok()) {
    throw std::logic_error("SimCluster: undecodable payload: " +
                           decoded.status().to_string());
  }
  if (std::holds_alternative<core::RequestMsg>(*decoded)) {
    const auto st = oracle_.blacken(from, to);
    if (!st.ok()) throw std::logic_error("oracle blacken: " + st.to_string());
  } else if (std::holds_alternative<core::ReplyMsg>(*decoded)) {
    const auto st = oracle_.remove(to, from);
    if (!st.ok()) throw std::logic_error("oracle remove: " + st.to_string());
  }
  const auto st = processes_.at(to.value())->on_message(from, payload);
  if (!st.ok()) throw std::logic_error("on_message: " + st.to_string());
  for (const DeliveryHook& hook : hooks_) hook(to, from, *decoded);
}

void SimCluster::request(ProcessId from, ProcessId to) {
  const auto st = oracle_.create(from, to);
  if (!st.ok()) throw std::logic_error("oracle create: " + st.to_string());
  process(from).send_request(to);
}

void SimCluster::reply(ProcessId from, ProcessId to) {
  // Edge (to, from) whitens when p_from sends the reply (G3).
  const auto st = oracle_.whiten(to, from);
  if (!st.ok()) throw std::logic_error("oracle whiten: " + st.to_string());
  process(from).send_reply(to);
}

core::ProcessStats SimCluster::total_stats() const {
  core::ProcessStats total;
  for (const auto& p : processes_) {
    const auto& s = p->stats();
    total.requests_sent += s.requests_sent;
    total.replies_sent += s.replies_sent;
    total.probes_sent += s.probes_sent;
    total.probes_received += s.probes_received;
    total.meaningful_probes += s.meaningful_probes;
    total.computations_initiated += s.computations_initiated;
    total.deadlocks_declared += s.deadlocks_declared;
    total.wfgd_messages_sent += s.wfgd_messages_sent;
    total.wfgd_messages_received += s.wfgd_messages_received;
  }
  return total;
}

bool SimCluster::run_until_detection() {
  return sim_.run_while_pending([this] { return !detections_.empty(); });
}

}  // namespace cmh::runtime
