// ThreadedCluster -- hosts BasicProcess instances on a real (threaded)
// Transport: InMemoryTransport or TcpTransport.
//
// Each process is guarded by its own mutex; the transport's per-node
// delivery serialization plus this mutex give the paper's atomic-step
// property even when the application thread issues requests concurrently
// with message deliveries.
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/basic_process.h"
#include "net/transport.h"

namespace cmh::runtime {

/// TimerService driven by a dedicated scheduler thread (wall clock).
class ThreadTimerService final : public core::TimerService {
 public:
  ThreadTimerService();
  ~ThreadTimerService() override;

  ThreadTimerService(const ThreadTimerService&) = delete;
  ThreadTimerService& operator=(const ThreadTimerService&) = delete;

  void schedule(SimTime delay, std::function<void()> fn) override;
  void stop();

 private:
  void loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::multimap<std::chrono::steady_clock::time_point, std::function<void()>>
      pending_;
  bool stopping_{false};
  std::thread worker_;
};

class ThreadedCluster {
 public:
  /// The transport must be freshly constructed (no nodes yet) and outlive
  /// the cluster.  The cluster registers n nodes and starts the transport.
  ThreadedCluster(net::Transport& transport, std::uint32_t n,
                  core::Options options);
  ~ThreadedCluster();

  ThreadedCluster(const ThreadedCluster&) = delete;
  ThreadedCluster& operator=(const ThreadedCluster&) = delete;

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(cells_.size());
  }

  void request(ProcessId from, ProcessId to);
  void reply(ProcessId from, ProcessId to);
  std::optional<ProbeTag> initiate(ProcessId p);

  /// Thread-safe snapshot helpers.
  [[nodiscard]] bool deadlocked(ProcessId p) const;
  [[nodiscard]] bool declared(ProcessId p) const;
  [[nodiscard]] core::ProcessStats stats(ProcessId p) const;
  [[nodiscard]] std::set<graph::Edge> wfgd_edges(ProcessId p) const;

  /// Blocks until some process declares deadlock or the timeout elapses.
  /// Returns the declarer if any.
  std::optional<ProcessId> wait_for_detection(std::chrono::milliseconds max);

  /// Total declarations so far.
  [[nodiscard]] std::size_t detection_count() const;

  void stop();

 private:
  struct Cell {
    mutable std::mutex mutex;
    std::unique_ptr<core::TimerService> timer_adapter;
    std::unique_ptr<core::BasicProcess> process;
  };

  net::Transport& transport_;
  ThreadTimerService timers_;
  std::vector<std::unique_ptr<Cell>> cells_;

  mutable std::mutex detect_mutex_;
  std::condition_variable detect_cv_;
  std::vector<ProcessId> detections_;
  bool stopped_{false};
};

}  // namespace cmh::runtime
