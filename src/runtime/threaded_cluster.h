// ThreadedCluster -- hosts BasicProcess instances on a real (threaded)
// Transport: InMemoryTransport, the epoll TcpTransport, or
// BlockingTcpTransport.
//
// Each process is guarded by its own mutex; the transport's per-node
// delivery serialization plus this mutex give the paper's atomic-step
// property even when the application thread issues requests concurrently
// with message deliveries.
//
// Capability model (DESIGN.md section 7.2): Cell::mutex guards the hosted
// BasicProcess (every touch of the process happens under it, whether from
// the application thread, a transport deliverer, or a timer callback --
// LockingTimerService re-takes it around scheduled callbacks); detect_mutex_
// guards the detection log.  Lock order where they nest: Cell::mutex before
// detect_mutex_ (the deadlock callback runs inside on_message).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "core/basic_process.h"
#include "net/transport.h"

namespace cmh::runtime {

/// TimerService driven by a dedicated scheduler thread (wall clock).
class ThreadTimerService final : public core::TimerService {
 public:
  ThreadTimerService();
  ~ThreadTimerService() override;

  ThreadTimerService(const ThreadTimerService&) = delete;
  ThreadTimerService& operator=(const ThreadTimerService&) = delete;

  void schedule(SimTime delay, std::function<void()> fn) override;
  void stop();

 private:
  void loop();

  Mutex mutex_;
  CondVar cv_;
  std::multimap<std::chrono::steady_clock::time_point, std::function<void()>>
      pending_ CMH_GUARDED_BY(mutex_);
  bool stopping_ CMH_GUARDED_BY(mutex_){false};
  std::thread worker_;
};

class ThreadedCluster {
 public:
  /// The transport must be freshly constructed (no nodes yet) and outlive
  /// the cluster.  The cluster registers n nodes and starts the transport.
  ThreadedCluster(net::Transport& transport, std::uint32_t n,
                  core::Options options);
  ~ThreadedCluster();

  ThreadedCluster(const ThreadedCluster&) = delete;
  ThreadedCluster& operator=(const ThreadedCluster&) = delete;

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(cells_.size());
  }

  void request(ProcessId from, ProcessId to);
  void reply(ProcessId from, ProcessId to);
  std::optional<ProbeTag> initiate(ProcessId p);

  /// Thread-safe snapshot helpers.
  [[nodiscard]] bool deadlocked(ProcessId p) const;
  [[nodiscard]] bool declared(ProcessId p) const;
  [[nodiscard]] core::ProcessStats stats(ProcessId p) const;
  [[nodiscard]] std::set<graph::Edge> wfgd_edges(ProcessId p) const;

  /// Blocks until some process declares deadlock or the timeout elapses.
  /// Returns the declarer if any.
  std::optional<ProcessId> wait_for_detection(std::chrono::milliseconds max);

  /// Total declarations so far.
  [[nodiscard]] std::size_t detection_count() const;

  void stop();

 private:
  struct Cell {
    mutable Mutex mutex;
    std::unique_ptr<core::TimerService> timer_adapter;
    // The pointer is set once during construction (pre-concurrency); the
    // pointee is the per-process critical state.
    std::unique_ptr<core::BasicProcess> process CMH_PT_GUARDED_BY(mutex);
  };

  net::Transport& transport_;
  ThreadTimerService timers_;
  std::vector<std::unique_ptr<Cell>> cells_;

  mutable Mutex detect_mutex_;
  CondVar detect_cv_;
  std::vector<ProcessId> detections_ CMH_GUARDED_BY(detect_mutex_);
  bool stopped_ CMH_GUARDED_BY(detect_mutex_){false};
};

}  // namespace cmh::runtime
