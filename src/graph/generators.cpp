#include "graph/generators.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace cmh::graph {

namespace {

void push_dark_edge(Scenario& s, ProcessId from, ProcessId to) {
  s.script.push_back(Op{OpKind::kCreate, Edge{from, to}});
  s.script.push_back(Op{OpKind::kBlacken, Edge{from, to}});
}

}  // namespace

Scenario make_ring(std::uint32_t n, std::uint32_t cycle_len) {
  if (cycle_len < 2 || cycle_len > n) {
    throw std::invalid_argument("make_ring: need 2 <= cycle_len <= n");
  }
  Scenario s;
  s.n_processes = n;
  for (std::uint32_t i = 0; i < cycle_len; ++i) {
    const ProcessId from{i};
    const ProcessId to{(i + 1) % cycle_len};
    push_dark_edge(s, from, to);
    s.planted_cycle.push_back(from);
  }
  return s;
}

Scenario make_disjoint_rings(std::uint32_t n, std::uint32_t ring_len) {
  if (ring_len < 2 || ring_len > n) {
    throw std::invalid_argument("make_disjoint_rings: need 2 <= ring_len <= n");
  }
  Scenario s;
  s.n_processes = n;
  const std::uint32_t rings = n / ring_len;
  s.script.reserve(static_cast<std::size_t>(rings) * ring_len * 2);
  for (std::uint32_t j = 0; j < rings; ++j) {
    const std::uint32_t base = j * ring_len;
    for (std::uint32_t i = 0; i < ring_len; ++i) {
      push_dark_edge(s, ProcessId{base + i},
                     ProcessId{base + (i + 1) % ring_len});
    }
    s.planted_cycle.push_back(ProcessId{base});
  }
  return s;
}

Scenario make_ring_with_tails(std::uint32_t n, std::uint32_t cycle_len,
                              std::uint32_t extra_edges, std::uint64_t seed) {
  Scenario s = make_ring(n, cycle_len);
  Rng rng(seed);
  std::uint32_t added = 0;
  WaitForGraph g = replay(s, s.script.size());
  // Tails: off-cycle vertices wait (directly or transitively) on earlier
  // vertices; we draw from -> to with `to` any vertex and `from` off-cycle,
  // rejecting duplicates and self-loops.  Because every added edge leaves an
  // off-cycle vertex, no new cycle can form through it unless it targets a
  // vertex that reaches back -- which it cannot, since off-cycle vertices
  // gain no incoming edges from the cycle.
  std::uint32_t attempts = 0;
  while (added < extra_edges && attempts < extra_edges * 50 + 100) {
    ++attempts;
    if (n <= cycle_len) break;
    const ProcessId from{
        cycle_len + static_cast<std::uint32_t>(rng.below(n - cycle_len))};
    const ProcessId to{static_cast<std::uint32_t>(rng.below(n))};
    if (from == to || g.has_edge(from, to)) continue;
    // Only allow edges that keep the off-cycle part acyclic: from must have
    // a larger raw id than any off-cycle target.
    if (to.value() >= cycle_len && to.value() >= from.value()) continue;
    if (!g.create(from, to).ok()) continue;
    if (!g.blacken(from, to).ok()) throw std::logic_error("tails: blacken");
    push_dark_edge(s, from, to);
    ++added;
  }
  return s;
}

Scenario make_acyclic(std::uint32_t n, std::uint32_t edges,
                      std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("make_acyclic: need n >= 2");
  Scenario s;
  s.n_processes = n;
  Rng rng(seed);

  // Random topological order; all edges point forward in it.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  for (std::uint32_t i = n - 1; i > 0; --i) {
    std::swap(order[i], order[rng.below(i + 1)]);
  }

  WaitForGraph g;
  std::uint32_t added = 0;
  std::uint32_t attempts = 0;
  while (added < edges && attempts < edges * 50 + 100) {
    ++attempts;
    const std::uint32_t a = static_cast<std::uint32_t>(rng.below(n));
    const std::uint32_t b = static_cast<std::uint32_t>(rng.below(n));
    if (a == b) continue;
    const auto [lo, hi] = std::minmax(a, b);
    const ProcessId from{order[lo]};
    const ProcessId to{order[hi]};
    if (g.has_edge(from, to)) continue;
    if (!g.create(from, to).ok()) continue;
    if (!g.blacken(from, to).ok()) throw std::logic_error("acyclic: blacken");
    push_dark_edge(s, from, to);
    ++added;
  }
  return s;
}

Scenario make_random_walk(std::uint32_t n, std::uint32_t steps,
                          std::uint64_t seed, double create_bias) {
  if (n < 2) throw std::invalid_argument("make_random_walk: need n >= 2");
  Scenario s;
  s.n_processes = n;
  Rng rng(seed);
  WaitForGraph g;

  for (std::uint32_t step = 0; step < steps; ++step) {
    // Gather legal moves of each kind, then pick.
    const auto edges = g.edges();
    std::vector<Op> legal;
    for (const Edge& e : edges) {
      switch (*g.color(e.from, e.to)) {
        case EdgeColor::kGrey:
          legal.push_back(Op{OpKind::kBlacken, e});
          break;
        case EdgeColor::kBlack:
          if (!g.has_outgoing(e.to)) legal.push_back(Op{OpKind::kWhiten, e});
          break;
        case EdgeColor::kWhite:
          legal.push_back(Op{OpKind::kRemove, e});
          break;
      }
    }

    const bool try_create = legal.empty() || rng.chance(create_bias);
    bool created = false;
    if (try_create) {
      for (int attempt = 0; attempt < 20 && !created; ++attempt) {
        const ProcessId from{static_cast<std::uint32_t>(rng.below(n))};
        const ProcessId to{static_cast<std::uint32_t>(rng.below(n))};
        if (from == to || g.has_edge(from, to)) continue;
        if (g.create(from, to).ok()) {
          s.script.push_back(Op{OpKind::kCreate, Edge{from, to}});
          created = true;
        }
      }
    }
    if (!created) {
      if (legal.empty()) continue;
      const Op op = legal[rng.below(legal.size())];
      Status st;
      switch (op.kind) {
        case OpKind::kBlacken: st = g.blacken(op.edge.from, op.edge.to); break;
        case OpKind::kWhiten: st = g.whiten(op.edge.from, op.edge.to); break;
        case OpKind::kRemove: st = g.remove(op.edge.from, op.edge.to); break;
        case OpKind::kCreate: break;  // unreachable
      }
      if (!st.ok()) throw std::logic_error("random_walk: illegal move");
      s.script.push_back(op);
    }
  }
  return s;
}

WaitForGraph replay(const Scenario& scenario, std::size_t upto) {
  WaitForGraph g;
  if (upto > scenario.script.size()) {
    throw std::out_of_range("replay: prefix exceeds script length");
  }
  for (std::size_t i = 0; i < upto; ++i) {
    const Op& op = scenario.script[i];
    Status st;
    switch (op.kind) {
      case OpKind::kCreate: st = g.create(op.edge.from, op.edge.to); break;
      case OpKind::kBlacken: st = g.blacken(op.edge.from, op.edge.to); break;
      case OpKind::kWhiten: st = g.whiten(op.edge.from, op.edge.to); break;
      case OpKind::kRemove: st = g.remove(op.edge.from, op.edge.to); break;
    }
    if (!st.ok()) {
      throw std::logic_error("replay: axiom violation in script: " +
                             st.to_string());
    }
  }
  return g;
}

}  // namespace cmh::graph
