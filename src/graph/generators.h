// Synthetic wait-for-graph scenario generators.
//
// The paper has no workload section; these generators stand in for the
// production traces a DDB deployment would produce (see DESIGN.md,
// substitutions).  Each generator emits a *script* of axiom-respecting edge
// transitions so the same scenario can be replayed against the global graph
// oracle and against the distributed detector.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "graph/wait_for_graph.h"

namespace cmh::graph {

enum class OpKind : std::uint8_t { kCreate, kBlacken, kWhiten, kRemove };

/// One edge-color transition in a scenario script.
struct Op {
  OpKind kind;
  Edge edge;
};

/// A replayable scenario: processes [0, n_processes) and a transition script.
struct Scenario {
  std::uint32_t n_processes{0};
  std::vector<Op> script;
  /// Vertices the generator arranged to end up on a dark cycle (may be
  /// empty).  Oracle checks use the graph itself; this is a convenience.
  std::vector<ProcessId> planted_cycle;
};

/// A simple ring deadlock: p0 -> p1 -> ... -> p_{L-1} -> p0, all edges
/// created then blackened, embedded among `n` processes total.
[[nodiscard]] Scenario make_ring(std::uint32_t n, std::uint32_t cycle_len);

/// Many independent ring deadlocks tiling [0, n): ring j occupies the
/// contiguous id block [j*ring_len, (j+1)*ring_len); leftover ids idle.
/// Contiguous blocks align with the sharded simulator's partition, so a
/// K-shard run keeps each deadlock cycle (mostly) shard-local -- the
/// workload shape for parallel-engine scaling sweeps.  The planted_cycle
/// lists every ring's head vertex.
[[nodiscard]] Scenario make_disjoint_rings(std::uint32_t n,
                                           std::uint32_t ring_len);

/// Ring deadlock plus `extra_edges` additional dark edges from random
/// off-cycle vertices toward random vertices (attached trees / chains that
/// transitively wait on the cycle), as in a realistic blocked system.
[[nodiscard]] Scenario make_ring_with_tails(std::uint32_t n,
                                            std::uint32_t cycle_len,
                                            std::uint32_t extra_edges,
                                            std::uint64_t seed);

/// Random acyclic waiting (no deadlock): `edges` dark edges obeying a random
/// topological order, so no cycle can form.  Used for false-positive tests.
[[nodiscard]] Scenario make_acyclic(std::uint32_t n, std::uint32_t edges,
                                    std::uint64_t seed);

/// Fully random transition script: at each step pick a random legal
/// transition (create/blacken/whiten/remove) according to the axioms.
/// Deadlocks may or may not arise; tests use the oracle for ground truth.
[[nodiscard]] Scenario make_random_walk(std::uint32_t n, std::uint32_t steps,
                                        std::uint64_t seed,
                                        double create_bias = 0.5);

/// Replays a script prefix [0, upto) into a fresh graph (throws on any
/// axiom violation -- generator bugs must be loud).
[[nodiscard]] WaitForGraph replay(const Scenario& scenario, std::size_t upto);

}  // namespace cmh::graph
