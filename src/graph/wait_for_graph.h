// Colored wait-for graph -- the paper's basic-model state (section 2.2).
//
// Edge (v_i, v_j) means p_i sent a request to p_j and has not yet received
// the reply.  Colors:
//   grey  -- request in flight (sent, not yet received)
//   black -- request received, reply not yet sent
//   white -- reply in flight (sent, not yet received)
// Transitions enforce the graph axioms G1-G4; violating calls return a
// failed-precondition Status so tests can assert axiom enforcement.
//
// This class is the *global* view: tests and oracles use it as ground truth.
// Algorithm code only ever sees the local projections permitted by P3.
#pragma once

#include <functional>
#include <optional>
#include <ostream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace cmh::graph {

enum class EdgeColor : std::uint8_t { kGrey, kBlack, kWhite };

[[nodiscard]] constexpr const char* to_string(EdgeColor c) {
  switch (c) {
    case EdgeColor::kGrey: return "grey";
    case EdgeColor::kBlack: return "black";
    case EdgeColor::kWhite: return "white";
  }
  return "?";
}

/// A dark edge is grey or black; dark cycles persist forever (section 2.4).
[[nodiscard]] constexpr bool is_dark(EdgeColor c) {
  return c != EdgeColor::kWhite;
}

struct Edge {
  ProcessId from;
  ProcessId to;

  friend constexpr auto operator<=>(const Edge&, const Edge&) = default;

  friend std::ostream& operator<<(std::ostream& os, const Edge& e) {
    return os << '(' << e.from << "->" << e.to << ')';
  }
};

}  // namespace cmh::graph

namespace std {
template <>
struct hash<cmh::graph::Edge> {
  size_t operator()(const cmh::graph::Edge& e) const noexcept {
    const auto h1 = std::hash<cmh::ProcessId>{}(e.from);
    const auto h2 = std::hash<cmh::ProcessId>{}(e.to);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};
}  // namespace std

namespace cmh::graph {

class WaitForGraph {
 public:
  /// G1 (creation): adds grey edge (from, to); fails if the edge exists.
  Status create(ProcessId from, ProcessId to);

  /// G2 (blackening): grey -> black; fails unless the edge is grey.
  Status blacken(ProcessId from, ProcessId to);

  /// G3 (whitening): black -> white; fails unless the edge is black and
  /// `to` has no outgoing edges (only active processes may reply).
  Status whiten(ProcessId from, ProcessId to);

  /// G4 (deletion): removes the edge; fails unless it is white.
  Status remove(ProcessId from, ProcessId to);

  // ---- queries -----------------------------------------------------------

  [[nodiscard]] bool has_edge(ProcessId from, ProcessId to) const;
  [[nodiscard]] std::optional<EdgeColor> color(ProcessId from,
                                               ProcessId to) const;

  /// All successors of v (any color), in insertion-independent sorted order.
  [[nodiscard]] std::vector<ProcessId> successors(ProcessId v) const;

  /// All predecessors u such that edge (u, v) exists with the given color.
  [[nodiscard]] std::vector<ProcessId> predecessors(
      ProcessId v, std::optional<EdgeColor> filter = std::nullopt) const;

  [[nodiscard]] bool has_outgoing(ProcessId v) const;

  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  [[nodiscard]] std::vector<Edge> edges(
      std::optional<EdgeColor> filter = std::nullopt) const;

  /// Every vertex that currently appears as an endpoint of some edge.
  [[nodiscard]] std::vector<ProcessId> vertices() const;

  // ---- oracle queries (global knowledge; used by tests/benchmarks) -------

  /// True iff v lies on a cycle consisting solely of dark edges.  By the
  /// graph axioms such a cycle is permanent, i.e. v is deadlocked.
  [[nodiscard]] bool on_dark_cycle(ProcessId v) const;

  /// One dark cycle through v, if any (v first, successor order).
  [[nodiscard]] std::optional<std::vector<ProcessId>> dark_cycle_through(
      ProcessId v) const;

  /// All vertices lying on at least one dark cycle.
  [[nodiscard]] std::vector<ProcessId> deadlocked_vertices() const;

  /// All *black* edges lying on some all-black path from `from` to `to`
  /// (inclusive of cycle edges when from == to is reachable).  This is the
  /// fixpoint the section-5 WFGD computation converges to when `to` is the
  /// detecting initiator.
  [[nodiscard]] std::unordered_set<Edge> black_path_edges_to(
      ProcessId from, ProcessId to) const;

  /// Graphviz DOT rendering (grey/black/white edge styling).
  [[nodiscard]] std::string to_dot() const;

 private:
  [[nodiscard]] const EdgeColor* find(ProcessId from, ProcessId to) const;

  // Vertices reaching / reachable-from via black edges only.
  [[nodiscard]] std::unordered_set<ProcessId> black_reachable_from(
      ProcessId v) const;
  [[nodiscard]] std::unordered_set<ProcessId> black_reaching(
      ProcessId v) const;

  std::unordered_map<ProcessId, std::unordered_map<ProcessId, EdgeColor>>
      out_;
  std::unordered_map<ProcessId, std::unordered_set<ProcessId>> in_;
  std::size_t edge_count_{0};
};

}  // namespace cmh::graph
