#include "graph/wait_for_graph.h"

#include <algorithm>
#include <deque>
#include <sstream>

namespace cmh::graph {

namespace {
Status precondition(const std::string& what) {
  return {StatusCode::kFailedPrecondition, what};
}
}  // namespace

const EdgeColor* WaitForGraph::find(ProcessId from, ProcessId to) const {
  const auto it = out_.find(from);
  if (it == out_.end()) return nullptr;
  const auto jt = it->second.find(to);
  if (jt == it->second.end()) return nullptr;
  return &jt->second;
}

Status WaitForGraph::create(ProcessId from, ProcessId to) {
  if (from == to) return precondition("G1: self edge not allowed");
  if (find(from, to) != nullptr) {
    return precondition("G1: edge already exists");
  }
  out_[from][to] = EdgeColor::kGrey;
  in_[to].insert(from);
  ++edge_count_;
  return Status::Ok();
}

Status WaitForGraph::blacken(ProcessId from, ProcessId to) {
  const auto* c = find(from, to);
  if (c == nullptr) return precondition("G2: edge does not exist");
  if (*c != EdgeColor::kGrey) return precondition("G2: edge is not grey");
  out_[from][to] = EdgeColor::kBlack;
  return Status::Ok();
}

Status WaitForGraph::whiten(ProcessId from, ProcessId to) {
  const auto* c = find(from, to);
  if (c == nullptr) return precondition("G3: edge does not exist");
  if (*c != EdgeColor::kBlack) return precondition("G3: edge is not black");
  if (has_outgoing(to)) {
    return precondition("G3: replier has outgoing edges (not active)");
  }
  out_[from][to] = EdgeColor::kWhite;
  return Status::Ok();
}

Status WaitForGraph::remove(ProcessId from, ProcessId to) {
  const auto* c = find(from, to);
  if (c == nullptr) return precondition("G4: edge does not exist");
  if (*c != EdgeColor::kWhite) return precondition("G4: edge is not white");
  out_[from].erase(to);
  if (out_[from].empty()) out_.erase(from);
  in_[to].erase(from);
  if (in_[to].empty()) in_.erase(to);
  --edge_count_;
  return Status::Ok();
}

bool WaitForGraph::has_edge(ProcessId from, ProcessId to) const {
  return find(from, to) != nullptr;
}

std::optional<EdgeColor> WaitForGraph::color(ProcessId from,
                                             ProcessId to) const {
  const auto* c = find(from, to);
  if (c == nullptr) return std::nullopt;
  return *c;
}

std::vector<ProcessId> WaitForGraph::successors(ProcessId v) const {
  std::vector<ProcessId> result;
  const auto it = out_.find(v);
  if (it == out_.end()) return result;
  result.reserve(it->second.size());
  for (const auto& [to, color] : it->second) result.push_back(to);
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<ProcessId> WaitForGraph::predecessors(
    ProcessId v, std::optional<EdgeColor> filter) const {
  std::vector<ProcessId> result;
  const auto it = in_.find(v);
  if (it == in_.end()) return result;
  for (const ProcessId from : it->second) {
    if (!filter || *find(from, v) == *filter) result.push_back(from);
  }
  std::sort(result.begin(), result.end());
  return result;
}

bool WaitForGraph::has_outgoing(ProcessId v) const {
  const auto it = out_.find(v);
  return it != out_.end() && !it->second.empty();
}

std::vector<Edge> WaitForGraph::edges(std::optional<EdgeColor> filter) const {
  std::vector<Edge> result;
  for (const auto& [from, adj] : out_) {
    for (const auto& [to, color] : adj) {
      if (!filter || color == *filter) result.push_back(Edge{from, to});
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<ProcessId> WaitForGraph::vertices() const {
  std::unordered_set<ProcessId> seen;
  for (const auto& [from, adj] : out_) {
    seen.insert(from);
    for (const auto& [to, color] : adj) seen.insert(to);
  }
  std::vector<ProcessId> result(seen.begin(), seen.end());
  std::sort(result.begin(), result.end());
  return result;
}

std::optional<std::vector<ProcessId>> WaitForGraph::dark_cycle_through(
    ProcessId v) const {
  // BFS over dark edges from each dark successor of v back to v, recording
  // parents so the cycle can be reconstructed.
  const auto it = out_.find(v);
  if (it == out_.end()) return std::nullopt;

  std::unordered_map<ProcessId, ProcessId> parent;
  std::deque<ProcessId> frontier;
  for (const auto& [succ, color] : it->second) {
    if (!is_dark(color)) continue;
    if (succ == v) continue;  // self edges are excluded by G1 anyway
    if (parent.emplace(succ, v).second) frontier.push_back(succ);
  }

  while (!frontier.empty()) {
    const ProcessId u = frontier.front();
    frontier.pop_front();
    const auto uit = out_.find(u);
    if (uit == out_.end()) continue;
    for (const auto& [w, color] : uit->second) {
      if (!is_dark(color)) continue;
      if (w == v) {
        std::vector<ProcessId> cycle{v};
        for (ProcessId x = u; x != v; x = parent.at(x)) cycle.push_back(x);
        std::reverse(cycle.begin() + 1, cycle.end());
        return cycle;
      }
      if (parent.emplace(w, u).second) frontier.push_back(w);
    }
  }
  return std::nullopt;
}

bool WaitForGraph::on_dark_cycle(ProcessId v) const {
  return dark_cycle_through(v).has_value();
}

std::vector<ProcessId> WaitForGraph::deadlocked_vertices() const {
  std::vector<ProcessId> result;
  for (const ProcessId v : vertices()) {
    if (on_dark_cycle(v)) result.push_back(v);
  }
  return result;
}

std::unordered_set<ProcessId> WaitForGraph::black_reachable_from(
    ProcessId v) const {
  std::unordered_set<ProcessId> seen;
  std::deque<ProcessId> frontier{v};
  while (!frontier.empty()) {
    const ProcessId u = frontier.front();
    frontier.pop_front();
    const auto it = out_.find(u);
    if (it == out_.end()) continue;
    for (const auto& [w, color] : it->second) {
      if (color != EdgeColor::kBlack) continue;
      if (seen.insert(w).second) frontier.push_back(w);
    }
  }
  return seen;
}

std::unordered_set<ProcessId> WaitForGraph::black_reaching(
    ProcessId v) const {
  std::unordered_set<ProcessId> seen;
  std::deque<ProcessId> frontier{v};
  while (!frontier.empty()) {
    const ProcessId u = frontier.front();
    frontier.pop_front();
    const auto it = in_.find(u);
    if (it == in_.end()) continue;
    for (const ProcessId w : it->second) {
      if (*find(w, u) != EdgeColor::kBlack) continue;
      if (seen.insert(w).second) frontier.push_back(w);
    }
  }
  return seen;
}

std::unordered_set<Edge> WaitForGraph::black_path_edges_to(
    ProcessId from, ProcessId to) const {
  // A black edge (x, y) lies on a black path from `from` to `to` iff x is
  // black-reachable from `from` (or equals it) and `to` is black-reachable
  // from y (or equals it).
  auto from_side = black_reachable_from(from);
  from_side.insert(from);
  auto to_side = black_reaching(to);
  to_side.insert(to);

  std::unordered_set<Edge> result;
  for (const ProcessId x : from_side) {
    const auto it = out_.find(x);
    if (it == out_.end()) continue;
    for (const auto& [y, color] : it->second) {
      if (color == EdgeColor::kBlack && to_side.contains(y)) {
        result.insert(Edge{x, y});
      }
    }
  }
  return result;
}

std::string WaitForGraph::to_dot() const {
  std::ostringstream os;
  os << "digraph wfg {\n";
  for (const Edge& e : edges()) {
    const char* style = "solid";
    const char* c = to_string(*color(e.from, e.to));
    if (*color(e.from, e.to) == EdgeColor::kGrey) style = "dashed";
    if (*color(e.from, e.to) == EdgeColor::kWhite) style = "dotted";
    os << "  \"" << e.from << "\" -> \"" << e.to << "\" [style=" << style
       << ", label=\"" << c << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace cmh::graph
