#include "sim/simulator.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace cmh::sim {

namespace {

std::uint64_t channel_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

// Bounds each shard's payload-buffer pool; beyond this, buffers are freed.
constexpr std::size_t kMaxPooledBuffers = 4096;

// SplitMix64 finalizer: the bijective avalanche behind the counter-based
// delay draws.  Statistically equivalent to the old stream RNG (same
// construction as common/rng.h) but addressable by (seed, channel, index)
// instead of draw order, which is what makes the schedule independent of the
// shard count.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Which (simulator, shard, owner-node) is currently dispatching on this
// thread.  Routes send()/schedule()/now() issued from inside handlers
// without any shared mutable state.
struct CurCtx {
  const void* sim{nullptr};
  std::uint32_t shard{0};
  std::uint32_t owner{0};
};

thread_local CurCtx g_ctx;

struct CtxGuard {
  CurCtx saved;
  CtxGuard(const void* sim, std::uint32_t shard, std::uint32_t owner)
      : saved(g_ctx) {
    g_ctx = CurCtx{sim, shard, owner};
  }
  ~CtxGuard() { g_ctx = saved; }
  CtxGuard(const CtxGuard&) = delete;
  CtxGuard& operator=(const CtxGuard&) = delete;
};

}  // namespace

Simulator::Simulator(std::uint64_t seed, DelayModel delays,
                     std::uint32_t shards)
    : seed_(seed),
      delays_(delays),
      shard_count_(shards == 0 ? 1 : shards) {
  if (shard_count_ > 1 && delays_.min < SimTime::us(1)) {
    throw std::invalid_argument(
        "Simulator: sharded mode needs DelayModel::min >= 1us (it is the "
        "conservative lookahead)");
  }
  // Bucket width tuned so the delay span covers a fraction of the ring.
  const std::int64_t width_hint =
      std::max<std::int64_t>(1, delays_.max.micros / 64);
  shards_.reserve(shard_count_);
  for (std::uint32_t s = 0; s < shard_count_; ++s) {
    shards_.emplace_back(width_hint);
  }
  // Single-shard keeps the fully lazy legacy behavior (grow-as-you-go
  // channel matrix, add_node at any time); multi-shard freezes the
  // partition at the first event.
  partition_frozen_ = (shard_count_ == 1);
}

Simulator::~Simulator() { stop_pool(); }

NodeId Simulator::add_node(MessageHandler handler) {
  if (partition_frozen_ && shard_count_ > 1) {
    throw std::logic_error(
        "Simulator::add_node: node set is frozen once the first event is "
        "scheduled in sharded mode");
  }
  nodes_.push_back(std::move(handler));
  timer_seq_.push_back(0);
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Simulator::set_handler(NodeId node, MessageHandler handler) {
  nodes_.at(node) = std::move(handler);
}

void Simulator::set_observer(SimObserver* observer) {
  if (observer != nullptr && shard_count_ > 1) {
    throw std::logic_error(
        "Simulator::set_observer: observers require shards == 1 (concurrent "
        "shard workers would race on the observer)");
  }
  observer_ = observer;
}

void Simulator::ensure_partition() {
  // Only reachable with shard_count_ > 1 (single-shard constructs frozen).
  const std::size_t n = nodes_.size();
  shard_block_ = std::max<std::size_t>(1, (n + shard_count_ - 1) / shard_count_);
  if (n > 0 && n <= kFlatChannelLimit) {
    channel_stride_ = n;
    channel_flat_.assign(n * n, ChannelState{});
  }
  partition_frozen_ = true;
}

std::uint32_t Simulator::acquire_slot(ShardState& shard) {
  if (!shard.free_slots.empty()) {
    const std::uint32_t slot = shard.free_slots.back();
    shard.free_slots.pop_back();
    return slot;
  }
  shard.slab.emplace_back();
  return static_cast<std::uint32_t>(shard.slab.size() - 1);
}

void Simulator::release_slot(ShardState& shard, std::uint32_t slot) {
  shard.free_slots.push_back(slot);
}

Bytes Simulator::take_buffer(ShardState& shard) {
  if (shard.buffer_pool.empty()) return Bytes{};
  Bytes buf = std::move(shard.buffer_pool.back());
  shard.buffer_pool.pop_back();
  return buf;
}

void Simulator::recycle_buffer(ShardState& shard, Bytes&& buffer) {
  if (shard.buffer_pool.size() >= kMaxPooledBuffers) return;
  buffer.clear();  // keeps capacity
  shard.buffer_pool.push_back(std::move(buffer));
}

Simulator::ChannelState& Simulator::channel_state(NodeId from, NodeId to) {
  if (nodes_.size() <= kFlatChannelLimit) {
    if (channel_stride_ < nodes_.size()) {
      // Single-shard lazy growth (multi-shard pre-sizes at the freeze).
      // Grow geometrically so repeated add_node/send interleavings stay
      // O(n^2) total; entries are remapped from the old stride.
      const std::size_t fresh_stride =
          std::max<std::size_t>(nodes_.size(), channel_stride_ * 2);
      std::vector<ChannelState> fresh(fresh_stride * fresh_stride);
      for (std::size_t f = 0; f < channel_stride_; ++f) {
        for (std::size_t t = 0; t < channel_stride_; ++t) {
          fresh[f * fresh_stride + t] = channel_flat_[f * channel_stride_ + t];
        }
      }
      channel_flat_ = std::move(fresh);
      channel_stride_ = fresh_stride;
    }
    return channel_flat_[static_cast<std::size_t>(from) * channel_stride_ + to];
  }
  if (!channel_flat_.empty()) migrate_flat_to_spill();
  return shards_[shard_of(from)].channel_spill[channel_key(from, to)];
}

void Simulator::migrate_flat_to_spill() {
  // The node count just crossed kFlatChannelLimit (single-shard only:
  // multi-shard freezes the node count up front).  Carry live FIFO fronts
  // and channel counters into the spill maps -- dropping them would both
  // break per-channel FIFO and rewind the delay counters.
  for (std::size_t f = 0; f < channel_stride_; ++f) {
    for (std::size_t t = 0; t < channel_stride_; ++t) {
      const ChannelState& ch = channel_flat_[f * channel_stride_ + t];
      if (ch.count != 0 || ch.front != SimTime::zero()) {
        shards_[shard_of(static_cast<NodeId>(f))]
            .channel_spill[channel_key(static_cast<NodeId>(f),
                                       static_cast<NodeId>(t))] = ch;
      }
    }
  }
  channel_flat_ = std::vector<ChannelState>{};
  channel_stride_ = 0;
}

SimTime Simulator::channel_delay(NodeId from, NodeId to,
                                 std::uint64_t count) const {
  const auto span =
      static_cast<std::uint64_t>(delays_.max.micros - delays_.min.micros);
  if (span == 0) return delays_.min;
  // hash(seed, channel, index): every draw is addressable, so any thread
  // computing it gets the same value.  The 128-bit multiply maps the hash
  // onto [0, span] with bias < 2^-64 (Lemire's method minus the rejection
  // loop, which determinism cannot afford to re-draw).
  std::uint64_t h =
      mix64(seed_ ^ (channel_key(from, to) * 0x9e3779b97f4a7c15ULL));
  h = mix64(h + count);
  const auto offset = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(h) * (span + 1)) >> 64);
  return SimTime::us(delays_.min.micros + static_cast<std::int64_t>(offset));
}

void Simulator::enqueue_message(ShardState& dst, SimTime at, NodeId from,
                                NodeId to, std::uint64_t seq,
                                Bytes&& payload) {
  const std::uint32_t slot = acquire_slot(dst);
  dst.slab[slot].payload = std::move(payload);
  dst.queue.insert(EventQueue::Entry{at, from, to, seq, slot});
}

void Simulator::send(NodeId from, NodeId to, BytesView payload) {
  if (from >= nodes_.size()) {
    throw std::out_of_range("Simulator::send: unknown source node");
  }
  if (to >= nodes_.size()) {
    throw std::out_of_range("Simulator::send: unknown destination node");
  }
  if (!partition_frozen_) ensure_partition();

  const bool in_dispatch = (g_ctx.sim == this);
  const std::uint32_t src_shard = in_dispatch ? g_ctx.shard : 0;
  if (parallel_active_ && in_dispatch && shard_of(from) != src_shard) {
    throw std::logic_error(
        "Simulator::send: in a parallel run a handler may only send on "
        "behalf of nodes of its own shard");
  }
  ShardState& src = shards_[src_shard];
  ++src.stats.messages_sent;
  src.stats.bytes_sent += payload.size();

  ChannelState& ch = channel_state(from, to);
  const SimTime base = in_dispatch ? src.now : now_;
  if (observer_ != nullptr) observer_->on_send(from, to, payload, base);
  SimTime deliver_at = base + channel_delay(from, to, ch.count);
  // FIFO per channel: never deliver before an earlier message on the same
  // channel.  (+1us keeps distinct deliveries strictly ordered, which also
  // makes the canonical key (time, from, to, seq) unique.)
  if (deliver_at <= ch.front) deliver_at = ch.front + SimTime::us(1);
  ch.front = deliver_at;
  const std::uint64_t seq = ch.count++;

  Bytes buf = take_buffer(src);
  buf.assign(payload.begin(), payload.end());

  const std::uint32_t dst_shard = shard_of(to);
  if (parallel_active_ && dst_shard != src_shard) {
    // Park until the window barrier; the destination worker owns its queue.
    outbox_[static_cast<std::size_t>(src_shard) * shard_count_ + dst_shard]
        .push_back(CrossMsg{deliver_at, from, to, seq, std::move(buf)});
  } else {
    enqueue_message(shards_[dst_shard], deliver_at, from, to, seq,
                    std::move(buf));
  }
}

void Simulator::schedule(SimTime delay, std::function<void()> fn) {
  if (delay.micros < 0) {
    throw std::invalid_argument("Simulator::schedule: negative delay");
  }
  if (!partition_frozen_) ensure_partition();

  const bool in_dispatch = (g_ctx.sim == this);
  const std::uint32_t shard_idx = in_dispatch ? g_ctx.shard : 0;
  const NodeId owner = in_dispatch ? g_ctx.owner : kControlNode;
  const std::uint64_t seq =
      (owner == kControlNode) ? control_timer_seq_++ : timer_seq_[owner]++;

  ShardState& sh = shards_[shard_idx];
  const SimTime at = (in_dispatch ? sh.now : now_) + delay;
  const std::uint32_t slot = acquire_slot(sh);
  sh.slab[slot].fn = std::move(fn);
  sh.queue.insert(EventQueue::Entry{at, owner, kTimerLane, seq, slot});
}

SimTime Simulator::now() const {
  if (g_ctx.sim == this) return shards_[g_ctx.shard].now;
  return now_;
}

const SimStats& Simulator::stats() const {
  stats_agg_ = SimStats{};
  for (const ShardState& sh : shards_) {
    stats_agg_.messages_sent += sh.stats.messages_sent;
    stats_agg_.messages_delivered += sh.stats.messages_delivered;
    stats_agg_.bytes_sent += sh.stats.bytes_sent;
    stats_agg_.timers_fired += sh.stats.timers_fired;
    stats_agg_.events_processed += sh.stats.events_processed;
  }
  return stats_agg_;
}

void Simulator::reset_stats() {
  for (ShardState& sh : shards_) sh.stats = SimStats{};
}

void Simulator::dispatch_on(std::uint32_t shard_idx,
                            const EventQueue::Entry& entry) {
  ShardState& sh = shards_[shard_idx];
  sh.now = entry.time;
  ++sh.stats.events_processed;
  // Move everything out of the slot and release it BEFORE invoking the
  // handler: handlers enqueue further events, which may reuse the slot or
  // reallocate the slab.
  if (entry.b != kTimerLane) {
    Bytes payload = std::move(sh.slab[entry.slot].payload);
    release_slot(sh, entry.slot);
    ++sh.stats.messages_delivered;
    if (observer_ != nullptr) {
      observer_->on_deliver(entry.a, entry.b, payload, sh.now);
    }
    {
      CtxGuard guard(this, shard_idx, entry.b);
      if (nodes_[entry.b]) nodes_[entry.b](entry.a, payload);
    }
    recycle_buffer(sh, std::move(payload));
  } else {
    auto fn = std::move(sh.slab[entry.slot].fn);
    release_slot(sh, entry.slot);
    ++sh.stats.timers_fired;
    CtxGuard guard(this, shard_idx, entry.a);
    fn();
  }
}

int Simulator::min_shard() {
  int best = -1;
  const EventQueue::Entry* best_entry = nullptr;
  for (std::uint32_t s = 0; s < shard_count_; ++s) {
    const EventQueue::Entry* e = shards_[s].queue.peek();
    if (e != nullptr &&
        (best_entry == nullptr || EventQueue::key_before(*e, *best_entry))) {
      best = static_cast<int>(s);
      best_entry = e;
    }
  }
  return best;
}

bool Simulator::step_sequential() {
  const int s = min_shard();
  if (s < 0) return false;
  auto& sh = shards_[static_cast<std::size_t>(s)];
  dispatch_on(static_cast<std::uint32_t>(s), sh.queue.pop());
  if (sh.now > now_) now_ = sh.now;
  return true;
}

bool Simulator::step() {
  if (shard_count_ == 1) {
    ShardState& sh = shards_[0];
    if (sh.queue.empty()) return false;
    dispatch_on(0, sh.queue.pop());
    if (sh.now > now_) now_ = sh.now;
    return true;
  }
  return step_sequential();
}

SimTime Simulator::run() {
  if (shard_count_ == 1) {
    ShardState& sh = shards_[0];
    while (!sh.queue.empty()) dispatch_on(0, sh.queue.pop());
    if (sh.now > now_) now_ = sh.now;
    return now_;
  }
  run_parallel(SimTime{INT64_MAX});
  return now_;
}

std::size_t Simulator::run_batch(std::size_t max_events) {
  std::size_t processed = 0;
  if (shard_count_ == 1) {
    ShardState& sh = shards_[0];
    while (processed < max_events && !sh.queue.empty()) {
      dispatch_on(0, sh.queue.pop());
      ++processed;
    }
    if (sh.now > now_) now_ = sh.now;
    return processed;
  }
  while (processed < max_events && step_sequential()) ++processed;
  return processed;
}

void Simulator::run_until(SimTime t) {
  if (shard_count_ == 1) {
    ShardState& sh = shards_[0];
    while (!sh.queue.empty() && sh.queue.next_time() <= t) {
      dispatch_on(0, sh.queue.pop());
    }
    if (sh.now > now_) now_ = sh.now;
  } else {
    run_parallel(t);
  }
  if (now_ < t) now_ = t;
}

bool Simulator::run_while_pending(const std::function<bool()>& pred) {
  while (!pred() && step()) {
  }
  return pred();
}

bool Simulator::idle() const {
  for (const ShardState& sh : shards_) {
    if (!sh.queue.empty()) return false;
  }
  return true;
}

// ---- parallel windowed engine ----------------------------------------------

void Simulator::run_parallel(SimTime limit) {
  if (!partition_frozen_) ensure_partition();
  start_pool();
  job_limit_ = limit.micros;
  abort_.store(false, std::memory_order_relaxed);
  win_done_ = false;
  compute_next_window();
  if (!win_done_) {
    {
      const MutexLock lk(pool_mutex_);
      parallel_active_ = true;
      ++job_gen_;
      jobs_done_ = 0;
    }
    pool_cv_.notify_all();
    window_loop(0);  // the caller participates as shard 0
    {
      const MutexLock lk(pool_mutex_);
      pool_done_cv_.wait(pool_mutex_, [&] {
        pool_mutex_.assert_held();  // held by CondVar::wait's contract
        return jobs_done_ == shard_count_ - 1;
      });
      parallel_active_ = false;
    }
  }
  for (const ShardState& sh : shards_) {
    if (sh.now > now_) now_ = sh.now;
  }
  for (ShardState& sh : shards_) {
    if (sh.error) {
      const std::exception_ptr first = sh.error;
      for (ShardState& other : shards_) other.error = nullptr;
      std::rethrow_exception(first);
    }
  }
}

void Simulator::start_pool() {
  if (shard_count_ == 1 || !pool_.empty()) return;
  outbox_.resize(static_cast<std::size_t>(shard_count_) * shard_count_);
  window_bar_ = std::make_unique<std::barrier<WindowCompletion>>(
      shard_count_, WindowCompletion{this});
  drain_bar_ = std::make_unique<std::barrier<>>(shard_count_);
  pool_.reserve(shard_count_ - 1);
  for (std::uint32_t s = 1; s < shard_count_; ++s) {
    pool_.emplace_back([this, s] { parallel_worker(s); });
  }
}

void Simulator::stop_pool() {
  if (pool_.empty()) return;
  {
    const MutexLock lk(pool_mutex_);
    pool_quit_ = true;
  }
  pool_cv_.notify_all();
  for (std::thread& t : pool_) t.join();
  pool_.clear();
}

void Simulator::parallel_worker(std::uint32_t shard_idx) {
  std::uint64_t seen_gen = 0;
  for (;;) {
    {
      const MutexLock lk(pool_mutex_);
      pool_cv_.wait(pool_mutex_, [&] {
        pool_mutex_.assert_held();  // held by CondVar::wait's contract
        return pool_quit_ || job_gen_ != seen_gen;
      });
      if (pool_quit_) return;
      seen_gen = job_gen_;
    }
    window_loop(shard_idx);
    {
      const MutexLock lk(pool_mutex_);
      ++jobs_done_;
    }
    pool_done_cv_.notify_one();
  }
}

void Simulator::window_loop(std::uint32_t shard_idx) {
  ShardState& sh = shards_[shard_idx];
  const std::uint32_t k = shard_count_;
  for (;;) {
    // Process phase: everything this shard owns inside [.., win_end_).
    // Same-shard sends land at >= win_end_ (lookahead), zero/short timers
    // may land inside the window and are drained too.
    if (!abort_.load(std::memory_order_relaxed)) {
      try {
        while (sh.queue.next_time().micros < win_end_) {
          dispatch_on(shard_idx, sh.queue.pop());
          if (abort_.load(std::memory_order_relaxed)) break;
        }
      } catch (...) {
        sh.error = std::current_exception();
        abort_.store(true, std::memory_order_relaxed);
      }
    }
    // All outbox writes complete before anyone reads them.
    drain_bar_->arrive_and_wait();
    for (std::uint32_t src = 0; src < k; ++src) {
      auto& box = outbox_[static_cast<std::size_t>(src) * k + shard_idx];
      for (CrossMsg& msg : box) {
        enqueue_message(sh, msg.time, msg.from, msg.to, msg.seq,
                        std::move(msg.payload));
      }
      box.clear();
    }
    // Completion computes the next window from the updated queues.
    window_bar_->arrive_and_wait();
    if (win_done_) return;
  }
}

void Simulator::compute_next_window() noexcept {
  // Runs on exactly one thread while every worker is blocked at the window
  // barrier, so it may touch all shard queues.
  if (abort_.load(std::memory_order_relaxed)) {
    win_done_ = true;
    return;
  }
  std::int64_t min_next = INT64_MAX;
  for (ShardState& sh : shards_) {
    min_next = std::min(min_next, sh.queue.next_time().micros);
  }
  if (min_next == INT64_MAX || min_next > job_limit_) {
    win_done_ = true;
    return;
  }
  const std::int64_t lookahead = std::max<std::int64_t>(1, delays_.min.micros);
  std::int64_t end = (min_next > INT64_MAX - lookahead) ? INT64_MAX
                                                        : min_next + lookahead;
  if (job_limit_ != INT64_MAX && end > job_limit_) end = job_limit_ + 1;
  win_end_ = end;
  win_done_ = false;
}

}  // namespace cmh::sim
