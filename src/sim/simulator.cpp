#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

namespace cmh::sim {

namespace {
std::uint64_t channel_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}
}  // namespace

Simulator::Simulator(std::uint64_t seed, DelayModel delays)
    : rng_(seed), delays_(delays) {}

NodeId Simulator::add_node(MessageHandler handler) {
  nodes_.push_back(std::move(handler));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Simulator::set_handler(NodeId node, MessageHandler handler) {
  nodes_.at(node) = std::move(handler);
}

SimTime Simulator::draw_delay() {
  const auto span =
      static_cast<std::uint64_t>(delays_.max.micros - delays_.min.micros);
  if (span == 0) return delays_.min;
  return SimTime::us(delays_.min.micros +
                     static_cast<std::int64_t>(rng_.below(span + 1)));
}

void Simulator::send(NodeId from, NodeId to, Bytes payload) {
  if (to >= nodes_.size()) {
    throw std::out_of_range("Simulator::send: unknown destination node");
  }
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();

  SimTime deliver_at = now_ + draw_delay();
  // FIFO per channel: never deliver before an earlier message on the same
  // channel.  (+1us keeps distinct deliveries strictly ordered.)
  auto& front = channel_front_[channel_key(from, to)];
  if (deliver_at <= front) deliver_at = front + SimTime::us(1);
  front = deliver_at;

  push(deliver_at, [this, from, to, p = std::move(payload)]() {
    ++stats_.messages_delivered;
    if (nodes_[to]) nodes_[to](from, p);
  });
}

void Simulator::schedule(SimTime delay, std::function<void()> fn) {
  if (delay.micros < 0) {
    throw std::invalid_argument("Simulator::schedule: negative delay");
  }
  push(now_ + delay, [this, f = std::move(fn)]() {
    ++stats_.timers_fired;
    f();
  });
}

void Simulator::push(SimTime at, std::function<void()> fn) {
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the event is copied out so the
  // handler may enqueue further events safely.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++stats_.events_processed;
  ev.fn();
  return true;
}

SimTime Simulator::run() {
  while (step()) {
  }
  return now_;
}

void Simulator::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) step();
  if (now_ < t) now_ = t;
}

bool Simulator::run_while_pending(const std::function<bool()>& pred) {
  while (!pred() && step()) {
  }
  return pred();
}

}  // namespace cmh::sim
