#include "sim/simulator.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace cmh::sim {

namespace {
std::uint64_t channel_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

// Bounds the payload-buffer pool; beyond this, returned buffers are freed.
constexpr std::size_t kMaxPooledBuffers = 4096;
}  // namespace

Simulator::Simulator(std::uint64_t seed, DelayModel delays)
    : rng_(seed), delays_(delays) {}

NodeId Simulator::add_node(MessageHandler handler) {
  nodes_.push_back(std::move(handler));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Simulator::set_handler(NodeId node, MessageHandler handler) {
  nodes_.at(node) = std::move(handler);
}

SimTime Simulator::draw_delay() {
  const auto span =
      static_cast<std::uint64_t>(delays_.max.micros - delays_.min.micros);
  if (span == 0) return delays_.min;
  return SimTime::us(delays_.min.micros +
                     static_cast<std::int64_t>(rng_.below(span + 1)));
}

SimTime& Simulator::channel_front(NodeId from, NodeId to) {
  if (nodes_.size() > kFlatChannelLimit) {
    return channel_spill_[channel_key(from, to)];
  }
  if (channel_stride_ < nodes_.size()) {
    // Grow geometrically so repeated add_node/send interleavings stay
    // O(n^2) total.  Entries are remapped from the old stride.
    const std::size_t fresh_stride =
        std::max<std::size_t>(nodes_.size(), channel_stride_ * 2);
    std::vector<SimTime> fresh(fresh_stride * fresh_stride, SimTime::zero());
    for (std::size_t f = 0; f < channel_stride_; ++f) {
      for (std::size_t t = 0; t < channel_stride_; ++t) {
        fresh[f * fresh_stride + t] = channel_flat_[f * channel_stride_ + t];
      }
    }
    channel_flat_ = std::move(fresh);
    channel_stride_ = fresh_stride;
  }
  return channel_flat_[static_cast<std::size_t>(from) * channel_stride_ + to];
}

std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  free_slots_.push_back(slot);
}

void Simulator::recycle_buffer(Bytes&& buffer) {
  if (buffer_pool_.size() >= kMaxPooledBuffers) return;
  buffer.clear();  // keeps capacity
  buffer_pool_.push_back(std::move(buffer));
}

void Simulator::send(NodeId from, NodeId to, BytesView payload) {
  if (to >= nodes_.size()) {
    throw std::out_of_range("Simulator::send: unknown destination node");
  }
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();

  SimTime deliver_at = now_ + draw_delay();
  // FIFO per channel: never deliver before an earlier message on the same
  // channel.  (+1us keeps distinct deliveries strictly ordered.)
  SimTime& front = channel_front(from, to);
  if (deliver_at <= front) deliver_at = front + SimTime::us(1);
  front = deliver_at;

  const std::uint32_t slot = acquire_slot();
  Event& ev = slab_[slot];
  ev.kind = EventKind::kMessage;
  ev.from = from;
  ev.to = to;
  if (!buffer_pool_.empty()) {
    ev.payload = std::move(buffer_pool_.back());
    buffer_pool_.pop_back();
  }
  ev.payload.assign(payload.begin(), payload.end());
  queue_.push(QueueEntry{deliver_at, next_seq_++, slot});
}

void Simulator::schedule(SimTime delay, std::function<void()> fn) {
  if (delay.micros < 0) {
    throw std::invalid_argument("Simulator::schedule: negative delay");
  }
  const std::uint32_t slot = acquire_slot();
  Event& ev = slab_[slot];
  ev.kind = EventKind::kCallback;
  ev.fn = std::move(fn);
  queue_.push(QueueEntry{now_ + delay, next_seq_++, slot});
}

void Simulator::dispatch(const QueueEntry& entry) {
  now_ = entry.time;
  ++stats_.events_processed;
  // Move everything out of the slot and release it BEFORE invoking the
  // handler: handlers enqueue further events, which may reuse the slot or
  // reallocate the slab.
  Event& ev = slab_[entry.slot];
  if (ev.kind == EventKind::kMessage) {
    const NodeId from = ev.from;
    const NodeId to = ev.to;
    Bytes payload = std::move(ev.payload);
    release_slot(entry.slot);
    ++stats_.messages_delivered;
    if (nodes_[to]) nodes_[to](from, payload);
    recycle_buffer(std::move(payload));
  } else {
    auto fn = std::move(ev.fn);
    release_slot(entry.slot);
    ++stats_.timers_fired;
    fn();
  }
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  const QueueEntry entry = queue_.top();
  queue_.pop();
  dispatch(entry);
  return true;
}

SimTime Simulator::run() {
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    queue_.pop();
    dispatch(entry);
  }
  return now_;
}

std::size_t Simulator::run_batch(std::size_t max_events) {
  std::size_t processed = 0;
  while (processed < max_events && !queue_.empty()) {
    const QueueEntry entry = queue_.top();
    queue_.pop();
    dispatch(entry);
    ++processed;
  }
  return processed;
}

void Simulator::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    const QueueEntry entry = queue_.top();
    queue_.pop();
    dispatch(entry);
  }
  if (now_ < t) now_ = t;
}

bool Simulator::run_while_pending(const std::function<bool()>& pred) {
  while (!pred() && step()) {
  }
  return pred();
}

}  // namespace cmh::sim
