// Two-level ladder (calendar) queue for the discrete-event engine.
//
// The binary heap the simulator used pays O(log n) per operation with a
// pointer-chasing access pattern that falls off a cliff once the pending-event
// set outgrows L2 -- exactly the large-N regime the sharded engine targets.
// This queue exploits the structure of simulated time instead:
//
//   * Near future: a ring of `kBuckets` fixed-width time buckets.  Inserts
//     drop into their bucket unsorted (one push_back); the consumer sorts a
//     bucket only when virtual time reaches it.  With bucket width tuned to
//     the delay model, buckets stay small and every event pays O(1) amortized
//     plus its share of one small sort.
//   * Far future: an unsorted overflow list.  When the ring drains past its
//     horizon, the ring re-anchors at the earliest overflow entry and the
//     bucket width re-tunes to the overflow span, so far-out timers cost one
//     extra move, not a per-event penalty.
//   * Current bucket: entries landing at-or-before the bucket being consumed
//     (zero-delay timers, cross-shard arrivals into an idle shard) go to a
//     small binary heap that is merged entry-by-entry with the sorted bucket.
//
// Ordering contract: pops come out in ascending (time, a, b, seq) order --
// the canonical event key the simulator uses for thread-count-independent
// determinism.  The bucket width only shapes *where* entries wait, never the
// order they leave, so retuning is invisible to the schedule.
//
// Steady state allocates nothing: buckets, the active run, the near heap and
// the overflow list all recycle their capacity.
// cmh:hot-path -- steady-state detection path; lint enforces zero-alloc.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/time.h"

namespace cmh::sim {

class EventQueue {
 public:
  /// One scheduled event.  (a, b, seq) disambiguate equal timestamps with a
  /// key that does not depend on how nodes are sharded:
  ///   message:  a = src node, b = dst node, seq = per-channel message index
  ///   timer:    a = owning node (or control), b = kTimerLane, seq = per-owner
  ///             timer index
  struct Entry {
    SimTime time;
    std::uint32_t a{0};
    std::uint32_t b{0};
    std::uint64_t seq{0};
    std::uint32_t slot{0};
  };

  /// Canonical total order on events; identical for every shard count.
  [[nodiscard]] static bool key_before(const Entry& x, const Entry& y) {
    if (x.time != y.time) return x.time < y.time;
    // (a, b) packed into one word: fewer branches on the sort hot path.
    const std::uint64_t xab = (std::uint64_t{x.a} << 32) | x.b;
    const std::uint64_t yab = (std::uint64_t{y.a} << 32) | y.b;
    if (xab != yab) return xab < yab;
    return x.seq < y.seq;
  }

  static constexpr SimTime kNever{INT64_MAX};

  /// `width_hint_us` seeds the bucket width (ideally ~delay-span / kBuckets);
  /// the queue re-tunes itself whenever it re-anchors from overflow.
  explicit EventQueue(std::int64_t width_hint_us = 4) {
    wlog_ = width_log2_for(width_hint_us);
    buckets_.resize(kBuckets);
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  void insert(const Entry& e) {
    if (size_ == 0) {
      // Totally empty: re-anchor the ring at the new entry so an idle shard
      // fed at a barrier does not scan from a stale base.
      base_ = e.time.micros & ~(width() - 1);
      cur_ = 0;
    }
    ++size_;
    const std::int64_t t = e.time.micros;
    if (t < base_ + width()) {
      // Current bucket or the past (e.g. a zero-delay timer): the side heap
      // keeps it mergeable with the already-sorted active run.
      near_.push_back(e);
      std::push_heap(near_.begin(), near_.end(), KeyAfter{});
    } else if (t - base_ < ring_span()) {
      std::size_t idx = (cur_ + static_cast<std::size_t>((t - base_) >> wlog_)) &
                        (kBuckets - 1);
      buckets_[idx].push_back(e);
      occupied_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    } else {
      overflow_.push_back(e);
    }
  }

  /// Earliest pending entry in key order, or nullptr when empty.  May sort
  /// one bucket and/or re-anchor from overflow (amortized O(1) per event).
  [[nodiscard]] const Entry* peek() {
    prepare();
    const bool have_active = active_pos_ < active_.size();
    if (near_.empty()) return have_active ? &active_[active_pos_] : nullptr;
    if (!have_active) return &near_.front();
    return key_before(near_.front(), active_[active_pos_]) ? &near_.front()
                                                           : &active_[active_pos_];
  }

  /// Earliest pending time; kNever when empty.
  [[nodiscard]] SimTime next_time() {
    const Entry* e = peek();
    return e ? e->time : kNever;
  }

  /// Removes and returns the earliest entry.  Precondition: !empty().
  Entry pop() {
    prepare();
    --size_;
    const bool have_active = active_pos_ < active_.size();
    if (!near_.empty() &&
        (!have_active || key_before(near_.front(), active_[active_pos_]))) {
      std::pop_heap(near_.begin(), near_.end(), KeyAfter{});
      const Entry e = near_.back();
      near_.pop_back();
      return e;
    }
    const Entry e = active_[active_pos_++];
    if (active_pos_ == active_.size()) {
      active_.clear();
      active_pos_ = 0;
    }
    return e;
  }

 private:
  static constexpr std::size_t kBuckets = 256;  // power of two

  // Functor comparators: passing key_before by name decays to a function
  // pointer, which std::sort/push_heap cannot inline -- measured at ~25% of
  // event-loop CPU before the change.
  struct KeyBefore {
    [[nodiscard]] bool operator()(const Entry& x, const Entry& y) const {
      return key_before(x, y);
    }
  };
  struct KeyAfter {
    [[nodiscard]] bool operator()(const Entry& x, const Entry& y) const {
      return key_before(y, x);
    }
  };

  [[nodiscard]] static int width_log2_for(std::int64_t w) {
    if (w < 1) w = 1;
    if (w > (std::int64_t{1} << 40)) w = std::int64_t{1} << 40;
    return static_cast<int>(std::bit_width(static_cast<std::uint64_t>(w - 1)));
  }

  [[nodiscard]] std::int64_t width() const { return std::int64_t{1} << wlog_; }
  [[nodiscard]] std::int64_t ring_span() const {
    return static_cast<std::int64_t>(kBuckets) << wlog_;
  }

  /// Distance (in buckets) from cur_ to the next occupied bucket, scanning
  /// the occupancy bitmap cyclically; kBuckets when the whole ring is empty.
  /// (Walking the 256 bucket vectors directly costs a cache miss per empty
  /// bucket, which dominates sparse workloads; four bitmap words don't.)
  [[nodiscard]] std::size_t next_occupied_distance() const {
    std::size_t d = 0;
    while (d < kBuckets) {
      const std::size_t pos = (cur_ + d) & (kBuckets - 1);
      const unsigned shift = static_cast<unsigned>(pos & 63);
      // Bits below `shift` are buckets before cur_+d; shifting drops them,
      // so any set bit in `word` is at a distance >= d.
      const std::uint64_t word = occupied_[pos >> 6] >> shift;
      if (word != 0) {
        const std::size_t dist =
            d + static_cast<std::size_t>(std::countr_zero(word));
        // On the final (wrapped) word, high bits are buckets already scanned
        // at the start; a hit there means the ring is empty after all.
        return dist < kBuckets ? dist : kBuckets;
      }
      d += 64 - shift;  // jump to the next word boundary
    }
    return kBuckets;
  }

  /// Ensures the next entry (if any) is reachable via active_/near_.
  void prepare() {
    if (active_pos_ < active_.size() || !near_.empty() || size_ == 0) return;
    for (;;) {
      const std::size_t d = next_occupied_distance();
      if (d < kBuckets) {
        cur_ = (cur_ + d) & (kBuckets - 1);
        base_ += static_cast<std::int64_t>(d) * width();
        // Consume this bucket as the sorted active run.  Inserts landing in
        // its time range from now on go to near_ (insert() routes anything
        // below base_ + width there), so the merged order stays exact.
        std::swap(active_, buckets_[cur_]);
        buckets_[cur_].clear();
        occupied_[cur_ >> 6] &= ~(std::uint64_t{1} << (cur_ & 63));
        active_pos_ = 0;
        // Handlers run in key order and their sends append in that same
        // order, so buckets usually arrive sorted -- or *rotated* sorted
        // when a ring of processes wraps around (node N-1 feeds node 0).
        // Both are O(n) to fix; the general sort only runs when the bucket
        // is genuinely shuffled.
        const auto first = active_.begin();
        const auto last = active_.end();
        const auto brk = std::is_sorted_until(first, last, KeyBefore{});
        if (brk != last) {
          if (std::is_sorted(brk, last, KeyBefore{}) &&
              key_before(*(last - 1), *first)) {
            std::rotate(first, brk, last);
          } else {
            std::sort(first, last, KeyBefore{});
          }
        }
        return;
      }
      reseed_from_overflow();
    }
  }

  /// Ring fully drained: re-anchor at the earliest overflow entry, re-tune
  /// the bucket width to the overflow span, and redistribute what fits.
  void reseed_from_overflow() {
    std::int64_t lo = INT64_MAX;
    std::int64_t hi = INT64_MIN;
    for (const Entry& e : overflow_) {
      lo = std::min(lo, e.time.micros);
      hi = std::max(hi, e.time.micros);
    }
    // size_ > 0 with ring, active and near empty implies overflow_ nonempty.
    wlog_ = width_log2_for((hi - lo) / static_cast<std::int64_t>(kBuckets / 2) +
                           1);
    base_ = lo & ~(width() - 1);
    cur_ = 0;
    overflow_keep_.clear();
    for (Entry& e : overflow_) {
      if (e.time.micros - base_ < ring_span()) {
        std::size_t idx =
            static_cast<std::size_t>((e.time.micros - base_) >> wlog_) &
            (kBuckets - 1);
        buckets_[idx].push_back(e);
        occupied_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
      } else {
        overflow_keep_.push_back(e);
      }
    }
    overflow_.swap(overflow_keep_);
  }

  std::vector<std::vector<Entry>> buckets_;
  std::array<std::uint64_t, kBuckets / 64> occupied_{};  // non-empty buckets
  std::vector<Entry> active_;   // sorted run of the bucket being consumed
  std::size_t active_pos_{0};
  std::vector<Entry> near_;     // min-heap: entries at/before the active bucket
  std::vector<Entry> overflow_;  // beyond the ring horizon, unsorted
  std::vector<Entry> overflow_keep_;
  std::size_t size_{0};
  std::size_t cur_{0};          // index of the bucket containing base_
  std::int64_t base_{0};        // start time of bucket cur_
  int wlog_{2};                 // log2 of bucket width in us
};

}  // namespace cmh::sim
