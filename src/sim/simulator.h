// Deterministic discrete-event simulator with an optional sharded parallel
// engine.
//
// Hosts a set of nodes that exchange byte-payload messages over reliable,
// in-order, finite-delay channels -- exactly the communication assumption of
// the paper ("messages are received correctly and in order", P4/finite
// delivery).  Per-message delays are drawn from a seeded distribution; FIFO
// order per (src,dst) channel is enforced by clamping each delivery to be no
// earlier than the previous delivery on the same channel.  The simulator also
// provides timers, which the initiation policies and the workload drivers
// use, and counters for the benchmark harness.
//
// Determinism invariant (DESIGN.md section 4c): the event schedule is a pure
// function of (seed, workload) and is *bit-identical for every shard count*.
//   * Delays are counter-based: message i on channel (src,dst) always draws
//     hash(seed, src, dst, i), no matter which thread computes it or in what
//     global order -- there is no shared RNG stream to race on.
//   * Events are totally ordered by the canonical key (time, a, b, seq)
//     where (a,b,seq) = (src, dst, channel-index) for messages and
//     (owner, kTimerLane, owner-index) for timers.  The key never mentions
//     shards or threads.
//
// Sharded mode (shards > 1): nodes are partitioned into contiguous blocks,
// one per shard; each shard owns its own event queue, slab, buffer pool and
// channel state.  Shards advance in conservative time windows of length
// DelayModel::min (the lookahead): any message sent at time t is delivered at
// >= t + min, so within a window no shard can affect another, and cross-shard
// sends are exchanged through per-shard-pair outboxes at the window barrier.
// Rules for multi-shard runs (all hold trivially when shards == 1):
//   * add all nodes before enqueuing the first event;
//   * a handler may only send on behalf of nodes of its own shard (in
//     practice: from == the node being delivered to / the timer's owner);
//   * handlers of nodes on different shards run concurrently and must not
//     share mutable state;
//   * DelayModel::min must be >= 1us.
//
// Hot-path layout (the event loop dominates every experiment bench):
//   * Per-shard two-level ladder queues (event_queue.h) replace the global
//     binary heap: O(1) amortized scheduling instead of O(log n), with
//     bucket-local memory traffic at large event counts.
//   * Events are tagged slab entries with a free list; message deliveries
//     carry (src, dst, payload) in the queue entry instead of boxing a
//     closure in std::function; only explicit timers pay for one.
//   * Payload buffers are pooled per shard, so steady-state traffic performs
//     zero heap allocations.
//   * Channel FIFO fronts live in a flat src*stride+dst matrix once the node
//     count is known (per-shard hash maps beyond kFlatChannelLimit nodes;
//     crossing the limit migrates the matrix into the maps).
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/serialize.h"
#include "common/sync.h"
#include "common/time.h"
#include "sim/event_queue.h"

namespace cmh::sim {

using NodeId = std::uint32_t;

/// Distribution of per-message network delays.  `min` doubles as the
/// conservative lookahead of the sharded engine.
struct DelayModel {
  SimTime min{SimTime::us(50)};
  SimTime max{SimTime::us(500)};

  static DelayModel fixed(SimTime d) { return {d, d}; }
  static DelayModel uniform(SimTime lo, SimTime hi) { return {lo, hi}; }
};

/// Counters exposed to tests and benchmarks.  Aggregated across shards;
/// totals are shard-count-independent.
struct SimStats {
  std::uint64_t messages_sent{0};
  std::uint64_t messages_delivered{0};
  std::uint64_t bytes_sent{0};
  std::uint64_t timers_fired{0};
  std::uint64_t events_processed{0};
};

/// Observation hook for correctness tooling (src/check).  Callbacks fire
/// synchronously on the simulator thread: on_send inside send() at the send
/// instant, on_deliver inside dispatch immediately *before* the receiving
/// node's handler runs, so an observer sees every state transition at the
/// instant the model says it happens.  Observers are only supported in
/// single-shard mode: with shards > 1 deliveries on different shards run
/// concurrently and a global observer would be a data race by construction.
class SimObserver {
 public:
  virtual ~SimObserver() = default;
  virtual void on_send(NodeId from, NodeId to, BytesView payload,
                       SimTime at) = 0;
  virtual void on_deliver(NodeId from, NodeId to, BytesView payload,
                          SimTime at) = 0;
};

class Simulator {
 public:
  using MessageHandler =
      std::function<void(NodeId from, const Bytes& payload)>;

  explicit Simulator(std::uint64_t seed = 1, DelayModel delays = DelayModel{},
                     std::uint32_t shards = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Registers a node; returns its id (dense, starting at 0).  In multi-shard
  /// mode all nodes must be added before the first send/schedule.
  NodeId add_node(MessageHandler handler);

  /// Replaces the handler of an existing node (used by harnesses that
  /// construct nodes after wiring).
  void set_handler(NodeId node, MessageHandler handler);

  /// Attaches (or detaches, with nullptr) a traffic observer.  The observer
  /// is borrowed and must outlive the simulator or be detached first.
  /// Throws std::logic_error in multi-shard mode -- see SimObserver.
  void set_observer(SimObserver* observer);

  [[nodiscard]] SimObserver* observer() const { return observer_; }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  [[nodiscard]] std::uint32_t shard_count() const { return shard_count_; }

  /// Shard owning `node` (contiguous-block partition, frozen at the first
  /// event in multi-shard mode).  Placement-aware workloads use this to keep
  /// tightly-coupled node groups on one shard.
  [[nodiscard]] std::uint32_t shard_of(NodeId node) const {
    return shard_count_ == 1 ? 0u
                             : static_cast<std::uint32_t>(node / shard_block_);
  }

  /// Enqueues a message for in-order delivery after a seeded random delay.
  /// The payload is copied into a pooled buffer; the view need only be valid
  /// for the duration of the call.  Both endpoints must be registered nodes.
  void send(NodeId from, NodeId to, BytesView payload);

  /// Schedules `fn` to run at now() + delay.  The timer is owned by the node
  /// whose event is currently dispatching (or by the control context outside
  /// dispatch) and fires on that owner's shard.
  void schedule(SimTime delay, std::function<void()> fn);

  /// Current virtual time: the dispatching event's time inside a handler
  /// (shard-local in parallel runs), the last completed time outside.
  [[nodiscard]] SimTime now() const;

  [[nodiscard]] const SimStats& stats() const;
  void reset_stats();

  /// Processes the single earliest pending event in canonical key order.
  /// Returns false if idle.  (Sequential for any shard count.)
  bool step();

  /// Runs until no events remain.  Returns the final virtual time.  With
  /// shards > 1 this is the parallel windowed engine.
  SimTime run();

  /// Batched-delivery mode: processes up to `max_events` events without
  /// per-event caller round-trips; returns the number processed (less than
  /// `max_events` iff the queue drained).  Event order is identical to
  /// step()-ing in a loop -- this is a throughput interface, not a different
  /// schedule (and therefore sequential; use run()/run_until() for parallel
  /// throughput).
  std::size_t run_batch(std::size_t max_events);

  /// Runs until the given virtual time (inclusive) or until idle.  With
  /// shards > 1 this is the parallel windowed engine.
  void run_until(SimTime t);

  /// Runs until `pred()` holds or the event queue drains; returns pred().
  /// Sequential for any shard count (the predicate is checked between
  /// events).
  bool run_while_pending(const std::function<bool()>& pred);

  [[nodiscard]] bool idle() const;

 private:
  // Timer events use this lane in the canonical key; no node can own it.
  static constexpr std::uint32_t kTimerLane = 0xFFFFFFFFu;
  // Owner id for timers scheduled outside any dispatch (tests, harness
  // setup); their events run on shard 0.
  static constexpr NodeId kControlNode = 0xFFFFFFFFu;

  // Above this node count the flat channel matrix would be too large; fall
  // back to per-shard hash maps (1024^2 entries == 16 MiB).
  static constexpr std::size_t kFlatChannelLimit = 1024;

  // Slab entry.  Message events use payload; timer events use fn.  Both the
  // payload buffer and the slot are recycled.
  struct Event {
    Bytes payload;
    std::function<void()> fn;
  };

  // Per-channel FIFO + determinism state: last scheduled delivery time and
  // the number of messages sent so far (the counter the delay draw hashes).
  struct ChannelState {
    SimTime front{SimTime::zero()};
    std::uint64_t count{0};
  };

  // A message crossing shards, parked in a per-(src,dst)-shard outbox until
  // the window barrier.
  struct CrossMsg {
    SimTime time;
    NodeId from{0};
    NodeId to{0};
    std::uint64_t seq{0};
    Bytes payload;
  };

  // Everything a shard touches while processing a window.  Padded so two
  // shards' hot state never shares a cache line.
  struct alignas(64) ShardState {
    EventQueue queue;
    std::vector<Event> slab;
    std::vector<std::uint32_t> free_slots;
    std::vector<Bytes> buffer_pool;
    std::unordered_map<std::uint64_t, ChannelState> channel_spill;
    SimTime now{SimTime::zero()};
    SimStats stats;
    std::exception_ptr error;

    explicit ShardState(std::int64_t width_hint) : queue(width_hint) {}
  };

  struct WindowCompletion {
    Simulator* sim;
    void operator()() const noexcept { sim->compute_next_window(); }
  };

  std::uint32_t acquire_slot(ShardState& shard);
  void release_slot(ShardState& shard, std::uint32_t slot);
  Bytes take_buffer(ShardState& shard);
  void recycle_buffer(ShardState& shard, Bytes&& buffer);

  ChannelState& channel_state(NodeId from, NodeId to);
  void migrate_flat_to_spill();
  [[nodiscard]] SimTime channel_delay(NodeId from, NodeId to,
                                      std::uint64_t count) const;

  void ensure_partition();
  void enqueue_message(ShardState& dst, SimTime at, NodeId from, NodeId to,
                       std::uint64_t seq, Bytes&& payload);
  void dispatch_on(std::uint32_t shard_idx, const EventQueue::Entry& entry);

  // Sequential engine: canonical-order merge across shard queues.
  [[nodiscard]] int min_shard();
  bool step_sequential();

  // Parallel windowed engine.
  void run_parallel(SimTime limit);
  void start_pool();
  void stop_pool();
  void parallel_worker(std::uint32_t shard_idx);
  void window_loop(std::uint32_t shard_idx);
  void compute_next_window() noexcept;

  std::uint64_t seed_;
  DelayModel delays_;
  std::uint32_t shard_count_;
  std::size_t shard_block_{1};
  bool partition_frozen_{false};

  SimTime now_{SimTime::zero()};
  SimObserver* observer_{nullptr};
  std::vector<MessageHandler> nodes_;
  std::vector<ShardState> shards_;

  // Per-owner timer counters (canonical key seq for the timer lane).
  std::vector<std::uint64_t> timer_seq_;
  std::uint64_t control_timer_seq_{0};

  // Channel FIFO/counter state: flat matrix while node count fits, per-shard
  // spill maps beyond (see channel_state()).
  std::vector<ChannelState> channel_flat_;
  std::size_t channel_stride_{0};

  // ---- parallel runtime ----------------------------------------------------
  // Ownership-transfer fields (no mutex; see DESIGN.md section 7.2): these
  // are synchronized by the window protocol itself, which the thread-safety
  // analysis cannot model, so each carries a CMH_GUARDED_BY_PROTOCOL marker
  // stating the handoff instead of a capability.
  //
  // Outboxes, indexed src_shard * K + dst_shard.  A cell is written only by
  // the src worker during the processing phase and drained only by the dst
  // worker after the barrier, so the barrier provides all synchronization.
  std::vector<std::vector<CrossMsg>> outbox_
      CMH_GUARDED_BY_PROTOCOL("drain_bar_: src writes phase-before dst reads");
  // Written by compute_next_window() on exactly one thread while every
  // worker is parked at window_bar_; workers read them only after crossing
  // that barrier.
  std::int64_t job_limit_ CMH_GUARDED_BY_PROTOCOL("window_bar_"){INT64_MAX};
  std::int64_t win_end_ CMH_GUARDED_BY_PROTOCOL("window_bar_"){0};
  bool win_done_ CMH_GUARDED_BY_PROTOCOL("window_bar_"){false};
  std::atomic<bool> abort_{false};
  // Atomic because shard workers consult it inside send() (shard-affinity
  // check) without taking pool_mutex_; the pool condvar handshake publishes
  // the store that matters before any worker runs.
  std::atomic<bool> parallel_active_{false};
  std::unique_ptr<std::barrier<WindowCompletion>> window_bar_;
  std::unique_ptr<std::barrier<>> drain_bar_;
  std::vector<std::thread> pool_;
  Mutex pool_mutex_;
  CondVar pool_cv_;
  CondVar pool_done_cv_;
  std::uint64_t job_gen_ CMH_GUARDED_BY(pool_mutex_){0};
  std::uint32_t jobs_done_ CMH_GUARDED_BY(pool_mutex_){0};
  bool pool_quit_ CMH_GUARDED_BY(pool_mutex_){false};

  mutable SimStats stats_agg_;
};

}  // namespace cmh::sim
