// Deterministic discrete-event simulator.
//
// Hosts a set of nodes that exchange byte-payload messages over reliable,
// in-order, finite-delay channels -- exactly the communication assumption of
// the paper ("messages are received correctly and in order", P4/finite
// delivery).  Per-message delays are drawn from a seeded distribution; FIFO
// order per (src,dst) channel is enforced by clamping each delivery to be no
// earlier than the previous delivery on the same channel.
//
// The simulator also provides timers, which the initiation policies and the
// workload drivers use, and counters for the benchmark harness.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "common/time.h"

namespace cmh::sim {

using NodeId = std::uint32_t;

/// Distribution of per-message network delays.
struct DelayModel {
  SimTime min{SimTime::us(50)};
  SimTime max{SimTime::us(500)};

  static DelayModel fixed(SimTime d) { return {d, d}; }
  static DelayModel uniform(SimTime lo, SimTime hi) { return {lo, hi}; }
};

/// Counters exposed to tests and benchmarks.
struct SimStats {
  std::uint64_t messages_sent{0};
  std::uint64_t messages_delivered{0};
  std::uint64_t bytes_sent{0};
  std::uint64_t timers_fired{0};
  std::uint64_t events_processed{0};
};

class Simulator {
 public:
  using MessageHandler =
      std::function<void(NodeId from, const Bytes& payload)>;

  explicit Simulator(std::uint64_t seed = 1,
                     DelayModel delays = DelayModel{});

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Registers a node; returns its id (dense, starting at 0).
  NodeId add_node(MessageHandler handler);

  /// Replaces the handler of an existing node (used by harnesses that
  /// construct nodes after wiring).
  void set_handler(NodeId node, MessageHandler handler);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Enqueues a message for in-order delivery after a random delay.
  void send(NodeId from, NodeId to, Bytes payload);

  /// Schedules `fn` to run at now() + delay.
  void schedule(SimTime delay, std::function<void()> fn);

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] const SimStats& stats() const { return stats_; }
  void reset_stats() { stats_ = SimStats{}; }

  /// Processes the single earliest pending event.  Returns false if idle.
  bool step();

  /// Runs until no events remain.  Returns the final virtual time.
  SimTime run();

  /// Runs until the given virtual time (inclusive) or until idle.
  void run_until(SimTime t);

  /// Runs until `pred()` holds or the event queue drains; returns pred().
  bool run_while_pending(const std::function<bool()>& pred);

  [[nodiscard]] bool idle() const { return queue_.empty(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return b.time < a.time;
      return b.seq < a.seq;
    }
  };

  void push(SimTime at, std::function<void()> fn);
  SimTime draw_delay();

  SimTime now_{SimTime::zero()};
  std::uint64_t next_seq_{0};
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::vector<MessageHandler> nodes_;
  // Last scheduled delivery time per (src,dst), for FIFO enforcement.
  std::unordered_map<std::uint64_t, SimTime> channel_front_;
  Rng rng_;
  DelayModel delays_;
  SimStats stats_;
};

}  // namespace cmh::sim
