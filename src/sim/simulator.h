// Deterministic discrete-event simulator.
//
// Hosts a set of nodes that exchange byte-payload messages over reliable,
// in-order, finite-delay channels -- exactly the communication assumption of
// the paper ("messages are received correctly and in order", P4/finite
// delivery).  Per-message delays are drawn from a seeded distribution; FIFO
// order per (src,dst) channel is enforced by clamping each delivery to be no
// earlier than the previous delivery on the same channel.
//
// The simulator also provides timers, which the initiation policies and the
// workload drivers use, and counters for the benchmark harness.
//
// Hot-path layout (the event loop dominates every experiment bench):
//   * Events are tagged structs in a slab with a free list -- message
//     deliveries carry (from, to, payload) directly instead of boxing a
//     closure in std::function; only explicit timers pay for one.
//   * Payload buffers are pooled: a delivered message's buffer returns to
//     the pool with its capacity intact, so steady-state traffic performs
//     zero heap allocations.
//   * Channel FIFO fronts live in a flat src*stride+dst vector once the
//     node count is known (hash map only beyond kFlatChannelLimit nodes).
// Determinism is unchanged: same seed => bit-identical event order and
// stats (enforced by the golden-trace test).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "common/time.h"

namespace cmh::sim {

using NodeId = std::uint32_t;

/// Distribution of per-message network delays.
struct DelayModel {
  SimTime min{SimTime::us(50)};
  SimTime max{SimTime::us(500)};

  static DelayModel fixed(SimTime d) { return {d, d}; }
  static DelayModel uniform(SimTime lo, SimTime hi) { return {lo, hi}; }
};

/// Counters exposed to tests and benchmarks.
struct SimStats {
  std::uint64_t messages_sent{0};
  std::uint64_t messages_delivered{0};
  std::uint64_t bytes_sent{0};
  std::uint64_t timers_fired{0};
  std::uint64_t events_processed{0};
};

class Simulator {
 public:
  using MessageHandler =
      std::function<void(NodeId from, const Bytes& payload)>;

  explicit Simulator(std::uint64_t seed = 1,
                     DelayModel delays = DelayModel{});

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Registers a node; returns its id (dense, starting at 0).
  NodeId add_node(MessageHandler handler);

  /// Replaces the handler of an existing node (used by harnesses that
  /// construct nodes after wiring).
  void set_handler(NodeId node, MessageHandler handler);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Enqueues a message for in-order delivery after a random delay.  The
  /// payload is copied into a pooled buffer; the view need only be valid
  /// for the duration of the call.
  void send(NodeId from, NodeId to, BytesView payload);

  /// Schedules `fn` to run at now() + delay.
  void schedule(SimTime delay, std::function<void()> fn);

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] const SimStats& stats() const { return stats_; }
  void reset_stats() { stats_ = SimStats{}; }

  /// Processes the single earliest pending event.  Returns false if idle.
  bool step();

  /// Runs until no events remain.  Returns the final virtual time.
  SimTime run();

  /// Batched-delivery mode: processes up to `max_events` events without
  /// per-event caller round-trips; returns the number processed (less than
  /// `max_events` iff the queue drained).  Event order is identical to
  /// step()-ing in a loop -- this is a throughput interface, not a
  /// different schedule.
  std::size_t run_batch(std::size_t max_events);

  /// Runs until the given virtual time (inclusive) or until idle.
  void run_until(SimTime t);

  /// Runs until `pred()` holds or the event queue drains; returns pred().
  bool run_while_pending(const std::function<bool()>& pred);

  [[nodiscard]] bool idle() const { return queue_.empty(); }

 private:
  enum class EventKind : std::uint8_t { kMessage, kCallback };

  // Slab entry.  Message events use (from, to, payload); callback events
  // use fn.  Both payload buffer and slot are recycled.
  struct Event {
    EventKind kind{EventKind::kMessage};
    NodeId from{0};
    NodeId to{0};
    Bytes payload;
    std::function<void()> fn;
  };

  // Heap entry: 24 bytes, trivially copyable.
  struct QueueEntry {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    std::uint32_t slot;
  };
  struct EventLater {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.time != b.time) return b.time < a.time;
      return b.seq < a.seq;
    }
  };

  // Above this node count the flat channel matrix would be too large;
  // fall back to the hash map (1024^2 entries == 8 MiB).
  static constexpr std::size_t kFlatChannelLimit = 1024;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void recycle_buffer(Bytes&& buffer);
  void dispatch(const QueueEntry& entry);
  SimTime& channel_front(NodeId from, NodeId to);
  SimTime draw_delay();

  SimTime now_{SimTime::zero()};
  std::uint64_t next_seq_{0};
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, EventLater> queue_;
  std::vector<Event> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<Bytes> buffer_pool_;
  std::vector<MessageHandler> nodes_;
  // Last scheduled delivery time per (src,dst), for FIFO enforcement.
  // Flat matrix while node count <= kFlatChannelLimit, hash map beyond.
  std::vector<SimTime> channel_flat_;
  std::size_t channel_stride_{0};
  std::unordered_map<std::uint64_t, SimTime> channel_spill_;
  Rng rng_;
  DelayModel delays_;
  SimStats stats_;
};

}  // namespace cmh::sim
