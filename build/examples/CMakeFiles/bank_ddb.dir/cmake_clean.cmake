file(REMOVE_RECURSE
  "CMakeFiles/bank_ddb.dir/bank_ddb.cpp.o"
  "CMakeFiles/bank_ddb.dir/bank_ddb.cpp.o.d"
  "bank_ddb"
  "bank_ddb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_ddb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
