# Empty dependencies file for bank_ddb.
# This may be replaced when dependencies are built.
