file(REMOVE_RECURSE
  "CMakeFiles/or_model_rpc.dir/or_model_rpc.cpp.o"
  "CMakeFiles/or_model_rpc.dir/or_model_rpc.cpp.o.d"
  "or_model_rpc"
  "or_model_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/or_model_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
