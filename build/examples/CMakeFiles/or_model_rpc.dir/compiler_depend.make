# Empty compiler generated dependencies file for or_model_rpc.
# This may be replaced when dependencies are built.
