file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_basic_process.cpp.o"
  "CMakeFiles/test_core.dir/core/test_basic_process.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_messages.cpp.o"
  "CMakeFiles/test_core.dir/core/test_messages.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_or_model.cpp.o"
  "CMakeFiles/test_core.dir/core/test_or_model.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_probe_computation.cpp.o"
  "CMakeFiles/test_core.dir/core/test_probe_computation.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_properties.cpp.o"
  "CMakeFiles/test_core.dir/core/test_properties.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_wfgd.cpp.o"
  "CMakeFiles/test_core.dir/core/test_wfgd.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
