# Empty compiler generated dependencies file for test_ddb.
# This may be replaced when dependencies are built.
