file(REMOVE_RECURSE
  "CMakeFiles/test_ddb.dir/ddb/test_cluster.cpp.o"
  "CMakeFiles/test_ddb.dir/ddb/test_cluster.cpp.o.d"
  "CMakeFiles/test_ddb.dir/ddb/test_controller.cpp.o"
  "CMakeFiles/test_ddb.dir/ddb/test_controller.cpp.o.d"
  "CMakeFiles/test_ddb.dir/ddb/test_ddb_properties.cpp.o"
  "CMakeFiles/test_ddb.dir/ddb/test_ddb_properties.cpp.o.d"
  "CMakeFiles/test_ddb.dir/ddb/test_lock_manager.cpp.o"
  "CMakeFiles/test_ddb.dir/ddb/test_lock_manager.cpp.o.d"
  "CMakeFiles/test_ddb.dir/ddb/test_messages.cpp.o"
  "CMakeFiles/test_ddb.dir/ddb/test_messages.cpp.o.d"
  "CMakeFiles/test_ddb.dir/ddb/test_workload.cpp.o"
  "CMakeFiles/test_ddb.dir/ddb/test_workload.cpp.o.d"
  "test_ddb"
  "test_ddb.pdb"
  "test_ddb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ddb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
