# Empty compiler generated dependencies file for bench_a1_forward_once.
# This may be replaced when dependencies are built.
