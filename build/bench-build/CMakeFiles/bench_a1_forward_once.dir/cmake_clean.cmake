file(REMOVE_RECURSE
  "../bench/bench_a1_forward_once"
  "../bench/bench_a1_forward_once.pdb"
  "CMakeFiles/bench_a1_forward_once.dir/bench_a1_forward_once.cpp.o"
  "CMakeFiles/bench_a1_forward_once.dir/bench_a1_forward_once.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_forward_once.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
