# Empty dependencies file for bench_t5_ddb_throughput.
# This may be replaced when dependencies are built.
