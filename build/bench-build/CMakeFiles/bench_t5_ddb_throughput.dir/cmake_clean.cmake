file(REMOVE_RECURSE
  "../bench/bench_t5_ddb_throughput"
  "../bench/bench_t5_ddb_throughput.pdb"
  "CMakeFiles/bench_t5_ddb_throughput.dir/bench_t5_ddb_throughput.cpp.o"
  "CMakeFiles/bench_t5_ddb_throughput.dir/bench_t5_ddb_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_ddb_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
