file(REMOVE_RECURSE
  "../bench/bench_t2_latency"
  "../bench/bench_t2_latency.pdb"
  "CMakeFiles/bench_t2_latency.dir/bench_t2_latency.cpp.o"
  "CMakeFiles/bench_t2_latency.dir/bench_t2_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
