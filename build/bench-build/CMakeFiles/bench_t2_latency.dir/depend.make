# Empty dependencies file for bench_t2_latency.
# This may be replaced when dependencies are built.
