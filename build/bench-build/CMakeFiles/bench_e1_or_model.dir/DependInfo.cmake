
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e1_or_model.cpp" "bench-build/CMakeFiles/bench_e1_or_model.dir/bench_e1_or_model.cpp.o" "gcc" "bench-build/CMakeFiles/bench_e1_or_model.dir/bench_e1_or_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cmh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cmh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cmh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cmh_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cmh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ddb/CMakeFiles/cmh_ddb.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/cmh_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cmh_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
