# Empty dependencies file for bench_e1_or_model.
# This may be replaced when dependencies are built.
