# Empty dependencies file for bench_a2_stale_tags.
# This may be replaced when dependencies are built.
