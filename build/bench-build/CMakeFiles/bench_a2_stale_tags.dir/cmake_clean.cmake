file(REMOVE_RECURSE
  "../bench/bench_a2_stale_tags"
  "../bench/bench_a2_stale_tags.pdb"
  "CMakeFiles/bench_a2_stale_tags.dir/bench_a2_stale_tags.cpp.o"
  "CMakeFiles/bench_a2_stale_tags.dir/bench_a2_stale_tags.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_stale_tags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
