file(REMOVE_RECURSE
  "../bench/bench_t6_transports"
  "../bench/bench_t6_transports.pdb"
  "CMakeFiles/bench_t6_transports.dir/bench_t6_transports.cpp.o"
  "CMakeFiles/bench_t6_transports.dir/bench_t6_transports.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t6_transports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
