# Empty dependencies file for bench_t6_transports.
# This may be replaced when dependencies are built.
