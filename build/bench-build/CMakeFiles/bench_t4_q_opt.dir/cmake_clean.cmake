file(REMOVE_RECURSE
  "../bench/bench_t4_q_opt"
  "../bench/bench_t4_q_opt.pdb"
  "CMakeFiles/bench_t4_q_opt.dir/bench_t4_q_opt.cpp.o"
  "CMakeFiles/bench_t4_q_opt.dir/bench_t4_q_opt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_q_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
