# Empty compiler generated dependencies file for bench_t4_q_opt.
# This may be replaced when dependencies are built.
