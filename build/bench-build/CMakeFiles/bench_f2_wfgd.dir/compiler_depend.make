# Empty compiler generated dependencies file for bench_f2_wfgd.
# This may be replaced when dependencies are built.
