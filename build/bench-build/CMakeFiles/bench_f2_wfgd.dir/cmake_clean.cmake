file(REMOVE_RECURSE
  "../bench/bench_f2_wfgd"
  "../bench/bench_f2_wfgd.pdb"
  "CMakeFiles/bench_f2_wfgd.dir/bench_f2_wfgd.cpp.o"
  "CMakeFiles/bench_f2_wfgd.dir/bench_f2_wfgd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_wfgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
