# Empty compiler generated dependencies file for bench_f1_timer_sweep.
# This may be replaced when dependencies are built.
