file(REMOVE_RECURSE
  "../bench/bench_f1_timer_sweep"
  "../bench/bench_f1_timer_sweep.pdb"
  "CMakeFiles/bench_f1_timer_sweep.dir/bench_f1_timer_sweep.cpp.o"
  "CMakeFiles/bench_f1_timer_sweep.dir/bench_f1_timer_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_timer_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
