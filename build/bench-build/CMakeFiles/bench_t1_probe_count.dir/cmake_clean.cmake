file(REMOVE_RECURSE
  "../bench/bench_t1_probe_count"
  "../bench/bench_t1_probe_count.pdb"
  "CMakeFiles/bench_t1_probe_count.dir/bench_t1_probe_count.cpp.o"
  "CMakeFiles/bench_t1_probe_count.dir/bench_t1_probe_count.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_probe_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
