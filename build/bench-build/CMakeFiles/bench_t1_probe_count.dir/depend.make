# Empty dependencies file for bench_t1_probe_count.
# This may be replaced when dependencies are built.
