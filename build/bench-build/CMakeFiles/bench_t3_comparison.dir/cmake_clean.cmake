file(REMOVE_RECURSE
  "../bench/bench_t3_comparison"
  "../bench/bench_t3_comparison.pdb"
  "CMakeFiles/bench_t3_comparison.dir/bench_t3_comparison.cpp.o"
  "CMakeFiles/bench_t3_comparison.dir/bench_t3_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
