# Empty dependencies file for cmh_ddb.
# This may be replaced when dependencies are built.
