file(REMOVE_RECURSE
  "libcmh_ddb.a"
)
