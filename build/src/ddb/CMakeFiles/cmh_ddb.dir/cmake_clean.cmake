file(REMOVE_RECURSE
  "CMakeFiles/cmh_ddb.dir/cluster.cpp.o"
  "CMakeFiles/cmh_ddb.dir/cluster.cpp.o.d"
  "CMakeFiles/cmh_ddb.dir/controller.cpp.o"
  "CMakeFiles/cmh_ddb.dir/controller.cpp.o.d"
  "CMakeFiles/cmh_ddb.dir/lock_manager.cpp.o"
  "CMakeFiles/cmh_ddb.dir/lock_manager.cpp.o.d"
  "CMakeFiles/cmh_ddb.dir/messages.cpp.o"
  "CMakeFiles/cmh_ddb.dir/messages.cpp.o.d"
  "CMakeFiles/cmh_ddb.dir/workload.cpp.o"
  "CMakeFiles/cmh_ddb.dir/workload.cpp.o.d"
  "libcmh_ddb.a"
  "libcmh_ddb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmh_ddb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
