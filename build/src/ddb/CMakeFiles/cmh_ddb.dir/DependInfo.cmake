
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ddb/cluster.cpp" "src/ddb/CMakeFiles/cmh_ddb.dir/cluster.cpp.o" "gcc" "src/ddb/CMakeFiles/cmh_ddb.dir/cluster.cpp.o.d"
  "/root/repo/src/ddb/controller.cpp" "src/ddb/CMakeFiles/cmh_ddb.dir/controller.cpp.o" "gcc" "src/ddb/CMakeFiles/cmh_ddb.dir/controller.cpp.o.d"
  "/root/repo/src/ddb/lock_manager.cpp" "src/ddb/CMakeFiles/cmh_ddb.dir/lock_manager.cpp.o" "gcc" "src/ddb/CMakeFiles/cmh_ddb.dir/lock_manager.cpp.o.d"
  "/root/repo/src/ddb/messages.cpp" "src/ddb/CMakeFiles/cmh_ddb.dir/messages.cpp.o" "gcc" "src/ddb/CMakeFiles/cmh_ddb.dir/messages.cpp.o.d"
  "/root/repo/src/ddb/workload.cpp" "src/ddb/CMakeFiles/cmh_ddb.dir/workload.cpp.o" "gcc" "src/ddb/CMakeFiles/cmh_ddb.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cmh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cmh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
