file(REMOVE_RECURSE
  "libcmh_core.a"
)
