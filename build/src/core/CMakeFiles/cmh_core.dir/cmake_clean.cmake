file(REMOVE_RECURSE
  "CMakeFiles/cmh_core.dir/basic_process.cpp.o"
  "CMakeFiles/cmh_core.dir/basic_process.cpp.o.d"
  "CMakeFiles/cmh_core.dir/messages.cpp.o"
  "CMakeFiles/cmh_core.dir/messages.cpp.o.d"
  "CMakeFiles/cmh_core.dir/or_model.cpp.o"
  "CMakeFiles/cmh_core.dir/or_model.cpp.o.d"
  "libcmh_core.a"
  "libcmh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
