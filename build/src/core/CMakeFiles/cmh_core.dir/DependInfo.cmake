
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/basic_process.cpp" "src/core/CMakeFiles/cmh_core.dir/basic_process.cpp.o" "gcc" "src/core/CMakeFiles/cmh_core.dir/basic_process.cpp.o.d"
  "/root/repo/src/core/messages.cpp" "src/core/CMakeFiles/cmh_core.dir/messages.cpp.o" "gcc" "src/core/CMakeFiles/cmh_core.dir/messages.cpp.o.d"
  "/root/repo/src/core/or_model.cpp" "src/core/CMakeFiles/cmh_core.dir/or_model.cpp.o" "gcc" "src/core/CMakeFiles/cmh_core.dir/or_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cmh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cmh_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
