# Empty dependencies file for cmh_core.
# This may be replaced when dependencies are built.
