file(REMOVE_RECURSE
  "libcmh_runtime.a"
)
