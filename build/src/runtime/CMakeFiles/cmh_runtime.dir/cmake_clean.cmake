file(REMOVE_RECURSE
  "CMakeFiles/cmh_runtime.dir/or_cluster.cpp.o"
  "CMakeFiles/cmh_runtime.dir/or_cluster.cpp.o.d"
  "CMakeFiles/cmh_runtime.dir/sim_cluster.cpp.o"
  "CMakeFiles/cmh_runtime.dir/sim_cluster.cpp.o.d"
  "CMakeFiles/cmh_runtime.dir/threaded_cluster.cpp.o"
  "CMakeFiles/cmh_runtime.dir/threaded_cluster.cpp.o.d"
  "CMakeFiles/cmh_runtime.dir/workload.cpp.o"
  "CMakeFiles/cmh_runtime.dir/workload.cpp.o.d"
  "libcmh_runtime.a"
  "libcmh_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmh_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
