# Empty compiler generated dependencies file for cmh_runtime.
# This may be replaced when dependencies are built.
