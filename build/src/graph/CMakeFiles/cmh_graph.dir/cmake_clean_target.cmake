file(REMOVE_RECURSE
  "libcmh_graph.a"
)
