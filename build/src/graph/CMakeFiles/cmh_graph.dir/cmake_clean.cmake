file(REMOVE_RECURSE
  "CMakeFiles/cmh_graph.dir/generators.cpp.o"
  "CMakeFiles/cmh_graph.dir/generators.cpp.o.d"
  "CMakeFiles/cmh_graph.dir/wait_for_graph.cpp.o"
  "CMakeFiles/cmh_graph.dir/wait_for_graph.cpp.o.d"
  "libcmh_graph.a"
  "libcmh_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmh_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
