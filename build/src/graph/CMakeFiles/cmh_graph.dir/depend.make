# Empty dependencies file for cmh_graph.
# This may be replaced when dependencies are built.
