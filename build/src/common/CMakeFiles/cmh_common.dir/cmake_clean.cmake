file(REMOVE_RECURSE
  "CMakeFiles/cmh_common.dir/logging.cpp.o"
  "CMakeFiles/cmh_common.dir/logging.cpp.o.d"
  "libcmh_common.a"
  "libcmh_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmh_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
