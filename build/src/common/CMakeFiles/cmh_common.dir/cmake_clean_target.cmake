file(REMOVE_RECURSE
  "libcmh_common.a"
)
