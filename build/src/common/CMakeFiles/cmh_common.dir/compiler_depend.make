# Empty compiler generated dependencies file for cmh_common.
# This may be replaced when dependencies are built.
