# Empty compiler generated dependencies file for cmh_sim.
# This may be replaced when dependencies are built.
