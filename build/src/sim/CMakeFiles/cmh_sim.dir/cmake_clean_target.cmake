file(REMOVE_RECURSE
  "libcmh_sim.a"
)
