file(REMOVE_RECURSE
  "CMakeFiles/cmh_sim.dir/simulator.cpp.o"
  "CMakeFiles/cmh_sim.dir/simulator.cpp.o.d"
  "libcmh_sim.a"
  "libcmh_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmh_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
