file(REMOVE_RECURSE
  "libcmh_net.a"
)
