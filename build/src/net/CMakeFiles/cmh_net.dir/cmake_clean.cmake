file(REMOVE_RECURSE
  "CMakeFiles/cmh_net.dir/inmemory_transport.cpp.o"
  "CMakeFiles/cmh_net.dir/inmemory_transport.cpp.o.d"
  "CMakeFiles/cmh_net.dir/tcp_transport.cpp.o"
  "CMakeFiles/cmh_net.dir/tcp_transport.cpp.o.d"
  "libcmh_net.a"
  "libcmh_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmh_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
