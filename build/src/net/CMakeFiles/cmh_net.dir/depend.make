# Empty dependencies file for cmh_net.
# This may be replaced when dependencies are built.
