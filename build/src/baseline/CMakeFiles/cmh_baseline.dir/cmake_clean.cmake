file(REMOVE_RECURSE
  "CMakeFiles/cmh_baseline.dir/centralized.cpp.o"
  "CMakeFiles/cmh_baseline.dir/centralized.cpp.o.d"
  "CMakeFiles/cmh_baseline.dir/path_pushing.cpp.o"
  "CMakeFiles/cmh_baseline.dir/path_pushing.cpp.o.d"
  "CMakeFiles/cmh_baseline.dir/timeout.cpp.o"
  "CMakeFiles/cmh_baseline.dir/timeout.cpp.o.d"
  "libcmh_baseline.a"
  "libcmh_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmh_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
