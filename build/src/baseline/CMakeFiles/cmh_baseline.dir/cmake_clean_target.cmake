file(REMOVE_RECURSE
  "libcmh_baseline.a"
)
