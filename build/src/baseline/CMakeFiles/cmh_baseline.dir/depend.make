# Empty dependencies file for cmh_baseline.
# This may be replaced when dependencies are built.
