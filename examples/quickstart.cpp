// Quickstart: the basic model end to end, in ~60 lines.
//
// Three processes on the deterministic simulator wedge into a wait-for
// cycle; the Chandy-Misra-Haas probe computation (initiated automatically
// when a request is sent) detects it, and the section-5 WFGD computation
// tells every deadlocked process which edges trap it.
//
//   $ ./quickstart
#include <cstdio>

#include "runtime/sim_cluster.h"

using namespace cmh;

int main() {
  // Three processes, on-request probe initiation (section 4.2 rule),
  // WFGD propagation on.
  core::Options options;
  options.initiation = core::InitiationMode::kOnRequest;
  options.propagate_wfgd = true;
  runtime::SimCluster cluster(/*n=*/3, options, /*seed=*/42);

  cluster.set_detection_callback([&](const runtime::DeadlockEvent& event) {
    std::printf("[%8lld us] %s declares: I am on a black cycle "
                "(computation %s)\n",
                static_cast<long long>(event.at.micros),
                event.process.to_string().c_str(),
                (event.tag.initiator.to_string() + "#" +
                 std::to_string(event.tag.sequence))
                    .c_str());
  });

  // p0 waits for p1, p1 waits for p2 -- a plain chain so far.
  std::printf("p0 requests p1; p1 requests p2 ...\n");
  cluster.request(ProcessId{0}, ProcessId{1});
  cluster.request(ProcessId{1}, ProcessId{2});
  cluster.run();
  std::printf("no deadlock yet: %zu detections\n\n",
              cluster.detections().size());

  // p2 requests p0: the cycle closes, p2's probe computation goes around.
  std::printf("p2 requests p0 -- closing the cycle ...\n");
  cluster.request(ProcessId{2}, ProcessId{0});
  cluster.run();

  // Every process now knows it is deadlocked and which edges form the trap.
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto& p = cluster.process(ProcessId{i});
    std::printf("%s deadlocked=%s, knows %zu trapped edge(s):",
                p.id().to_string().c_str(), p.deadlocked() ? "yes" : "no",
                p.wfgd_edges().size());
    for (const auto& e : p.wfgd_edges()) {
      std::printf(" %s->%s", e.from.to_string().c_str(),
                  e.to.to_string().c_str());
    }
    std::printf("\n");
  }

  // The ground-truth graph agrees (and can be rendered with graphviz).
  std::printf("\nwait-for graph (DOT):\n%s", cluster.oracle().to_dot().c_str());
  return cluster.detections().empty() ? 1 : 0;
}
