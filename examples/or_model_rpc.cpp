// The OR (communication) model extension on an RPC-flavoured scenario.
//
// Workers issue fan-out RPCs and proceed when ANY replica answers (the
// message model of the paper's reference [1]).  A group of workers whose
// every potential helper is itself stuck forms a knot -- the OR-model
// notion of deadlock -- and the diffusing-computation detector finds it;
// one live replica anywhere prevents a declaration.
//
//   $ ./or_model_rpc
#include <cstdio>

#include "runtime/or_cluster.h"

using namespace cmh;

namespace {

void banner(const char* text) { std::printf("\n--- %s ---\n", text); }

}  // namespace

int main() {
  runtime::OrCluster cluster(/*n=*/6, /*seed=*/3);
  cluster.set_detection_callback([&](const runtime::OrDetection& d) {
    std::printf("[%6lld us] %s declares OR-model deadlock (computation "
                "#%llu)\n",
                static_cast<long long>(d.at.micros),
                d.process.to_string().c_str(),
                static_cast<unsigned long long>(d.tag.sequence));
  });

  const ProcessId w0{0};  // workers
  const ProcessId w1{1};
  const ProcessId w2{2};
  const ProcessId r0{3};  // replicas
  const ProcessId r1{4};
  const ProcessId spare{5};

  banner("healthy fan-out: w0 calls {r0, r1}; r1 answers");
  cluster.block(w0, {r0, r1});
  cluster.run();
  std::printf("w0 blocked: %s (no declaration -- replicas are live)\n",
              cluster.process(w0).blocked() ? "yes" : "no");
  cluster.signal(r1, w0);
  cluster.run();
  std::printf("after r1's reply, w0 blocked: %s\n",
              cluster.process(w0).blocked() ? "yes" : "no");

  banner("knot: every helper is itself stuck");
  // w0 -> {w1, w2}; w1 -> {r0}; w2 -> {r0}; r0 -> {w0}: nobody reachable
  // from w0 is active.
  cluster.block(w1, {r0});
  cluster.block(w2, {r0});
  cluster.block(r0, {w0});
  cluster.block(w0, {w1, w2});
  cluster.run();
  std::printf("oracle: w0 deadlocked = %s, detections = %zu\n",
              cluster.oracle_deadlocked(w0) ? "yes" : "no",
              cluster.detections().size());

  banner("same shape with one live escape is NOT deadlock");
  runtime::OrCluster second(/*n=*/6, /*seed=*/5);
  second.set_detection_callback([](const runtime::OrDetection&) {
    std::printf("UNEXPECTED declaration!\n");
  });
  second.block(w1, {r0});
  second.block(w2, {r0});
  second.block(r0, {w0, spare});  // spare stays active: an escape
  second.block(w0, {w1, w2});
  second.run();
  std::printf("oracle: w0 deadlocked = %s, detections = %zu\n",
              second.oracle_deadlocked(w0) ? "yes" : "no",
              second.detections().size());
  std::printf("spare signals r0; the whole group unwinds:\n");
  second.signal(spare, r0);
  second.run();
  second.signal(r0, w1);
  second.run();
  second.signal(w1, w0);  // w1 (now active) answers w0
  second.run();
  std::printf("w0 blocked: %s\n",
              second.process(w0).blocked() ? "yes" : "no");

  const auto stats = cluster.total_stats();
  std::printf("\nknot run: %llu queries, %llu replies, %llu declarations\n",
              static_cast<unsigned long long>(stats.queries_sent),
              static_cast<unsigned long long>(stats.replies_sent),
              static_cast<unsigned long long>(stats.deadlocks_declared));
  return cluster.detections().empty() || !second.detections().empty() ? 1 : 0;
}
