// Real sockets: the detector over localhost TCP.
//
// Each process is a node with its own listening socket and delivery thread;
// requests and probes are length-prefixed frames.  We wedge a ring of
// processes and wait (wall clock) for one of them to declare, then dump the
// per-process WFGD knowledge.
//
//   $ ./tcp_cluster [ring_size]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "net/tcp_transport.h"
#include "runtime/threaded_cluster.h"

using namespace cmh;
using namespace std::chrono_literals;

int main(int argc, char** argv) {
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 6;
  if (n < 2) {
    std::fprintf(stderr, "ring size must be >= 2\n");
    return 2;
  }

  net::TcpTransport transport;
  core::Options options;  // on-request initiation, WFGD on
  runtime::ThreadedCluster cluster(transport, n, options);

  std::printf("spawned %u processes on localhost TCP ports:", n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::printf(" %u", transport.port(i));
  }
  std::printf("\nwedging the ring: p0 -> p1 -> ... -> p%u -> p0\n", n - 1);

  for (std::uint32_t i = 0; i < n; ++i) {
    cluster.request(ProcessId{i}, ProcessId{(i + 1) % n});
  }

  const auto declarer = cluster.wait_for_detection(10000ms);
  if (!declarer) {
    std::fprintf(stderr, "no detection within 10s -- something is wrong\n");
    cluster.stop();
    return 1;
  }
  std::printf("%s declared deadlock (over real sockets)\n",
              declarer->to_string().c_str());

  // Give WFGD a moment to propagate, then show what everyone learnt.
  for (int i = 0; i < 200; ++i) {
    bool done = true;
    for (std::uint32_t p = 0; p < n; ++p) {
      if (cluster.wfgd_edges(ProcessId{p}).size() != n) done = false;
    }
    if (done) break;
    std::this_thread::sleep_for(5ms);
  }
  for (std::uint32_t p = 0; p < n; ++p) {
    const auto edges = cluster.wfgd_edges(ProcessId{p});
    std::printf("  p%u: deadlocked=%s, knows %zu trapped edges\n", p,
                cluster.deadlocked(ProcessId{p}) ? "yes" : "no",
                edges.size());
  }

  const auto stats = cluster.stats(*declarer);
  std::printf("declarer sent %llu probes, received %llu (%llu meaningful)\n",
              static_cast<unsigned long long>(stats.probes_sent),
              static_cast<unsigned long long>(stats.probes_received),
              static_cast<unsigned long long>(stats.meaningful_probes));
  cluster.stop();
  return 0;
}
