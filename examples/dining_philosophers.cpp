// Dining philosophers on the distributed database model (section 6).
//
// Five philosophers (transactions), each homed at a different site, grab
// their left fork then their right fork (forks are resources owned by the
// sites).  All five grabbing left first is the classic all-blocked state;
// the controllers' probe computations find the cycle and abort a victim,
// after which the table drains.
//
//   $ ./dining_philosophers
#include <cstdio>

#include "ddb/cluster.h"

using namespace cmh;
using namespace cmh::ddb;

namespace {

constexpr std::uint32_t kPhilosophers = 5;

// Fork k is resource k; with n_sites == kPhilosophers the round-robin
// placement puts fork k at site k -- each philosopher's left fork is local,
// the right fork is at the neighbour's site.
ResourceId fork(std::uint32_t k) { return ResourceId{k % kPhilosophers}; }

}  // namespace

int main() {
  DdbOptions options;
  options.initiation = DdbInitiation::kDelayed;
  options.initiation_delay = SimTime::ms(3);
  options.abort_victim = true;
  Cluster table({.n_sites = kPhilosophers,
                 .n_resources = kPhilosophers,
                 .options = options,
                 .seed = 4});

  table.set_detection_listener([&](const DdbDetection& d) {
    std::printf("[%8lld us] controller %s declares philosopher %s "
                "deadlocked -> aborting them\n",
                static_cast<long long>(d.at.micros),
                d.site.to_string().c_str(), d.victim.to_string().c_str());
  });

  std::vector<TransactionId> philosophers;
  for (std::uint32_t i = 0; i < kPhilosophers; ++i) {
    philosophers.push_back(table.begin(SiteId{i}));
  }

  std::printf("every philosopher picks up their left fork ...\n");
  for (std::uint32_t i = 0; i < kPhilosophers; ++i) {
    table.lock(philosophers[i], fork(i), LockMode::kWrite);
  }
  table.simulator().run();

  std::printf("... then, one by one, reaches for the right fork\n");
  for (std::uint32_t i = 0; i < kPhilosophers; ++i) {
    // Staggered thinking times: the cycle only closes when the last
    // philosopher reaches over, so exactly one controller's delayed probe
    // computation finds it (earlier ones fire before the cycle exists).
    table.lock(philosophers[i], fork(i + 1), LockMode::kWrite);
    table.simulator().run_until(table.simulator().now() + SimTime::ms(5));
  }
  table.simulator().run();

  // Survivors eat in cascade: whoever holds both forks eats, puts them
  // down, and unblocks a neighbour.
  std::printf("\nsurvivors eat in turn ...\n");
  for (std::uint32_t round = 0; round < kPhilosophers; ++round) {
    for (std::uint32_t i = 0; i < kPhilosophers; ++i) {
      if (table.status(philosophers[i]) == TxnStatus::kActive &&
          table.all_granted(philosophers[i])) {
        std::printf("  philosopher %u eats and releases the forks\n", i);
        table.finish(philosophers[i]);
      }
    }
    table.simulator().run();
  }

  std::printf("\noutcome:\n");
  for (std::uint32_t i = 0; i < kPhilosophers; ++i) {
    const auto status = table.status(philosophers[i]);
    std::printf("  philosopher %u: %s\n", i,
                status == TxnStatus::kAborted     ? "aborted (victim)"
                : status == TxnStatus::kCommitted ? "ate"
                                                  : "still hungry (bug!)");
  }

  const auto stats = table.total_stats();
  std::printf("\nprobes sent: %llu, meaningful: %llu, victims: %llu\n",
              static_cast<unsigned long long>(stats.probes_sent),
              static_cast<unsigned long long>(stats.meaningful_probes),
              static_cast<unsigned long long>(stats.aborts_executed));
  return table.detections().empty() ? 1 : 0;
}
