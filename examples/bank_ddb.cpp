// A distributed bank: the workload the paper's DDB model (section 6) was
// built for.  Transfer transactions lock two account records (often at
// different branches/sites) in arbitrary order, which is a deadlock factory;
// the controllers detect victims with probe computations and abort them, and
// the client layer retries.  Compare the summary with detection disabled to
// see why a DDB cannot ship without this.
//
//   $ ./bank_ddb
#include <cstdio>

#include "ddb/cluster.h"
#include "ddb/workload.h"

using namespace cmh;
using namespace cmh::ddb;

namespace {

struct Summary {
  WorkloadResult result;
  ControllerStats stats;
  double makespan_ms{0};
  std::size_t detections{0};
};

Summary run_bank(bool detection_enabled) {
  DdbOptions options;
  if (detection_enabled) {
    options.initiation = DdbInitiation::kDelayed;
    options.initiation_delay = SimTime::ms(2);
    options.abort_victim = true;
  } else {
    options.initiation = DdbInitiation::kManual;
    options.abort_victim = false;
  }

  // 4 branches, 24 hot account records, 30 concurrent transfers.
  Cluster bank({.n_sites = 4,
                .n_resources = 24,
                .options = options,
                .seed = 11});
  TxnScriptConfig cfg;
  cfg.locks_per_txn = 2;        // debit account + credit account
  cfg.write_fraction = 1.0;     // transfers write both records
  cfg.hot_set = 24;
  cfg.hold_time = SimTime::ms(1);
  cfg.max_retries = 20;
  if (!detection_enabled) {
    cfg.lock_wait_timeout = SimTime::ms(15);  // the pre-CMH fallback
  }
  TxnWorkload workload(bank, cfg, 12);
  workload.start(30);
  const SimTime end = bank.simulator().run();

  return Summary{workload.result(), bank.total_stats(),
                 end.seconds() * 1e3, bank.detections().size()};
}

void print(const char* label, const Summary& s) {
  std::printf("%s\n", label);
  std::printf("  committed: %llu   aborted: %llu   gave up: %llu\n",
              static_cast<unsigned long long>(s.result.committed),
              static_cast<unsigned long long>(s.result.aborted),
              static_cast<unsigned long long>(s.result.given_up));
  std::printf("  makespan: %.1f ms (virtual)   deadlocks declared: %zu   "
              "probes: %llu\n\n",
              s.makespan_ms, s.detections,
              static_cast<unsigned long long>(s.stats.probes_sent));
}

}  // namespace

int main() {
  std::printf("30 concurrent transfers over 4 branches, 24 hot accounts\n\n");
  const Summary with_cmh = run_bank(/*detection_enabled=*/true);
  print("with CMH probe detection + victim abort:", with_cmh);
  const Summary with_timeouts = run_bank(/*detection_enabled=*/false);
  print("without detection (15ms client lock timeouts):", with_timeouts);

  std::printf("Deadlock victims are aborted within a couple of message\n"
              "round-trips instead of a full timeout, and only true victims\n"
              "are aborted -- fewer retries, shorter makespan.\n");
  const bool healthy =
      with_cmh.result.committed + with_cmh.result.given_up == 30;
  return healthy ? 0 : 1;
}
