#!/usr/bin/env python3
"""Repo-specific lint rules that clang-tidy cannot express.

Rules (each can be silenced on a single line with `// lint:allow(<rule>)`):

  pragma-once         every header under src/ starts with #pragma once.
  no-reinterpret-cast no reinterpret_cast anywhere under src/.  The wire
                      codecs (common/serialize.h) are written cast-free on
                      purpose; OS-API call sites (sockaddr) carry explicit
                      allows.
  hot-path-alloc      files tagged `// cmh:hot-path` near the top must not
                      heap-allocate (new / make_unique / make_shared /
                      malloc) nor use std::unordered_{map,set} -- the
                      steady-state detection path is zero-alloc and
                      cache-friendly by design (see DESIGN.md).
  transport-bytesview transport send surfaces take BytesView, never
                      `const Bytes&`: senders must accept stack frames
                      without forcing a heap copy at the boundary.
  raw-sync            std::mutex / std::condition_variable / the std lock
                      adapters (scoped_lock, lock_guard, unique_lock, ...)
                      and manual .lock()/.unlock() calls are banned outside
                      src/common/sync.h.  Everything else goes through the
                      annotated Mutex / MutexLock / CondVar wrappers so the
                      Clang thread-safety analysis sees every acquisition;
                      a raw std primitive is a hole in the proof.
  raw-socket-io       direct socket syscalls (::send, ::recv, ::read,
                      ::write, ::sendmsg, ...) are banned outside src/net/.
                      Byte transfer goes through the Transport interface;
                      a stray syscall bypasses framing, the I/O counters
                      and the event-loop's fd-lifecycle discipline.

All .h/.cpp files under src/, tests/ and bench/ are scanned.

Usage: tools/lint_repo.py [--root DIR]
Exit status: 0 clean, 1 findings (printed as path:line: [rule] message).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

HOT_PATH_MARKER = "// cmh:hot-path"
ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z0-9-]+)\)")

ALLOC_RE = re.compile(
    r"\bnew\b|\bstd::make_unique\b|\bstd::make_shared\b|\bmalloc\s*\("
)
UNORDERED_RE = re.compile(r"\bstd::unordered_(map|set)\b")
REINTERPRET_RE = re.compile(r"\breinterpret_cast\b")
# A declaration line of a send-like function taking a borrowed Bytes:
# matches `send(`, `send_frame(` etc. followed (same line) by `const Bytes&`.
SEND_BYTES_RE = re.compile(r"\b\w*send\w*\s*\([^)]*const\s+Bytes\s*&")

# The raw C++ synchronization vocabulary.  Only src/common/sync.h may use
# these; everyone else holds capabilities through the annotated wrappers.
RAW_SYNC_TYPE_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex"
    r"|condition_variable|condition_variable_any"
    r"|scoped_lock|lock_guard|unique_lock|shared_lock)\b"
)
RAW_SYNC_INCLUDE_RE = re.compile(
    r"#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>"
)
# Manual lock management defeats scope-based release and, on the annotated
# Mutex, forces callers to spell ACQUIRE/RELEASE by hand; require MutexLock.
# Nullary calls only: the ddb lock manager's lock(txn, resource, mode) is the
# *modeled* resource lock, not thread synchronization.
MANUAL_LOCK_RE = re.compile(r"(?:\.|->)\s*(?:try_)?(?:un)?lock\s*\(\s*\)")

# Direct socket/file-descriptor I/O syscalls.  The lookbehind keeps
# qualified C++ names (Simulator::send, Transport::send_probes) out: only a
# `::` that does NOT follow an identifier is the global-namespace qualifier,
# and the `\b` after the name rejects ::send_frame-style calls too.
RAW_SOCKET_IO_RE = re.compile(
    r"(?<![\w>])::(?:send|sendto|sendmsg|recv|recvfrom|recvmsg"
    r"|read|write|readv|writev)\s*\("
)

# The one file allowed to touch the raw primitives (it wraps them).
SYNC_SHIM = pathlib.PurePosixPath("src/common/sync.h")

# The directories allowed to make socket syscalls (the transport layer and
# the event loop it runs on).
NET_DIR = pathlib.PurePosixPath("src/net")


def strip_comments(lines: list[str]) -> list[str]:
    """Remove // and /* */ comment text, preserving line structure."""
    out = []
    in_block = False
    for line in lines:
        result = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end == -1:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
            elif line.startswith("//", i):
                break
            elif line.startswith("/*", i):
                in_block = True
                i += 2
            else:
                result.append(line[i])
                i += 1
        out.append("".join(result))
    return out


class Linter:
    def __init__(self, root: pathlib.Path) -> None:
        self.root = root
        self.findings: list[tuple[pathlib.Path, int, str, str]] = []

    def report(self, path: pathlib.Path, line_no: int, rule: str,
               message: str, raw_line: str, prev_line: str = "") -> None:
        # An allow silences the rule on its own line or the line below it
        # (long call sites keep the annotation readable on its own line).
        for candidate in (raw_line, prev_line):
            allow = ALLOW_RE.search(candidate)
            if allow and allow.group(1) == rule:
                return
        self.findings.append((path, line_no, rule, message))

    def lint_file(self, path: pathlib.Path) -> None:
        raw = path.read_text(encoding="utf-8").splitlines()
        code = strip_comments(raw)
        head = "\n".join(raw[:15])
        hot_path = HOT_PATH_MARKER in head
        rel = pathlib.PurePosixPath(path.relative_to(self.root).as_posix())
        is_sync_shim = rel == SYNC_SHIM
        in_net = NET_DIR in rel.parents

        if path.suffix == ".h" and not any("#pragma once" in l for l in raw):
            self.report(path, 1, "pragma-once",
                        "header has no #pragma once", raw[0] if raw else "")

        for i, (code_line, raw_line) in enumerate(zip(code, raw), start=1):
            prev = raw[i - 2] if i >= 2 else ""
            if REINTERPRET_RE.search(code_line):
                self.report(path, i, "no-reinterpret-cast",
                            "reinterpret_cast is banned in src/ "
                            "(write the codec cast-free or add an allow)",
                            raw_line, prev)
            if hot_path:
                if ALLOC_RE.search(code_line):
                    self.report(path, i, "hot-path-alloc",
                                "heap allocation in a cmh:hot-path file",
                                raw_line, prev)
                if UNORDERED_RE.search(code_line):
                    self.report(path, i, "hot-path-alloc",
                                "std::unordered_{map,set} in a cmh:hot-path "
                                "file (use FlatSet / sorted vectors)",
                                raw_line, prev)
            if path.suffix == ".h" and SEND_BYTES_RE.search(code_line):
                self.report(path, i, "transport-bytesview",
                            "send surface takes `const Bytes&`; accept "
                            "BytesView so stack frames pass without a copy",
                            raw_line, prev)
            if not is_sync_shim:
                if (RAW_SYNC_TYPE_RE.search(code_line)
                        or RAW_SYNC_INCLUDE_RE.search(code_line)):
                    self.report(path, i, "raw-sync",
                                "raw std synchronization primitive; use "
                                "Mutex/MutexLock/CondVar from common/sync.h "
                                "so the thread-safety analysis sees it",
                                raw_line, prev)
                if MANUAL_LOCK_RE.search(code_line):
                    self.report(path, i, "raw-sync",
                                "manual lock()/unlock() call; hold the "
                                "mutex through a scoped MutexLock instead",
                                raw_line, prev)
            if not in_net and RAW_SOCKET_IO_RE.search(code_line):
                self.report(path, i, "raw-socket-io",
                            "direct socket syscall outside src/net/; go "
                            "through the Transport interface (framing, "
                            "I/O counters, fd lifecycle live there)",
                            raw_line, prev)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repository root (default: this script's ../)")
    args = parser.parse_args()
    root = (pathlib.Path(args.root) if args.root
            else pathlib.Path(__file__).resolve().parent.parent)
    src = root / "src"
    if not src.is_dir():
        print(f"lint_repo: no src/ under {root}", file=sys.stderr)
        return 2

    linter = Linter(root)
    roots = [src] + [d for d in (root / "tests", root / "bench")
                     if d.is_dir()]
    for tree in roots:
        for path in sorted(tree.rglob("*")):
            if path.suffix in (".h", ".cpp"):
                linter.lint_file(path)

    for path, line_no, rule, message in linter.findings:
        rel = path.relative_to(root)
        print(f"{rel}:{line_no}: [{rule}] {message}")
    if linter.findings:
        print(f"lint_repo: {len(linter.findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"lint_repo: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
